"""Tests for the analytical cluster composition
(:mod:`repro.cluster.model`) and its agreement with the cluster
simulator on ext08's operating regime."""

import math

import pytest

from repro.cluster import (
    ClusterSimConfig,
    ClusterSpec,
    analyze_cluster,
    breaker_arrival_rate,
    chaos_plan,
    get_policies,
    predict_availability,
    rescue_horizon,
    run_cluster_simulation,
    shard_service_demands,
)
from repro.cluster.policies import RouterRetryPolicy
from repro.errors import ConfigurationError
from repro.resilience import SHARD_CRASH, FaultPlan, FaultSpec

_MEANS = {"search": 2.0, "insert": 3.0, "delete": 3.0}
_MIX = {"search": 0.3, "insert": 0.5, "delete": 0.2}


class TestDemands:
    def test_zero_load_demands_match_the_single_tree_model(self):
        from repro.algorithms import get_algorithm, names
        from repro.model import paper_default_config
        alg = get_algorithm(names.NAIVE_LOCK_COUPLING)
        config = paper_default_config(disk_cost=1.0)
        demands = shard_service_demands(alg.analyze, config)
        assert set(demands) == {"search", "insert", "delete"}
        assert all(d > 0 for d in demands.values())
        # At vanishing load the response *is* the service demand, and
        # updates cost more than searches.
        assert demands["insert"] > demands["search"]

    def test_breaker_anchor_is_the_rho_half_rate(self):
        from repro.algorithms import get_algorithm, names
        from repro.model import paper_default_config
        alg = get_algorithm(names.NAIVE_LOCK_COUPLING)
        rate = breaker_arrival_rate(alg.analyze,
                                    paper_default_config(disk_cost=1.0))
        assert 0 < rate < math.inf
        rho = alg.analyze(paper_default_config(disk_cost=1.0),
                          rate).root_writer_utilization
        assert rho == pytest.approx(0.5, abs=1e-3)


class TestComposition:
    def test_response_grows_with_load(self):
        spec = ClusterSpec(shards=4, replicas=2)
        lo = analyze_cluster(spec, 0.05, _MEANS, _MIX)
        hi = analyze_cluster(spec, 0.4, _MEANS, _MIX)
        assert lo.stable and hi.stable
        assert hi.mixed_response(_MIX) > lo.mixed_response(_MIX)

    def test_more_shards_dilute_per_shard_load(self):
        small = analyze_cluster(ClusterSpec(shards=2, replicas=2),
                                0.4, _MEANS, _MIX)
        large = analyze_cluster(ClusterSpec(shards=8, replicas=2),
                                0.4, _MEANS, _MIX)
        assert large.primary_utilization < small.primary_utilization

    def test_saturation_reported_not_raised(self):
        prediction = analyze_cluster(ClusterSpec(shards=1, replicas=1),
                                     10.0, _MEANS, _MIX)
        assert not prediction.stable
        assert prediction.mixed_response(_MIX) == math.inf

    def test_replicas_offload_reads(self):
        solo = analyze_cluster(ClusterSpec(shards=2, replicas=1),
                               0.3, _MEANS, _MIX)
        replicated = analyze_cluster(ClusterSpec(shards=2, replicas=3),
                                     0.3, _MEANS, _MIX)
        assert replicated.primary_utilization < solo.primary_utilization

    def test_invalid_inputs_rejected(self):
        spec = ClusterSpec(shards=2)
        with pytest.raises(ConfigurationError):
            analyze_cluster(spec, 0.0, _MEANS, _MIX)
        with pytest.raises(ConfigurationError):
            analyze_cluster(spec, 0.1, {"search": 2.0}, _MIX)

    def test_model_matches_simulator_fault_free(self):
        """The serialized-shard composition is what the simulator
        implements; at moderate load they agree within sampling noise."""
        spec = ClusterSpec(shards=4, replicas=2)
        rate = 0.2
        prediction = analyze_cluster(spec, rate, _MEANS, _MIX)
        result = run_cluster_simulation(ClusterSimConfig(
            spec=spec, arrival_rate=rate, service_means=_MEANS,
            mix=_MIX, policies=get_policies("fragile"),
            horizon=6_000.0, seed=5))
        assert result.mean_response == pytest.approx(
            prediction.mixed_response(_MIX), rel=0.20)


class TestAvailability:
    def _crash_plan(self, at=200.0, duration=100.0, shard=0):
        return FaultPlan(specs=(FaultSpec(
            kind=SHARD_CRASH, task_index=shard, at=at,
            duration=duration),))

    def test_fault_free_plan_is_fully_available(self):
        spec = ClusterSpec(shards=4)
        assert predict_availability(spec, FaultPlan(),
                                    get_policies("fragile"),
                                    1_000.0) == 1.0

    def test_fragile_loses_the_weighted_window(self):
        spec = ClusterSpec(shards=4)
        availability = predict_availability(
            spec, self._crash_plan(duration=100.0),
            get_policies("fragile"), 1_000.0)
        assert availability == pytest.approx(1.0 - 0.25 * 0.1)

    def test_retries_shrink_the_lost_window(self):
        spec = ClusterSpec(shards=4)
        plan = self._crash_plan(duration=400.0)
        fragile = predict_availability(spec, plan,
                                       get_policies("fragile"), 1_000.0)
        resilient = predict_availability(spec, plan,
                                         get_policies("resilient"),
                                         1_000.0)
        assert resilient > fragile
        span = rescue_horizon(get_policies("resilient").retry)
        assert resilient == pytest.approx(
            1.0 - 0.25 * (400.0 - span) / 1_000.0)

    def test_short_outages_fully_rescued(self):
        spec = ClusterSpec(shards=4)
        plan = self._crash_plan(duration=50.0)
        assert predict_availability(spec, plan,
                                    get_policies("resilient"),
                                    1_000.0) == 1.0

    def test_rescue_horizon_sums_the_schedule(self):
        retry = get_policies("resilient").retry
        backoff = retry.backoff
        expected = 0.0
        for attempt in range(1, backoff.max_retries + 1):
            delay = min(backoff.backoff_base
                        * backoff.backoff_factor ** (attempt - 1),
                        backoff.backoff_cap)
            expected += retry.timeout + delay * (1.0 + 0.5 * backoff.jitter)
        assert rescue_horizon(retry) == pytest.approx(expected)
        assert rescue_horizon(RouterRetryPolicy(enabled=False)) == 0.0

    def test_availability_model_matches_simulator(self):
        """Fragile crash availability is exact up to Poisson noise."""
        spec = ClusterSpec(shards=4, replicas=2)
        plan = chaos_plan(4, 1, 2_000.0)
        predicted = predict_availability(spec, plan,
                                         get_policies("fragile"), 2_000.0)
        result = run_cluster_simulation(ClusterSimConfig(
            spec=spec, arrival_rate=0.3, service_means=_MEANS,
            mix=_MIX, policies=get_policies("fragile"),
            horizon=2_000.0, seed=9, faults=plan))
        assert result.availability == pytest.approx(predicted, abs=0.03)


class TestExt08:
    def test_tiny_sweep_shape_and_degradation(self):
        from repro.experiments.extensions import ext08
        table = ext08(scale=0.05)
        assert len(table.rows) == 12
        shed = sum(table.column("shed_writes"))
        retries = sum(table.column("retries"))
        assert retries > 0
        assert shed >= 0  # breaker sheds appear at larger scales
        for fragile, resilient in zip(table.column("availability_fragile"),
                                      table.column("availability_resilient")):
            assert 0.9 <= fragile <= 1.0
            assert 0.9 <= resilient <= 1.0

    def test_deterministic_across_invocations(self):
        from repro.experiments.extensions import ext08
        a, b = ext08(scale=0.05), ext08(scale=0.05)
        assert a.rows == b.rows
        assert a.notes == b.notes
