"""Unit tests for the FCFS R/W queue fixed point (Theorem 6)."""

import math

import pytest

from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.rwqueue import (
    RWQueueInput,
    solve_rw_queue,
    writer_utilization,
)


def _solve(lambda_r, lambda_w, mu_r, mu_w):
    return solve_rw_queue(RWQueueInput(lambda_r, lambda_w, mu_r, mu_w))


class TestLimits:
    def test_no_writers(self):
        sol = _solve(1.0, 0.0, 2.0, 1.0)
        assert sol.rho_w == 0.0
        assert sol.aggregate_service_time == 0.0

    def test_no_readers_reduces_to_mm1(self):
        """Without readers the fixed point is rho = lambda_w / mu_w."""
        sol = _solve(0.0, 0.3, 1.0, 1.0)
        assert sol.rho_w == pytest.approx(0.3)
        assert sol.r_u == 0.0
        assert sol.r_e == 0.0
        assert sol.aggregate_service_time == pytest.approx(1.0)

    def test_readers_inflate_utilization(self):
        base = _solve(0.0, 0.3, 1.0, 1.0).rho_w
        with_readers = _solve(0.5, 0.3, 1.0, 1.0).rho_w
        assert with_readers > base


class TestFixedPoint:
    @pytest.mark.parametrize("lambda_r,lambda_w,mu_r,mu_w", [
        (0.5, 0.2, 1.0, 1.0),
        (2.0, 0.1, 3.0, 0.8),
        (0.05, 0.4, 1.0, 2.0),
        (1.0, 0.01, 1.0, 0.05),
    ])
    def test_residual_is_zero(self, lambda_r, lambda_w, mu_r, mu_w):
        sol = _solve(lambda_r, lambda_w, mu_r, mu_w)
        rhs = lambda_w * (1.0 / mu_w
                          + sol.rho_w * sol.r_u
                          + (1.0 - sol.rho_w) * sol.r_e)
        assert sol.rho_w == pytest.approx(rhs, abs=1e-9)

    def test_theorem6_drain_formulas(self):
        sol = _solve(0.5, 0.2, 1.0, 1.0)
        expected_r_u = math.log1p(sol.rho_w * 0.5 / 0.2) / 1.0
        expected_r_e = math.log1p((1 + sol.rho_w) * 0.5 / (1.0 + 0.2)) / 1.0
        assert sol.r_u == pytest.approx(expected_r_u)
        assert sol.r_e == pytest.approx(expected_r_e)

    def test_aggregate_service_composition(self):
        sol = _solve(0.5, 0.2, 1.0, 1.0)
        assert sol.aggregate_service_time == pytest.approx(
            1.0 + sol.mean_reader_drain)

    def test_monotone_in_writer_rate(self):
        rhos = [_solve(0.5, lw, 1.0, 1.0).rho_w
                for lw in (0.05, 0.1, 0.2, 0.4)]
        assert all(a < b for a, b in zip(rhos, rhos[1:]))

    def test_monotone_in_reader_rate(self):
        rhos = [_solve(lr, 0.2, 1.0, 1.0).rho_w
                for lr in (0.1, 0.5, 1.0, 2.0)]
        assert all(a < b for a, b in zip(rhos, rhos[1:]))

    def test_reader_drain_logarithmic(self):
        """Serving n readers grows like log n: doubling the reader rate
        must not double the drain."""
        lo = _solve(1.0, 0.2, 1.0, 1.0)
        hi = _solve(2.0, 0.2, 1.0, 1.0)
        assert hi.r_e < 2.0 * lo.r_e
        assert hi.r_e > lo.r_e


class TestSaturation:
    def test_overload_raises(self):
        with pytest.raises(UnstableQueueError):
            _solve(0.5, 1.5, 1.0, 1.0)

    def test_exact_boundary_raises(self):
        with pytest.raises(UnstableQueueError):
            _solve(0.0, 1.0, 1.0, 1.0)

    def test_level_attached_to_error(self):
        with pytest.raises(UnstableQueueError) as exc_info:
            solve_rw_queue(RWQueueInput(0.5, 1.5, 1.0, 1.0), level=3)
        assert exc_info.value.level == 3

    def test_writer_utilization_returns_inf(self):
        assert writer_utilization(RWQueueInput(0.5, 1.5, 1.0, 1.0)) == math.inf
        assert writer_utilization(RWQueueInput(0.0, 0.3, 1.0, 1.0)) \
            == pytest.approx(0.3)


class TestValidation:
    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            RWQueueInput(-1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            RWQueueInput(0.0, -1.0, 1.0, 1.0)

    def test_arrivals_need_service_capacity(self):
        with pytest.raises(ConfigurationError):
            RWQueueInput(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RWQueueInput(0.0, 1.0, 1.0, 0.0)

    def test_idle_queue_is_fine(self):
        sol = solve_rw_queue(RWQueueInput(0.0, 0.0, 0.0, 0.0))
        assert sol.rho_w == 0.0


class TestDampedFallback:
    """The damped iteration must cover the bracketing solver's failure
    modes — poisoned evaluations, extreme utilization — and its errors
    must carry the full operating point."""

    def test_poisoned_bracket_falls_back_and_agrees(self):
        from repro.resilience.faults import nan_faults
        clean = _solve(0.5, 0.2, 1.0, 1.0)
        with nan_faults(1):  # kill brentq's opening evaluation
            recovered = _solve(0.5, 0.2, 1.0, 1.0)
        assert recovered.rho_w == pytest.approx(clean.rho_w, abs=1e-6)

    def test_extreme_rho_fallback_converges(self):
        """Near the stability boundary (rho_w ~ 0.97) the damped
        iteration still lands on the bracketing solver's root."""
        from repro.resilience.faults import nan_faults
        q = RWQueueInput(0.2, 0.8, 1.0, 1.0)
        clean = solve_rw_queue(q)
        assert clean.rho_w > 0.97
        with nan_faults(1):
            recovered = solve_rw_queue(q)
        assert recovered.rho_w == pytest.approx(clean.rho_w, abs=1e-4)

    def test_saturated_fallback_still_reports_instability(self):
        """A poisoned evaluation must not turn saturation into a bogus
        ConvergenceError or a NaN: the ceiling-pinned iteration raises
        UnstableQueueError like the bracketing path."""
        from repro.resilience.faults import nan_faults
        with nan_faults(1):
            with pytest.raises(UnstableQueueError):
                _solve(0.5, 1.5, 1.0, 1.0)

    def test_persistent_poison_raises_with_operating_point(self):
        from repro.errors import ConvergenceError
        from repro.resilience.faults import nan_faults
        with nan_faults(-1):  # every evaluation returns NaN
            with pytest.raises(ConvergenceError) as exc_info:
                solve_rw_queue(RWQueueInput(0.5, 0.2, 1.0, 1.0), level=2)
        error = exc_info.value
        assert error.solver == "rw-queue"
        context = error.context
        assert context["level"] == 2
        assert context["lambda_r"] == 0.5
        assert context["lambda_w"] == 0.2
        assert context["mu_r"] == 1.0
        assert context["mu_w"] == 1.0
        assert "rho_w_estimate" in context
