"""The dependency-free SVG renderer and the publication theme."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.report import PUBLICATION, render_svg
from repro.report.svg import nice_ticks
from repro.report.theme import Theme


def _table():
    table = ExperimentTable("t01", "a test <series>", "Test",
                            ["arrival_rate", "alpha", "beta"])
    for x in range(8):
        table.add(float(x), float(x * x), 50.0 - x)
    return table


class TestRenderSvg:
    def test_document_structure(self):
        text = render_svg(_table())
        assert text.startswith('<svg xmlns="http://www.w3.org/2000/svg"')
        assert text.rstrip().endswith("</svg>")
        assert "<polyline" in text
        assert "arrival_rate" in text
        # Title is escaped, never raw markup.
        assert "a test &lt;series&gt;" in text
        assert "a test <series>" not in text

    def test_deterministic_output(self):
        assert render_svg(_table()) == render_svg(_table())

    def test_theme_colors_and_markers_used(self):
        text = render_svg(_table())
        assert PUBLICATION.color(0) in text
        assert PUBLICATION.color(1) in text

    def test_saturated_points_render_arrows(self):
        table = ExperimentTable("t02", "saturating", "Test", ["x", "y"])
        table.add(0.0, 1.0)
        table.add(1.0, math.inf)
        text = render_svg(table)
        assert "saturated" in text  # the legend note
        assert 'opacity="0.85"' in text  # the arrow glyph

    def test_nan_points_are_skipped(self):
        table = ExperimentTable("t03", "gappy", "Test", ["x", "y"])
        table.add(0.0, 1.0)
        table.add(1.0, math.nan)
        table.add(2.0, 3.0)
        assert "<polyline" in render_svg(table)

    def test_column_subset(self):
        text = render_svg(_table(), y_columns=["beta"])
        assert "beta" in text
        assert ">alpha<" not in text

    def test_contract_matches_ascii_plotter(self):
        with pytest.raises(ConfigurationError):
            render_svg(ExperimentTable("t04", "empty", "Test", ["x", "y"]))
        with pytest.raises(ConfigurationError):
            render_svg(_table(), y_columns=["gamma"])
        all_inf = ExperimentTable("t05", "inf", "Test", ["x", "y"])
        all_inf.add(0.0, math.inf)
        with pytest.raises(ConfigurationError):
            render_svg(all_inf)

    def test_custom_theme_dimensions(self):
        theme = Theme(width=400, height=300)
        text = render_svg(_table(), theme=theme)
        assert 'width="400"' in text
        assert 'height="300"' in text


class TestNiceTicks:
    def test_covers_range_on_125_grid(self):
        ticks = nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0
        assert ticks[-1] <= 10.0
        assert len(ticks) >= 3
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_labels_come_out_clean(self):
        for tick in nice_ticks(0.0, 1.5):
            assert len(f"{tick:g}") <= 6

    def test_degenerate_range(self):
        assert nice_ticks(2.0, 2.0)

    def test_nonfinite_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            nice_ticks(0.0, math.inf)
