"""The one-command figure pipeline: artifacts, determinism, resume."""

import json

import pytest

import repro.report.pipeline as pipeline_module
from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.plot import matplotlib_available
from repro.experiments.runner import main as runner_main
from repro.parallel import ResultCache
from repro.parallel.context import execution
from repro.report import generate_figures, validate_report_dict
from repro.report.pipeline import JOURNAL_NAME, figure_key, resolve_formats

ANALYTICAL = ["fig11", "fig13"]


def _generate(out_dir, **kwargs):
    kwargs.setdefault("figure_ids", ANALYTICAL)
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("formats", ("svg",))
    kwargs.setdefault("simulate", False)
    kwargs.setdefault("include_claims", False)
    return generate_figures(out_dir=out_dir, **kwargs)


class TestArtifacts:
    def test_full_artifact_set(self, tmp_path):
        result = _generate(tmp_path)
        assert result.passed
        for figure_id in ANALYTICAL:
            assert (tmp_path / f"{figure_id}.svg").exists()
            assert (tmp_path / f"{figure_id}.ndjson").exists()
        assert result.report_json.exists()
        assert result.report_markdown.exists()
        assert result.tables_text.exists()
        assert result.journal_path == tmp_path / JOURNAL_NAME
        assert result.journal_path.exists()
        # The written JSON must satisfy the shipped schema constraints.
        validate_report_dict(
            json.loads(result.report_json.read_text(encoding="utf-8")))
        # tables.txt folds the former text report: headers per figure.
        tables = result.tables_text.read_text(encoding="utf-8")
        for figure_id in ANALYTICAL:
            assert figure_id in tables

    def test_svg_is_wellformed_and_themed(self, tmp_path):
        _generate(tmp_path)
        svg = (tmp_path / "fig11.svg").read_text(encoding="utf-8")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")


class TestDeterminism:
    def test_sidecars_byte_identical_across_cached_runs(self, tmp_path):
        # The regression the issue pins: two runs of the same figures
        # on fixed seeds — the second served from the result cache —
        # must produce byte-identical sidecars (and SVGs).
        cache = ResultCache(tmp_path / "cache")
        ids = ["fig03", "fig11"]
        with execution(cache=cache):
            _generate(tmp_path / "run1", figure_ids=ids, scale=0.02,
                      simulate=None)
            _generate(tmp_path / "run2", figure_ids=ids, scale=0.02,
                      simulate=None)
        for figure_id in ids:
            for suffix in (".ndjson", ".svg"):
                first = (tmp_path / "run1" / (figure_id + suffix)).read_bytes()
                second = (tmp_path / "run2" / (figure_id + suffix)).read_bytes()
                assert first == second, f"{figure_id}{suffix} differs"

    def test_figure_key_pins_scale_and_simulate(self):
        base = figure_key("fig03", 0.1, None)
        assert base == figure_key("fig03", 0.1, None)
        assert base != figure_key("fig03", 0.2, None)
        assert base != figure_key("fig03", 0.1, False)
        assert base != figure_key("fig04", 0.1, None)


class TestResume:
    def test_resume_serves_figures_from_journal(self, tmp_path,
                                                monkeypatch):
        first = _generate(tmp_path)
        assert all(not output.resumed for output in first.figures)

        def _boom(spec, scale, simulate):
            raise AssertionError(
                f"{spec.figure_id} recomputed despite a complete journal")

        monkeypatch.setattr(pipeline_module, "_run_figure", _boom)
        # Images are re-rendered from journaled tables even on resume.
        (tmp_path / "fig11.svg").unlink()
        second = _generate(tmp_path, resume=True)
        assert all(output.resumed for output in second.figures)
        assert (tmp_path / "fig11.svg").exists()
        assert second.passed

    def test_journal_refuses_mismatched_parameters(self, tmp_path):
        _generate(tmp_path, scale=0.05)
        with pytest.raises(CheckpointError):
            _generate(tmp_path, scale=0.08, resume=True)


class TestFormats:
    def test_unknown_format_raises(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            resolve_formats(["svg", "gif"])

    def test_ndjson_is_stripped_and_duplicates_collapse(self):
        assert resolve_formats(["ndjson", "svg", "SVG "]) == ("svg",)

    def test_default_always_includes_svg(self):
        assert "svg" in resolve_formats(None)

    @pytest.mark.skipif(matplotlib_available(),
                        reason="matplotlib installed: png is legal")
    def test_png_without_matplotlib_is_an_error(self):
        with pytest.raises(ConfigurationError, match="matplotlib"):
            resolve_formats(["png"])

    @pytest.mark.skipif(not matplotlib_available(),
                        reason="needs matplotlib")
    def test_png_rendering(self, tmp_path):
        result = _generate(tmp_path, figure_ids=["fig11"],
                           formats=("svg", "png"))
        png = result.figures[0].paths["png"]
        assert png.exists()
        assert png.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


class TestCli:
    def test_figures_without_ids_or_all_errors(self, capsys):
        assert runner_main(["figures"]) == 1
        assert "--all" in capsys.readouterr().err

    def test_figures_subcommand_end_to_end(self, tmp_path, capsys):
        code = runner_main([
            "figures", "fig11", "fig13", "--out", str(tmp_path),
            "--formats", "svg", "--no-sim", "--no-claims", "--no-cache",
            "--scale", "0.05"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "2 figure(s)" in captured.out
        assert (tmp_path / "report.json").exists()

    def test_figures_threshold_breach_exits_nonzero(self, tmp_path,
                                                    capsys, monkeypatch):
        # Tighten thresholds absurdly so real (small) errors breach.
        code = runner_main([
            "figures", "fig03", "--out", str(tmp_path), "--formats",
            "svg", "--no-claims", "--no-cache", "--scale", "0.02",
            "--threshold-scale", "1e-9"])
        captured = capsys.readouterr()
        assert code == 1
        assert "BREACH" in captured.err
