"""Tests for Sagiv-style background compression of link trees."""

import random

import pytest

from repro.btree import BPlusTree, check_invariants
from repro.btree.builder import build_tree
from repro.btree.node import InternalNode, Node
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.errors import ConfigurationError
from repro.model.params import CostModel
from repro.simulator import SimulationConfig
from repro.simulator import compaction, link as link_ops
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext


def _count_empty_leaves(tree) -> int:
    return sum(1 for leaf in tree.leaves()
               if not leaf.keys and leaf is not tree.root)


class TestSpliceOutEmptyLeaf:
    """Sequential tests of the structural primitive."""

    def _tree_with_empty_leaf(self):
        tree = BPlusTree(order=4)
        for key in range(40):
            tree.insert(key)
        leaf = tree.find_leaf(10)
        removed = list(leaf.keys)
        for key in removed:
            # Empty the leaf via the link-style primitive (no merges).
            tree.apply_leaf_delete(leaf, key)
        return tree, leaf

    def _parent_and_left(self, tree, leaf):
        parent = None
        node = tree.root
        while not node.is_leaf:
            assert isinstance(node, InternalNode)
            for child in node.children:
                if child is leaf:
                    parent = node
            if parent is not None:
                break
            node = node.child_for(leaf.high_key - 1
                                  if leaf.high_key is not None else 10**9)
        left = tree._scan_for_left_neighbour(leaf)
        return parent, left

    def test_removes_and_restores_invariants(self):
        tree, leaf = self._tree_with_empty_leaf()
        parent, left = self._parent_and_left(tree, leaf)
        assert tree.splice_out_empty_leaf(leaf, parent, left)
        assert leaf.dead
        check_invariants(tree)

    def test_rejects_non_empty_leaf(self):
        tree, leaf = self._tree_with_empty_leaf()
        parent, left = self._parent_and_left(tree, leaf)
        leaf.keys.append(999_999)
        assert not tree.splice_out_empty_leaf(leaf, parent, left)

    def test_rejects_dead_leaf(self):
        tree, leaf = self._tree_with_empty_leaf()
        parent, left = self._parent_and_left(tree, leaf)
        assert tree.splice_out_empty_leaf(leaf, parent, left)
        assert not tree.splice_out_empty_leaf(leaf, parent, left)

    def test_rejects_stale_left_neighbour(self):
        tree, leaf = self._tree_with_empty_leaf()
        parent, left = self._parent_and_left(tree, leaf)
        assert left is not None
        stale = BPlusTree(order=4).root  # unrelated node
        assert not tree.splice_out_empty_leaf(leaf, parent, stale)

    def test_rejects_only_child(self):
        tree = BPlusTree(order=4)
        for key in range(6):
            tree.insert(key)
        # Fabricate a single-child parent.
        parent = tree.root
        if parent.is_leaf:
            pytest.skip("tree too small to have an internal parent")
        leaf = parent.children[0]
        while parent.n_entries() > 1:
            parent.remove_child(parent.children[-1])
        leaf.keys.clear()
        assert not tree.splice_out_empty_leaf(leaf, parent, None)


class _Harness:
    """Delete-heavy concurrent link workload with optional compactor."""

    def __init__(self, seed: int, with_compactor: bool):
        rng = random.Random(seed)

        def attach(node: Node) -> None:
            node.lock = RWLock(str(node.node_id))

        self.tree = build_tree(600, order=4, key_space=1_500,
                               rng=random.Random(seed + 1),
                               on_new_node=attach)
        self.sim = Simulator()
        self.metrics = MetricsCollector()
        self.metrics.measuring = True
        self.metrics.measure_start_time = 0.0
        self.ctx = OperationContext(
            self.sim, self.tree,
            ServiceTimeSampler(CostModel(disk_cost=2.0), self.tree,
                               random.Random(seed + 2)),
            self.metrics, rng)
        resident = list(self.tree.items())
        rng.shuffle(resident)
        t = 0.0
        for key in resident[:450]:  # delete most of the tree
            t += rng.expovariate(2.0)
            self.sim.spawn(link_ops.delete(self.ctx, key), delay=t)
        self.horizon = t
        if with_compactor:
            self.sim.spawn(
                compaction.compactor(self.ctx, interval=20.0), delay=5.0)

    def run(self):
        self.sim.run(until=self.horizon + 500.0)
        return self.tree, self.metrics


def test_deletes_without_compactor_leave_empty_leaves():
    tree, _metrics = _Harness(seed=3, with_compactor=False).run()
    assert _count_empty_leaves(tree) > 10
    check_invariants(tree, allow_underflow=True)


def test_compactor_reclaims_empty_leaves():
    bare_tree, _m = _Harness(seed=3, with_compactor=False).run()
    compacted_tree, metrics = _Harness(seed=3, with_compactor=True).run()
    assert metrics.compactions > 0
    assert _count_empty_leaves(compacted_tree) \
        < _count_empty_leaves(bare_tree) / 2
    check_invariants(compacted_tree, allow_underflow=True)


def test_compactor_preserves_contents():
    harness = _Harness(seed=7, with_compactor=True)
    before = set(harness.tree.items())
    tree, _metrics = harness.run()
    # All surviving keys are still reachable and ordered.
    after = list(tree.items())
    assert after == sorted(after)
    assert set(after).issubset(before)


def test_compactor_in_full_driver():
    from repro.simulator.driver import run_simulation
    config = SimulationConfig(
        algorithm="link-type", arrival_rate=1.0, n_items=3_000,
        n_operations=800, warmup_operations=80, seed=11,
        compaction_interval=50.0)
    result = run_simulation(config)
    assert not result.overflowed
    assert result.compactions >= 0  # usually 0: deletes rarely empty leaves


class TestConfigValidation:
    def test_compaction_requires_link_type(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="naive-lock-coupling",
                             compaction_interval=10.0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="link-type",
                             compaction_interval=0.0)
