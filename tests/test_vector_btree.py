"""Fixed-seed equivalence of the vectorized B-tree descent kernel.

:mod:`repro.des.vector_btree` advances N full search/insert
replications per interpreted dispatch and promises bit-exactness
against the scalar oracle — the real :class:`~repro.des.engine.\
Simulator` + :class:`~repro.des.rwlock.RWLock` executing the identical
schedule.  Every compared field is exact (event counts, grant counts
per level, splits, redo descents, end times, accumulated waits), for
both descent protocols, across tree shapes chosen to exercise every
transition: plain coupled descents, parent-holding unsafe inserts,
splits, optimistic first passes and write-coupled redo descents.
"""

import numpy as np
import pytest

from repro.des.vector_btree import (
    PROTOCOLS,
    BTreeDescentSpec,
    assert_btree_equivalent,
    run_btree_vectorized,
    run_scalar_btree_reference,
)

N_LANES = 4

#: The equivalence matrix: every shape runs under both protocols.
#: Shapes are trimmed versions of the ones the kernel was proven on —
#: each keyword tweak targets a specific transition family.
SHAPES = {
    "default": dict(iterations=12),
    "two-level": dict(levels=(1, 3), iterations=10),
    "tall": dict(levels=(1, 2, 4, 8, 16), iterations=8),
    "split-heavy": dict(order=1, insert_every=1, iterations=10),
    "searches-only": dict(insert_every=0, iterations=10),
    "wide-mpl": dict(order=2, n_procs=32, iterations=6),
}


def _spec(protocol: str, shape: str) -> BTreeDescentSpec:
    return BTreeDescentSpec(protocol=protocol, **SHAPES[shape])


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_vector_matches_scalar_oracle(protocol, shape):
    spec = _spec(protocol, shape)
    tables = spec.tables(N_LANES)
    vector = run_btree_vectorized(spec, N_LANES, tables=tables)
    scalar = [run_scalar_btree_reference(spec, lane, tables=tables)
              for lane in range(N_LANES)]
    assert_btree_equivalent(vector, scalar)


def test_split_heavy_exercises_splits_and_redos():
    # Guard the matrix itself: if the split-heavy shape stopped
    # splitting (or the optimistic variant stopped redoing), the suite
    # would silently lose its hardest transitions.
    coupling = run_btree_vectorized(_spec("coupling", "split-heavy"),
                                    N_LANES)
    assert int(coupling.splits.min()) > 0
    optimistic = run_btree_vectorized(_spec("optimistic", "split-heavy"),
                                      N_LANES)
    assert int(optimistic.splits.min()) > 0
    assert int(optimistic.redos.min()) > 0


def test_searches_only_never_splits():
    stats = run_btree_vectorized(_spec("coupling", "searches-only"),
                                 N_LANES)
    assert int(stats.splits.max()) == 0
    assert int(stats.redos.max()) == 0


def test_lane_prefix_property():
    # Lane k's schedule derives from default_rng(seed + k) alone, so a
    # wider batch replays the narrower batch's lanes exactly — the
    # property that makes per-seed results independent of batch width.
    spec = BTreeDescentSpec(iterations=6)
    narrow, wide = spec.tables(2), spec.tables(5)
    for name in ("think", "svc", "mod", "split", "path"):
        np.testing.assert_array_equal(getattr(narrow, name),
                                      getattr(wide, name)[:2])
    narrow_stats = run_btree_vectorized(spec, 2, tables=narrow)
    wide_stats = run_btree_vectorized(spec, 5, tables=wide)
    for lane in range(2):
        assert narrow_stats.lane(lane) == wide_stats.lane(lane)


def test_assert_equivalent_raises_on_divergence():
    spec = BTreeDescentSpec(iterations=6)
    tables = spec.tables(2)
    vector = run_btree_vectorized(spec, 2, tables=tables)
    wrong = run_scalar_btree_reference(
        BTreeDescentSpec(iterations=6, seed=spec.seed + 99), 0)
    with pytest.raises(AssertionError, match="lane 0 diverged"):
        assert_btree_equivalent(vector, [wrong], lanes=[0])


class TestSpecValidation:

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            BTreeDescentSpec(protocol="speculative")

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError, match="levels"):
            BTreeDescentSpec(levels=(2, 4))
        with pytest.raises(ValueError, match="levels"):
            BTreeDescentSpec(levels=(1,))

    def test_rejects_non_positive_shape(self):
        with pytest.raises(ValueError):
            BTreeDescentSpec(order=0)
        with pytest.raises(ValueError):
            BTreeDescentSpec(insert_every=-1)

    def test_rejects_lane_count_table_mismatch(self):
        spec = BTreeDescentSpec(iterations=6)
        with pytest.raises(ValueError, match="do not match"):
            run_btree_vectorized(spec, 4, tables=spec.tables(2))


class TestOccupancyCounters:

    def test_stats_carry_dispatch_counters(self):
        spec = BTreeDescentSpec(iterations=8)
        stats = run_btree_vectorized(spec, N_LANES)
        assert stats.dispatches > 0
        # Every dispatch advances at least one, at most N_LANES lanes.
        assert stats.dispatches <= stats.lane_rounds \
            <= stats.dispatches * N_LANES
        assert 0.0 < stats.mean_live_lanes <= N_LANES
        # The vector step loop amortizes: far fewer dispatches than the
        # scalar kernel's per-event heap pops.
        assert stats.dispatches < stats.total_events

    def test_instruments_record_counters(self):
        from repro.obs.instruments import Instrumentation

        spec = BTreeDescentSpec(iterations=8)
        inst = Instrumentation()
        stats = run_btree_vectorized(spec, N_LANES, instruments=inst)
        snapshot = inst.snapshot()
        assert snapshot["vector_btree.dispatches"] == stats.dispatches
        assert snapshot["vector_btree.lane_rounds"] == stats.lane_rounds
        assert snapshot["vector_btree.cascade_rounds"] == \
            stats.cascade_rounds
