"""Tests for the run-telemetry layer (repro.obs)."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    NULL_COUNTER,
    NULL_INSTRUMENTS,
    NULL_TIMER,
    Instrumentation,
    NullInstrumentation,
    ProgressPrinter,
    RunTelemetry,
    SweepTelemetry,
    TelemetryOptions,
    TelemetryRecorder,
    collect_replications,
    dumps_ndjson,
    load_ndjson,
    loads_ndjson,
    merge_counter_snapshots,
    merge_telemetry,
    write_ndjson,
)
from repro.obs.sampler import DecimatingRing, TelemetrySampler
from repro.parallel import ResultCache, SimTask, run_batch
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import run_simulation
from repro.simulator.metrics import _reservoir_seed


def _quick(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="link-type", arrival_rate=0.15,
                    n_items=2_000, n_operations=150, warmup_operations=20,
                    seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _record(config=None, **options) -> RunTelemetry:
    recorder = TelemetryRecorder(TelemetryOptions(**options))
    run_simulation(config if config is not None else _quick(),
                   telemetry=recorder)
    return recorder.telemetry


# ----------------------------------------------------------------------
# Instruments: free when disabled
# ----------------------------------------------------------------------
class TestInstruments:

    def test_null_lookups_share_singletons(self):
        null = NullInstrumentation()
        assert null.counter("a") is NULL_COUNTER
        assert null.counter("b") is NULL_COUNTER
        assert null.timer("a") is NULL_TIMER
        assert NULL_INSTRUMENTS.counter("x") is NULL_COUNTER
        assert not null.enabled and Instrumentation.enabled

    def test_null_instruments_allocate_nothing(self):
        counter = NULL_INSTRUMENTS.counter("hot")
        timer = NULL_INSTRUMENTS.timer("hot")
        counter.inc()            # warm up any lazy interpreter state
        timer.observe(1.0)
        tracemalloc.start()
        try:
            for _i in range(10_000):     # control: the loop's own ints
                pass
            before, _ = tracemalloc.get_traced_memory()
            for _i in range(10_000):
                counter.inc()
                timer.observe(0.5)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0
        assert counter.value == 0 and timer.count == 0

    def test_counter_and_timer_accumulate(self):
        instruments = Instrumentation()
        counter = instruments.counter("events")
        assert instruments.counter("events") is counter
        counter.inc()
        counter.inc(3)
        timer = instruments.timer("response")
        timer.observe(2.0)
        timer.observe(4.0)
        assert counter.value == 4
        assert timer.count == 2 and timer.total == 6.0
        assert timer.min == 2.0 and timer.max == 4.0 and timer.mean == 3.0
        assert instruments.snapshot() == {
            "events": 4, "response.count": 2, "response.total": 6.0}

    def test_snapshot_merge_sums(self):
        merged = merge_counter_snapshots([
            {"a": 1, "b": 2.5}, {"b": 0.5, "c": 3}])
        assert merged == {"a": 1, "b": 3.0, "c": 3}
        assert list(merged) == sorted(merged)


# ----------------------------------------------------------------------
# Sampler: bounded memory, monotone time
# ----------------------------------------------------------------------
class TestSampler:

    def test_ring_rejects_tiny_capacity(self):
        with pytest.raises(ConfigurationError):
            DecimatingRing(3)

    def test_ring_decimates_and_keeps_order(self):
        ring = DecimatingRing(8)
        decimations = 0
        for i in range(50):
            if ring.append((float(i), 0, 0, ())):
                decimations += 1
        assert decimations > 0
        assert len(ring) < 8
        times = [sample[0] for sample in ring]
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing
        assert times[0] == 0.0                # start of run retained

    def test_sampler_doubles_interval_on_decimation(self):
        sampler = TelemetrySampler(2.0, capacity=4)
        for i in range(40):
            sampler.sample(float(i), in_flight=0, events=i)
        assert sampler.interval > sampler.base_interval
        assert sampler.interval == sampler.base_interval * 2 ** (
            sampler.ring.stride.bit_length() - 1)

    def test_run_timestamps_strictly_monotone(self):
        telemetry = _record(ring_capacity=64)
        times = telemetry.global_series.t
        assert len(times) >= 4
        assert all(a < b for a, b in zip(times, times[1:]))
        for level in telemetry.levels:
            assert level.t == times

    def test_options_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetryOptions(sample_interval=0.0)
        with pytest.raises(ConfigurationError):
            TelemetryOptions(ring_capacity=2)


# ----------------------------------------------------------------------
# A recorded run: per-level series, counters, determinism
# ----------------------------------------------------------------------
class TestRecordedRun:

    def test_levels_cover_tree_and_utilization_bounded(self):
        telemetry = _record()
        assert telemetry.schema == 1
        levels = [series.level for series in telemetry.levels]
        assert levels == sorted(levels)
        assert levels[0] == 1  # leaves
        assert telemetry.result.final_height == len(levels)
        for series in telemetry.levels:
            assert series.nodes > 0
            # R locks are shared: util_read is mean readers per node and
            # may exceed 1.  W locks are exclusive, so util_write <= 1.
            assert all(u >= 0.0 for u in series.util_read)
            assert all(0.0 <= u <= 1.0 for u in series.util_write)
        # The root level is one node, so its utilization is 0/1-valued.
        root = telemetry.levels[-1]
        assert root.nodes == 1
        assert set(root.util_write) <= {0.0, 1.0}

    def test_engine_counters_present_and_deterministic(self):
        first = _record()
        second = _record()
        assert first.counters == second.counters
        assert first.counters["des.events"] > 0
        assert first.counters["des.spawned"] > 0
        assert first.counters["sim.response.count"] == \
            first.result.measured_operations

    def test_telemetry_does_not_change_the_result(self):
        config = _quick()
        plain = run_simulation(config)
        telemetry = _record(config)
        assert telemetry.result.throughput == plain.throughput
        assert telemetry.result.mean_response == plain.mean_response

    def test_reservoir_seeds_differ_by_run_seed(self):
        streams = [_reservoir_seed(seed, index)
                   for seed in (0, 1, 2) for index in (0, 1, 2)]
        assert len(set(streams)) == len(streams)


# ----------------------------------------------------------------------
# NDJSON export and the loader
# ----------------------------------------------------------------------
class TestExport:

    def test_run_round_trips_through_loader(self, tmp_path):
        telemetry = _record()
        path = tmp_path / "run.ndjson"
        write_ndjson(path, telemetry)
        loaded = load_ndjson(path)
        assert isinstance(loaded, RunTelemetry)
        # Canonical-string equality is the losslessness criterion (NaN
        # fields break == on the dataclasses, dict order is canonical).
        assert dumps_ndjson(loaded) == dumps_ndjson(telemetry)
        # int keys and (read, write) tuples restored (== breaks on NaN).
        waits = loaded.result.mean_lock_waits
        assert set(waits) == set(telemetry.result.mean_lock_waits)
        assert all(isinstance(level, int) for level in waits)
        assert all(isinstance(pair, tuple) and len(pair) == 2
                   for pair in waits.values())

    def test_sweep_round_trips(self):
        runs = [_record(_quick(seed=seed)) for seed in (7, 8)]
        sweep = merge_telemetry(runs)
        text = dumps_ndjson(sweep)
        loaded = loads_ndjson(text)
        assert isinstance(loaded, SweepTelemetry)
        assert dumps_ndjson(loaded) == text
        assert loaded.seeds == [7, 8]
        assert loaded.counters == merge_counter_snapshots(
            run.counters for run in runs)

    def test_loader_rejects_bad_artifacts(self):
        with pytest.raises(ConfigurationError):
            loads_ndjson("")
        with pytest.raises(ConfigurationError):
            loads_ndjson('{"record":"series"}\n')
        with pytest.raises(ConfigurationError):
            loads_ndjson('{"record":"header","schema":99,"kind":"run",'
                         '"algorithm":"x","arrival_rate":0.1,"seeds":[0]}\n')

    def test_loader_skips_unknown_records(self):
        telemetry = _record()
        lines = dumps_ndjson(telemetry).splitlines()
        lines.insert(2, '{"record":"future-extension","seed":7,"x":1}')
        loaded = loads_ndjson("\n".join(lines) + "\n")
        assert dumps_ndjson(loaded) == dumps_ndjson(telemetry)

    def test_merge_rejects_mixed_algorithms(self):
        first = _record()
        second = _record(_quick(algorithm="naive-lock-coupling"))
        with pytest.raises(ConfigurationError):
            merge_telemetry([first, second])
        with pytest.raises(ConfigurationError):
            merge_telemetry([])


# ----------------------------------------------------------------------
# Batch integration: parallel == serial, cache bypass
# ----------------------------------------------------------------------
class TestBatchIntegration:

    def test_parallel_merge_equals_serial(self):
        config = _quick()
        _, serial = collect_replications(config, n_seeds=3, jobs=1)
        _, fanned = collect_replications(config, n_seeds=3, jobs=2)
        assert dumps_ndjson(fanned) == dumps_ndjson(serial)

    def test_telemetry_tasks_bypass_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = SimTask(_quick(), telemetry=TelemetryOptions())
        seen = {}
        results = run_batch([task], cache=cache,
                            telemetry_sink=lambda i, t: seen.update({i: t}))
        assert results[0].measured_operations > 0
        assert isinstance(seen[0], RunTelemetry)
        assert cache.stats.stores == 0 and cache.stats.hits == 0
        # A second pass recomputes rather than hitting the cache.
        run_batch([task], cache=cache, telemetry_sink=lambda i, t: None)
        assert cache.stats.hits == 0

    def test_telemetry_requires_open_tasks(self):
        with pytest.raises(ConfigurationError):
            SimTask(_quick(), kind="closed", mpl=4,
                    telemetry=TelemetryOptions())

    def test_progress_printer_lines(self, capsys):
        import io
        stream = io.StringIO()
        printer = ProgressPrinter(total=2, stream=stream)
        telemetry = _record()
        printer(telemetry.result)
        printer(telemetry.result)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]")
        # Algorithms print by registry display label, not raw name.
        assert "Link-type" in lines[0] and "seed=7" in lines[0]


# ----------------------------------------------------------------------
# CLI: the simulate subcommand
# ----------------------------------------------------------------------
class TestSimulateCLI:

    def test_simulate_writes_loadable_ndjson(self, tmp_path, capsys):
        from repro.experiments.runner import main
        out = tmp_path / "metrics.ndjson"
        code = main(["simulate", "--algorithm", "link-type",
                     "--rate", "0.15", "--scale", "0.02", "--seeds", "2",
                     "--metrics-out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "telemetry written" in captured.out
        assert "seed=0" in captured.out and "seed=1" in captured.out
        loaded = load_ndjson(out)
        assert isinstance(loaded, SweepTelemetry)
        assert len(loaded.runs) == 2
        assert all(run.global_series.t for run in loaded.runs)
