"""Tests for the reservoir percentile sampler, the simulator's latency
percentiles, and range scans (sequential + concurrent Link-type)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, build_tree, check_invariants
from repro.des.stats import ReservoirSample
from repro.simulator import SimulationConfig, run_simulation


class TestReservoirSample:
    def test_small_stream_kept_exactly(self):
        sample = ReservoirSample(capacity=100)
        for x in range(50):
            sample.add(float(x))
        assert sample.n_seen == 50
        assert sample.percentile(0) == 0.0
        assert sample.percentile(100) == 49.0
        assert sample.percentile(50) == pytest.approx(24.5)

    def test_percentiles_of_known_distribution(self):
        rng = random.Random(1)
        sample = ReservoirSample(capacity=4_000)
        for _ in range(60_000):
            sample.add(rng.random())
        assert sample.percentile(50) == pytest.approx(0.5, abs=0.03)
        assert sample.percentile(90) == pytest.approx(0.9, abs=0.03)
        assert sample.percentile(99) == pytest.approx(0.99, abs=0.02)

    def test_uniform_sampling_is_unbiased(self):
        """Reservoir mean tracks the stream mean even for a growing
        sequence (which would bias a keep-the-first policy)."""
        sample = ReservoirSample(capacity=500, seed=3)
        for x in range(20_000):
            sample.add(float(x))
        estimate = sample.percentile(50)
        assert estimate == pytest.approx(10_000, rel=0.15)

    def test_empty_is_nan(self):
        import math
        assert math.isnan(ReservoirSample().percentile(50))

    def test_single_item(self):
        sample = ReservoirSample()
        sample.add(7.0)
        assert sample.percentile(50) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=0)
        sample = ReservoirSample()
        sample.add(1.0)
        with pytest.raises(ValueError):
            sample.percentile(101)

    def test_quantile_summary_keys(self):
        sample = ReservoirSample()
        for x in (1.0, 2.0, 3.0):
            sample.add(x)
        summary = sample.quantile_summary()
        assert set(summary) == {"p50", "p90", "p99"}


class TestSimulatorPercentiles:
    def test_percentiles_reported_and_ordered(self):
        result = run_simulation(SimulationConfig(
            algorithm="naive-lock-coupling", arrival_rate=0.2,
            n_items=3_000, n_operations=600, warmup_operations=60,
            seed=4))
        for op in ("search", "insert", "delete"):
            p = result.response_percentiles[op]
            assert p["p50"] <= p["p90"] <= p["p99"]
            # The mean sits between the median and the tail.
            assert p["p50"] <= result.mean_response[op] * 1.25

    def test_tail_grows_with_load(self):
        def p99(rate):
            result = run_simulation(SimulationConfig(
                algorithm="naive-lock-coupling", arrival_rate=rate,
                n_items=3_000, n_operations=800, warmup_operations=80,
                seed=6))
            return result.response_percentiles["search"]["p99"]

        assert p99(0.4) > p99(0.05)


class TestSequentialRangeSearch:
    def test_basic_range(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 3):
            tree.insert(key)
        assert list(tree.range_search(10, 40)) == list(range(12, 40, 3))

    def test_empty_and_inverted_ranges(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key)
        assert list(tree.range_search(20, 30)) == []
        assert list(tree.range_search(5, 5)) == []
        assert list(tree.range_search(7, 3)) == []

    def test_full_range_equals_items(self):
        tree = build_tree(2_000, order=7, seed=3)
        assert list(tree.range_search(0, 1 << 31)) == list(tree.items())

    @settings(max_examples=40, deadline=None)
    @given(keys=st.sets(st.integers(0, 500), min_size=1, max_size=200),
           low=st.integers(0, 500), span=st.integers(0, 200))
    def test_matches_set_model(self, keys, low, span):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key)
        high = low + span
        assert list(tree.range_search(low, high)) == sorted(
            k for k in keys if low <= k < high)


class TestConcurrentLinkScan:
    def _run_scans(self, seed=0, n_scans=30, n_mutations=400):
        from repro.btree.builder import build_tree as build
        from repro.des.engine import Simulator
        from repro.des.rwlock import RWLock
        from repro.model.params import CostModel
        from repro.simulator import link as link_ops
        from repro.simulator.costs import ServiceTimeSampler
        from repro.simulator.metrics import MetricsCollector
        from repro.simulator.operations import OperationContext

        rng = random.Random(seed)

        def attach(node):
            node.lock = RWLock(str(node.node_id))

        tree = build(500, order=4, key_space=2_000,
                     rng=random.Random(seed + 1), on_new_node=attach)
        sim = Simulator()
        metrics = MetricsCollector()
        metrics.measuring = True
        metrics.measure_start_time = 0.0
        ctx = OperationContext(
            sim, tree, ServiceTimeSampler(CostModel(disk_cost=2.0), tree,
                                          random.Random(seed + 2)),
            metrics, rng)
        scans = []
        t = 0.0
        for i in range(n_mutations):
            t += rng.expovariate(1.5)
            sim.spawn(link_ops.insert(ctx, rng.randrange(2_000)),
                      delay=t)
            if i % (n_mutations // n_scans) == 0:
                low = rng.randrange(1_800)
                out = []
                scans.append((low, low + 200, out))
                sim.spawn(link_ops.scan(ctx, low, low + 200, out),
                          delay=t)
        sim.run()
        assert sim.active_processes == 0
        check_invariants(tree, allow_underflow=True)
        return tree, scans

    def test_scans_return_sorted_in_range(self):
        _tree, scans = self._run_scans()
        assert scans
        for low, high, out in scans:
            assert out == sorted(out)
            assert all(low <= k < high for k in out)

    def test_scan_sees_stable_prefix(self):
        """Keys present before the scan started and never touched are
        all reported (no lost reads through concurrent splits)."""
        tree, scans = self._run_scans(seed=5)
        resident = set(tree.items())
        for low, high, out in scans:
            # Everything the scan reported is (or was) a real key; the
            # final tree must contain every scanned key that survived.
            for key in out:
                assert key in resident or True  # keys are never deleted here
            assert set(out).issubset(resident)
