"""Unit tests for the sequential B+-tree."""

import pytest

from repro.btree import (
    BPlusTree,
    MERGE_AT_EMPTY,
    MERGE_AT_HALF,
    check_invariants,
)
from repro.btree.node import InternalNode
from repro.errors import BTreeError, ConfigurationError


class TestBasics:
    def test_fresh_tree(self):
        tree = BPlusTree(order=4)
        assert tree.height == 1
        assert len(tree) == 0
        assert not tree.search(1)
        check_invariants(tree)

    def test_order_floor(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(order=2)

    def test_insert_search_delete_roundtrip(self):
        tree = BPlusTree(order=4)
        assert tree.insert(10)
        assert tree.search(10)
        assert 10 in tree
        assert tree.delete(10)
        assert not tree.search(10)
        assert len(tree) == 0

    def test_duplicate_insert(self):
        tree = BPlusTree(order=4)
        assert tree.insert(1)
        assert not tree.insert(1)
        assert len(tree) == 1

    def test_delete_missing(self):
        tree = BPlusTree(order=4)
        assert not tree.delete(99)

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in (9, 1, 7, 3, 5, 2, 8, 4, 6):
            tree.insert(key)
        assert list(tree.items()) == list(range(1, 10))

    def test_iter_protocol(self):
        tree = BPlusTree(order=4)
        for key in (3, 1, 2):
            tree.insert(key)
        assert list(tree) == [1, 2, 3]
        assert sorted(tree) == list(tree.items())


class TestSplitting:
    def test_leaf_split_grows_root(self):
        tree = BPlusTree(order=3)
        for key in range(4):
            tree.insert(key)
        assert tree.height == 2
        check_invariants(tree)
        assert sorted(tree.items()) == list(range(4))

    def test_sequential_fill_many_levels(self):
        tree = BPlusTree(order=3)
        for key in range(200):
            tree.insert(key)
        assert tree.height >= 4
        check_invariants(tree)
        assert list(tree.items()) == list(range(200))

    def test_reverse_fill(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(100)):
            tree.insert(key)
        check_invariants(tree)
        assert list(tree.items()) == list(range(100))

    def test_split_count_increments(self):
        tree = BPlusTree(order=3)
        for key in range(50):
            tree.insert(key)
        assert tree.split_count > 0

    def test_right_links_after_splits(self):
        tree = BPlusTree(order=3)
        for key in range(64):
            tree.insert(key)
        for level in range(1, tree.height + 1):
            chain = list(tree.level_nodes(level))
            assert chain[-1].high_key is None
            for left, right in zip(chain, chain[1:]):
                assert left.right is right
                assert left.high_key is not None


class TestMergeAtEmpty:
    def test_leaves_survive_until_empty(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_EMPTY)
        for key in range(20):
            tree.insert(key)
        merges_before = tree.merge_count
        # Delete down to one key per leaf: no restructuring yet.
        tree.delete(1)
        assert tree.merge_count == merges_before
        check_invariants(tree)

    def test_drain_to_empty(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_EMPTY)
        for key in range(100):
            tree.insert(key)
        for key in range(100):
            assert tree.delete(key)
            check_invariants(tree)
        assert len(tree) == 0
        assert tree.height == 1

    def test_drain_reverse_order(self):
        tree = BPlusTree(order=5, merge_policy=MERGE_AT_EMPTY)
        for key in range(100):
            tree.insert(key)
        for key in reversed(range(100)):
            assert tree.delete(key)
        check_invariants(tree)
        assert len(tree) == 0

    def test_root_collapses(self):
        tree = BPlusTree(order=3, merge_policy=MERGE_AT_EMPTY)
        for key in range(30):
            tree.insert(key)
        tall = tree.height
        for key in range(29):
            tree.delete(key)
        assert tree.height < tall
        check_invariants(tree)


class TestMergeAtHalf:
    def test_borrowing_keeps_occupancy(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_HALF)
        for key in range(40):
            tree.insert(key)
        for key in range(0, 40, 3):
            tree.delete(key)
            check_invariants(tree)

    def test_drain_to_empty(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_HALF)
        for key in range(120):
            tree.insert(key)
        for key in range(120):
            assert tree.delete(key)
            check_invariants(tree)
        assert len(tree) == 0
        assert tree.height == 1

    def test_merge_count_grows(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_HALF)
        for key in range(60):
            tree.insert(key)
        for key in range(60):
            tree.delete(key)
        assert tree.merge_count > 0


class TestPrimitives:
    def test_half_split_leaf(self):
        tree = BPlusTree(order=4)
        for key in (1, 2, 3, 4, 5):
            tree.root.keys.append(key)  # overfill directly
        sibling, separator = tree.half_split(tree.root)
        assert separator == sibling.keys[0]
        assert tree.root.keys == [1, 2]
        assert sibling.keys == [3, 4, 5]
        assert tree.root.right is sibling
        assert tree.root.high_key == separator
        assert sibling.high_key is None

    def test_grow_root(self):
        tree = BPlusTree(order=4)
        for key in (1, 2, 3, 4, 5):
            tree.root.keys.append(key)
        tree._size = 5
        old_root = tree.root
        sibling, separator = tree.half_split(old_root)
        new_root = tree.grow_root(old_root, separator, sibling)
        assert tree.root is new_root
        assert tree.height == 2
        assert new_root.children == [old_root, sibling]
        check_invariants(tree)

    def test_grow_root_rejects_non_root(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key)
        leaf = tree.find_leaf(0)
        with pytest.raises(BTreeError):
            tree.grow_root(leaf, 5, leaf)

    def test_complete_split_level_check(self):
        tree = BPlusTree(order=3)
        for key in range(30):
            tree.insert(key)
        root = tree.root
        assert isinstance(root, InternalNode)
        leaf = tree.find_leaf(0)
        if root.level != leaf.level + 1:
            with pytest.raises(BTreeError):
                tree.complete_split(root, 999, leaf)

    def test_apply_leaf_insert_updates_size(self):
        tree = BPlusTree(order=4)
        leaf = tree.find_leaf(3)
        assert tree.apply_leaf_insert(leaf, 3)
        assert len(tree) == 1
        assert not tree.apply_leaf_insert(leaf, 3)
        assert len(tree) == 1

    def test_apply_leaf_delete_updates_size(self):
        tree = BPlusTree(order=4)
        tree.insert(3)
        leaf = tree.find_leaf(3)
        assert tree.apply_leaf_delete(leaf, 3)
        assert len(tree) == 0
        assert not tree.apply_leaf_delete(leaf, 3)

    def test_remove_empty_leaf_requires_merge_at_empty(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_HALF)
        for key in range(10):
            tree.insert(key)
        with pytest.raises(BTreeError):
            tree.remove_empty_leaf(tree.path_to(0))

    def test_level_nodes_out_of_range(self):
        tree = BPlusTree(order=4)
        with pytest.raises(BTreeError):
            list(tree.level_nodes(2))


class TestSafety:
    def test_insert_safety(self):
        tree = BPlusTree(order=3)
        leaf = tree.root
        assert tree.is_insert_safe(leaf)
        for key in range(3):
            tree.insert(key)
        assert not tree.is_insert_safe(tree.find_leaf(0))

    def test_delete_safety_merge_at_empty(self):
        tree = BPlusTree(order=4, merge_policy=MERGE_AT_EMPTY)
        for key in range(12):
            tree.insert(key)
        leaf = tree.find_leaf(0)
        # Safe while more than one key remains.
        while leaf.n_entries() > 1:
            assert tree.is_delete_safe(leaf)
            tree.delete(leaf.keys[0])
        assert not tree.is_delete_safe(leaf)

    def test_root_always_delete_safe(self):
        tree = BPlusTree(order=4)
        tree.insert(1)
        assert tree.is_delete_safe(tree.root)

    def test_on_new_and_free_node_hooks(self):
        created, freed = [], []
        tree = BPlusTree(order=3, merge_policy=MERGE_AT_EMPTY,
                         on_new_node=created.append,
                         on_free_node=freed.append)
        assert len(created) == 1  # the initial root leaf
        for key in range(20):
            tree.insert(key)
        assert len(created) > 1
        for key in range(20):
            tree.delete(key)
        assert freed  # collapse/removals freed nodes
        assert all(node.dead for node in freed)
