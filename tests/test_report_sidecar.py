"""NDJSON figure sidecars: round trip, determinism, corruption."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.report import (
    dumps_sidecar,
    loads_sidecar,
    read_sidecar,
    write_sidecar,
)


def _table() -> ExperimentTable:
    table = ExperimentTable("fig99", "A synthetic figure", "Figure 99",
                            ["arrival_rate", "response", "rho"])
    table.add(1.0, 12.5, 0.25)
    table.add(2.0, math.inf, 0.9)
    table.add(3.0, math.nan, -math.inf)
    table.note("synthetic data for the sidecar tests")
    return table


class TestRoundTrip:
    def test_values_notes_and_identity_survive(self):
        loaded = loads_sidecar(dumps_sidecar(_table()))
        assert loaded.experiment_id == "fig99"
        assert loaded.figure == "Figure 99"
        assert loaded.columns == ["arrival_rate", "response", "rho"]
        assert list(loaded.notes) == ["synthetic data for the sidecar tests"]
        assert tuple(loaded.rows[0]) == (1.0, 12.5, 0.25)
        assert loaded.rows[1][1] == math.inf
        assert math.isnan(loaded.rows[2][1])
        assert loaded.rows[2][2] == -math.inf

    def test_file_round_trip(self, tmp_path):
        path = write_sidecar(_table(), tmp_path / "sub" / "fig99.ndjson")
        assert path.exists()
        loaded = read_sidecar(path)
        assert tuple(loaded.rows[0]) == (1.0, 12.5, 0.25)


class TestDeterminism:
    def test_dumps_is_byte_stable(self):
        assert dumps_sidecar(_table()) == dumps_sidecar(_table())

    def test_every_line_is_strict_json(self):
        # allow_nan=False is part of the contract: naive json.loads of
        # each line must succeed, non-finite values arrive as strings.
        for line in dumps_sidecar(_table()).splitlines():
            record = json.loads(line)
            assert record["kind"] in ("header", "row", "note")


class TestCorruption:
    def test_missing_header_raises(self):
        body = dumps_sidecar(_table()).splitlines()[1]
        with pytest.raises(ConfigurationError, match="header"):
            loads_sidecar(body + "\n")

    def test_unsupported_schema_raises(self):
        text = dumps_sidecar(_table())
        header = json.loads(text.splitlines()[0])
        header["schema"] = 999
        patched = "\n".join([json.dumps(header)]
                            + text.splitlines()[1:]) + "\n"
        with pytest.raises(ConfigurationError, match="schema"):
            loads_sidecar(patched)

    def test_truncated_rows_raise(self):
        lines = dumps_sidecar(_table()).splitlines()
        truncated = "\n".join(lines[:-2]) + "\n"  # drop a row + the note
        with pytest.raises(ConfigurationError, match="truncated"):
            loads_sidecar(truncated)
