"""Tests for the ASCII chart renderer and the matplotlib gate."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.experiments.plot import (
    matplotlib_available,
    render_chart,
    save_figure_image,
)
from repro.experiments.runner import main as cli_main


def _table():
    table = ExperimentTable("t01", "a test series", "Test",
                            ["x", "alpha", "beta"])
    for x in range(10):
        table.add(float(x), float(x * x), 50.0 - x)
    return table


class TestRenderChart:
    def test_contains_markers_and_legend(self):
        text = render_chart(_table())
        assert "o = alpha" in text
        assert "x = beta" in text
        assert "x: x" in text
        assert "o" in text

    def test_axis_bounds_labelled(self):
        text = render_chart(_table())
        assert "81" in text   # max of alpha
        assert "0" in text

    def test_saturated_points_pinned_to_top(self):
        table = ExperimentTable("t02", "saturating", "Test", ["x", "y"])
        table.add(0.0, 1.0)
        table.add(1.0, 2.0)
        table.add(2.0, math.inf)
        text = render_chart(table)
        assert "^" in text

    def test_subset_of_columns(self):
        text = render_chart(_table(), y_columns=["beta"])
        assert "beta" in text
        assert "alpha" not in text

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart(_table(), y_columns=["gamma"])

    def test_empty_table_rejected(self):
        table = ExperimentTable("t03", "empty", "Test", ["x", "y"])
        with pytest.raises(ConfigurationError):
            render_chart(table)

    def test_all_saturated_rejected(self):
        table = ExperimentTable("t04", "all inf", "Test", ["x", "y"])
        table.add(0.0, math.inf)
        with pytest.raises(ConfigurationError):
            render_chart(table)

    def test_tiny_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart(_table(), width=4)

    def test_constant_series_renders(self):
        table = ExperimentTable("t05", "flat", "Test", ["x", "y"])
        for x in range(5):
            table.add(float(x), 3.0)
        assert "o" in render_chart(table)

    def test_single_point(self):
        table = ExperimentTable("t06", "dot", "Test", ["x", "y"])
        table.add(1.0, 1.0)
        assert "o" in render_chart(table)


def test_cli_plot_flag(capsys):
    assert cli_main(["run", "fig11", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "x: disk_cost" in out
    assert "max_throughput" in out


class TestMatplotlibGate:
    @pytest.mark.skipif(matplotlib_available(),
                        reason="matplotlib installed")
    def test_png_without_matplotlib_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="matplotlib"):
            save_figure_image(_table(), tmp_path / "t01.png")

    @pytest.mark.skipif(not matplotlib_available(),
                        reason="needs matplotlib")
    def test_backend_is_headless_and_figures_are_closed(self, tmp_path):
        import matplotlib
        import matplotlib.pyplot as plt

        path = save_figure_image(_table(), tmp_path / "t01.png")
        assert path.exists()
        # save_figure_image must have forced the headless backend
        # before pyplot's first import, and closed its figure.
        assert matplotlib.get_backend().lower() == "agg"
        assert plt.get_fignums() == []
