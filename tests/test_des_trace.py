"""Unit tests for the event trace facility."""

import pytest

from repro.des import (
    Acquire,
    Hold,
    READ,
    RWLock,
    Release,
    Simulator,
    TraceLog,
    WRITE,
)
from repro.errors import ConfigurationError


def _locked_run(trace):
    sim = Simulator(trace=trace)
    lock = RWLock("L")

    def writer():
        yield Acquire(lock, WRITE)
        yield Hold(2.0)
        yield Release(lock)

    def reader():
        yield Acquire(lock, READ)
        yield Release(lock)

    writer_proc = sim.spawn(writer(), name="writer")
    reader_proc = sim.spawn(reader(), name="reader", delay=1.0)
    sim.run()
    return sim, writer_proc, reader_proc


class TestTraceLog:
    def test_records_lifecycle_and_lock_events(self):
        trace = TraceLog()
        _sim, writer_proc, reader_proc = _locked_run(trace)
        kinds = [e.kind for e in trace]
        assert kinds.count("spawn") == 2
        assert kinds.count("finish") == 2
        assert kinds.count("request") == 2
        assert kinds.count("grant") == 2
        assert kinds.count("release") == 2
        assert kinds.count("hold") == 1

    def test_immediate_vs_queued_grant_details(self):
        trace = TraceLog()
        _sim, writer_proc, reader_proc = _locked_run(trace)
        grants = trace.events(kind="grant")
        by_pid = {event.pid: event for event in grants}
        assert "immediately" in by_pid[writer_proc.pid].detail
        assert "after 1.0000" in by_pid[reader_proc.pid].detail

    def test_timeline_is_ordered(self):
        trace = TraceLog()
        _sim, writer_proc, _reader = _locked_run(trace)
        timeline = trace.timeline(writer_proc.pid)
        assert [e.kind for e in timeline] == [
            "spawn", "request", "grant", "hold", "release", "finish"]
        times = [e.time for e in timeline]
        assert times == sorted(times)

    def test_ring_buffer_drops_oldest(self):
        trace = TraceLog(capacity=5)
        sim = Simulator(trace=trace)

        def ticker():
            for _ in range(10):
                yield Hold(1.0)

        sim.spawn(ticker())
        sim.run()
        assert len(trace) == 5
        assert trace.dropped == trace.total_recorded - 5
        assert trace.dropped > 0

    def test_filtering(self):
        trace = TraceLog()
        _locked_run(trace)
        assert all(e.kind == "request" for e in trace.events(kind="request"))
        late = trace.events(predicate=lambda e: e.time >= 2.0)
        assert late
        assert all(e.time >= 2.0 for e in late)

    def test_format_mentions_drops(self):
        trace = TraceLog(capacity=3)
        _locked_run(trace)
        text = trace.format()
        assert "earlier events dropped" in text

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            TraceLog(capacity=0)

    def test_tracing_does_not_change_results(self):
        """The trace is observation only: identical timing with and
        without it."""
        def run(trace):
            sim = Simulator(trace=trace)
            lock = RWLock("L")
            finish_times = []

            def worker(delay):
                yield Acquire(lock, WRITE)
                yield Hold(1.5)
                yield Release(lock)
                finish_times.append(sim.now)

            for i in range(4):
                sim.spawn(worker(i), delay=0.5 * i)
            sim.run()
            return finish_times

        assert run(None) == run(TraceLog())
