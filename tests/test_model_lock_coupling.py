"""Unit tests for the Naive Lock-coupling analysis (Theorems 1-5)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.occupancy import OccupancyModel
from repro.model.params import (
    CostModel,
    ModelConfig,
    OperationMix,
    TreeShape,
    paper_default_config,
)


class TestLowLoadLimits:
    def test_response_approaches_serial_time(self, paper_config):
        """As lambda -> 0 the response times approach the no-contention
        service times of Theorem 5."""
        p = analyze_lock_coupling(paper_config, 1e-6)
        costs, h = paper_config.costs, paper_config.height
        serial_search = sum(costs.se(level, h) for level in range(1, h + 1))
        assert p.response("search") == pytest.approx(serial_search, rel=1e-3)
        serial_delete = costs.modify(h) + sum(
            costs.se(level, h) for level in range(2, h + 1))
        assert p.response("delete") == pytest.approx(serial_delete, rel=1e-3)
        # Inserts additionally pay the expected split work.
        assert p.response("insert") > serial_delete

    def test_pure_search_has_no_waiting(self):
        """q_s = 1: no writers anywhere, so waits vanish at any load."""
        config = paper_default_config(
            mix=OperationMix(1.0, 0.0, 0.0))
        p = analyze_lock_coupling(config, 0.5)
        assert all(level.rho_w == 0.0 for level in p.levels)
        assert all(level.R == 0.0 for level in p.levels)
        costs, h = config.costs, config.height
        serial = sum(costs.se(level, h) for level in range(1, h + 1))
        assert p.response("search") == pytest.approx(serial)


class TestLoadBehaviour:
    def test_response_monotone_in_arrival_rate(self, paper_config):
        rates = (0.05, 0.15, 0.3, 0.45, 0.55)
        for op in ("search", "insert", "delete"):
            responses = [analyze_lock_coupling(paper_config, r).response(op)
                         for r in rates]
            assert all(a < b for a, b in zip(responses, responses[1:]))

    def test_root_utilization_monotone(self, paper_config):
        rhos = [analyze_lock_coupling(paper_config, r).root_writer_utilization
                for r in (0.1, 0.2, 0.3, 0.4, 0.5)]
        assert all(a < b for a, b in zip(rhos, rhos[1:]))

    def test_root_is_the_bottleneck(self, paper_config):
        """Lock-coupling makes the root the most utilised queue
        (paper Theorem 2)."""
        p = analyze_lock_coupling(paper_config, 0.4)
        assert p.root_writer_utilization == pytest.approx(
            p.max_writer_utilization)

    def test_saturation_produces_unstable_prediction(self, paper_config):
        p = analyze_lock_coupling(paper_config, 5.0)
        assert not p.stable
        assert p.saturated_level is not None
        assert p.response("insert") == math.inf
        assert p.root_writer_utilization == math.inf

    def test_insert_costlier_than_search(self, paper_config):
        p = analyze_lock_coupling(paper_config, 0.3)
        assert p.response("insert") > p.response("search")

    def test_w_wait_exceeds_r_wait(self, paper_config):
        p = analyze_lock_coupling(paper_config, 0.3)
        for level in p.levels:
            assert level.W >= level.R


class TestStructure:
    def test_level_solutions_cover_all_levels(self, paper_config):
        p = analyze_lock_coupling(paper_config, 0.2)
        assert [level.level for level in p.levels] == [1, 2, 3, 4, 5]

    def test_arrival_rates_thin_by_fanout(self, paper_config):
        """Proposition 2: each level's arrival rate is the level above
        divided by the fanout."""
        p = analyze_lock_coupling(paper_config, 0.2)
        for below, above in zip(p.levels, p.levels[1:]):
            ratio = ((above.lambda_r + above.lambda_w)
                     / (below.lambda_r + below.lambda_w))
            assert ratio == pytest.approx(
                paper_config.shape.fanout(above.level), rel=1e-9)

    def test_reader_writer_split_follows_mix(self, paper_config):
        p = analyze_lock_coupling(paper_config, 0.2)
        mix = paper_config.mix
        for level in p.levels:
            assert level.lambda_r / (level.lambda_r + level.lambda_w) \
                == pytest.approx(mix.q_search)

    def test_single_level_tree(self):
        config = ModelConfig(
            mix=OperationMix(0.3, 0.5, 0.2),
            costs=CostModel(disk_cost=1.0),
            shape=TreeShape(height=1), order=13)
        p = analyze_lock_coupling(config, 0.05)
        assert p.stable
        assert len(p.levels) == 1


class TestOptions:
    def test_custom_occupancy(self, paper_config):
        """Higher split probabilities raise insert response times."""
        calm = analyze_lock_coupling(
            paper_config, 0.2,
            occupancy=OccupancyModel.uniform(0.01, paper_config.height))
        hot = analyze_lock_coupling(
            paper_config, 0.2,
            occupancy=OccupancyModel.uniform(0.4, paper_config.height))
        assert hot.response("insert") > calm.response("insert")

    def test_exponential_service_model_runs(self, paper_config):
        p = analyze_lock_coupling(paper_config, 0.3,
                                  service_model="exponential")
        assert p.stable

    def test_hyperexponential_predicts_more_waiting(self, paper_config):
        """The ablation: ignoring the service-time variance (Theorem 3)
        underestimates the lock waits."""
        hyper = analyze_lock_coupling(paper_config, 0.45)
        expo = analyze_lock_coupling(paper_config, 0.45,
                                     service_model="exponential")
        assert hyper.response("insert") > expo.response("insert")

    def test_unknown_service_model_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_lock_coupling(paper_config, 0.1, service_model="gamma")

    def test_nonpositive_rate_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_lock_coupling(paper_config, 0.0)

    def test_disk_cost_slows_everything(self, paper_config):
        slow = analyze_lock_coupling(paper_config.with_disk_cost(10.0), 0.1)
        fast = analyze_lock_coupling(paper_config.with_disk_cost(1.0), 0.1)
        for op in ("search", "insert", "delete"):
            assert slow.response(op) > fast.response(op)
