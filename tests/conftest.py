"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.model.params import (
    CostModel,
    ModelConfig,
    OperationMix,
    TreeShape,
    paper_default_config,
)
from repro.simulator.config import SimulationConfig


@pytest.fixture
def rng():
    """A deterministic RNG for sampling-based tests."""
    return random.Random(0xBEEF)


@pytest.fixture
def paper_config() -> ModelConfig:
    """The Section 5.3 analytical configuration."""
    return paper_default_config()


@pytest.fixture
def memory_config() -> ModelConfig:
    """A fully-cached variant (disk cost 1)."""
    return paper_default_config(disk_cost=1.0)


@pytest.fixture
def small_shape_config() -> ModelConfig:
    """A small 3-level tree for fast analytical tests."""
    return ModelConfig(
        mix=OperationMix(q_search=0.3, q_insert=0.5, q_delete=0.2),
        costs=CostModel(disk_cost=2.0, in_memory_levels=1),
        shape=TreeShape.from_fanouts((8.0, 5.0)),
        order=11,
    )


@pytest.fixture
def quick_sim() -> SimulationConfig:
    """A small, fast simulator configuration."""
    return SimulationConfig(
        algorithm="naive-lock-coupling",
        arrival_rate=0.1,
        n_items=3_000,
        n_operations=400,
        warmup_operations=50,
        seed=11,
    )
