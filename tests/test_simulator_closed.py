"""Tests for the closed-system (fixed multiprogramming level) mode."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.simulator import SimulationConfig
from repro.simulator.closed import run_closed_simulation


def _config(algorithm="naive-lock-coupling", **overrides):
    defaults = dict(algorithm=algorithm, arrival_rate=1.0, n_items=3_000,
                    n_operations=400, warmup_operations=50, seed=13)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestBasics:
    def test_runs_and_reports_throughput(self):
        result = run_closed_simulation(_config(), multiprogramming_level=4)
        assert result.measured_operations >= 400
        assert result.throughput > 0
        assert math.isnan(result.arrival_rate)  # no open stream
        assert not result.overflowed
        assert result.peak_population == 4

    def test_deterministic(self):
        a = run_closed_simulation(_config(), 5)
        b = run_closed_simulation(_config(), 5)
        assert a.throughput == b.throughput
        assert a.mean_response == b.mean_response

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_closed_simulation(_config(), 0)
        with pytest.raises(ConfigurationError):
            run_closed_simulation(_config(), 5, think_time=-1.0)


class TestClosedSystemLaws:
    def test_single_terminal_throughput_is_inverse_response(self):
        """With MPL 1 there is no contention: throughput = 1 / mean
        response (Little's law for one customer, zero think time)."""
        result = run_closed_simulation(_config(n_operations=600), 1)
        assert result.throughput == pytest.approx(
            1.0 / result.overall_mean_response, rel=0.05)

    def test_think_time_lowers_throughput(self):
        busy = run_closed_simulation(_config(), 4, think_time=0.0)
        idle = run_closed_simulation(_config(), 4, think_time=50.0)
        assert idle.throughput < busy.throughput

    def test_throughput_saturates_for_lock_coupling(self):
        """The defining closed-system curve: throughput grows with MPL
        then plateaus at the lock-coupling capacity while response keeps
        climbing."""
        results = {mpl: run_closed_simulation(_config(), mpl)
                   for mpl in (2, 10, 40)}
        assert results[10].throughput > 1.5 * results[2].throughput
        # Plateau: 4x more terminals, < 35% more throughput.
        assert results[40].throughput < 1.35 * results[10].throughput
        # ... but responses keep growing.
        assert results[40].mean_response["search"] \
            > 2.0 * results[10].mean_response["search"]
        assert results[40].root_writer_utilization > 0.9

    def test_link_type_keeps_scaling(self):
        low = run_closed_simulation(_config("link-type"), 5)
        high = run_closed_simulation(_config("link-type"), 40)
        assert high.throughput > 4.0 * low.throughput
        assert high.mean_response["search"] \
            < 2.0 * low.mean_response["search"]

    def test_ordering_at_the_motivating_mpl(self):
        """The Section 1 scenario: at a multiprogramming level of ~50,
        link-type sustains far more throughput than lock-coupling."""
        naive = run_closed_simulation(_config(), 50)
        link = run_closed_simulation(_config("link-type"), 50)
        assert link.throughput > 2.5 * naive.throughput
        assert link.mean_response["search"] \
            < 0.5 * naive.mean_response["search"]
