"""Coverage for the error hierarchy and result containers."""

import math

import pytest

from repro import errors
from repro.model.results import (
    AlgorithmPrediction,
    LevelSolution,
    unstable_prediction,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        leaf_errors = [
            errors.ConfigurationError("x"),
            errors.UnstableQueueError(),
            errors.ConvergenceError("x"),
            errors.PopulationOverflowError(10, 5),
            errors.ProcessError("x"),
            errors.LockProtocolError("x"),
            errors.KeyNotFoundError("x"),
            errors.InvariantViolationError("x"),
        ]
        for error in leaf_errors:
            assert isinstance(error, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert isinstance(errors.ConfigurationError("x"), ValueError)

    def test_key_not_found_is_key_error(self):
        assert isinstance(errors.KeyNotFoundError("x"), KeyError)

    def test_unstable_queue_carries_level(self):
        error = errors.UnstableQueueError("saturated", level=4)
        assert error.level == 4
        assert errors.UnstableQueueError().level is None

    def test_population_overflow_message(self):
        error = errors.PopulationOverflowError(population=120, limit=100)
        assert error.population == 120
        assert error.limit == 100
        assert "120" in str(error) and "100" in str(error)

    def test_model_vs_simulation_branches(self):
        assert issubclass(errors.UnstableQueueError, errors.ModelError)
        assert issubclass(errors.LockProtocolError, errors.SimulationError)
        assert not issubclass(errors.ModelError, errors.SimulationError)


def _level(level=1, rho=0.2, r=0.5, w=0.8):
    return LevelSolution(level=level, lambda_r=0.3, lambda_w=0.1,
                         mu_r=1.0, mu_w=0.5, rho_w=rho, r_u=0.1,
                         r_e=0.2, R=r, W=w)


class TestLevelSolution:
    def test_reader_drain(self):
        level = _level(rho=0.25)
        expected = 0.25 * 0.1 + 0.75 * 0.2
        assert level.reader_drain == pytest.approx(expected)

    def test_writer_service_time(self):
        assert _level().writer_service_time == pytest.approx(2.0)


class TestAlgorithmPrediction:
    def _prediction(self):
        return AlgorithmPrediction(
            algorithm="test", arrival_rate=0.1, stable=True,
            levels=[_level(1, rho=0.1), _level(2, rho=0.4),
                    _level(3, rho=0.3)],
            response_times={"search": 10.0, "insert": 12.0,
                            "delete": 11.0})

    def test_root_vs_max_utilization(self):
        prediction = self._prediction()
        assert prediction.root_writer_utilization == 0.3   # top level
        assert prediction.max_writer_utilization == 0.4    # level 2

    def test_level_accessor(self):
        assert self._prediction().level(2).level == 2

    def test_mean_response(self):
        assert self._prediction().mean_response == pytest.approx(11.0)

    def test_unstable_prediction(self):
        prediction = unstable_prediction("test", 5.0, saturated_level=3)
        assert not prediction.stable
        assert prediction.saturated_level == 3
        assert prediction.response("insert") == math.inf
        assert prediction.root_writer_utilization == math.inf
        assert prediction.max_writer_utilization == math.inf
        assert prediction.mean_response == math.inf
