"""Unit tests for the recovery extension, throughput solvers and the
rules of thumb."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.model.link import analyze_link
from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.optimistic import analyze_optimistic
from repro.model.params import OperationMix, paper_default_config
from repro.model.recovery import (
    ALL_POLICIES,
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    analyze_optimistic_with_recovery,
)
from repro.model.throughput import (
    arrival_rate_for_root_utilization,
    max_throughput,
    stability_margin,
)
from repro.model.thumb import (
    rule_of_thumb_1,
    rule_of_thumb_2,
    rule_of_thumb_3,
    rule_of_thumb_4,
)


@pytest.fixture
def d10_config():
    return paper_default_config(disk_cost=10.0)


class TestRecovery:
    def test_policy_ordering(self, d10_config):
        """Section 7: response(no) <= response(leaf-only) <<
        response(naive)."""
        rate = 0.3
        responses = {
            policy.name: analyze_optimistic_with_recovery(
                d10_config, rate, policy=policy, t_trans=100.0
            ).response("insert")
            for policy in ALL_POLICIES
        }
        assert responses["no-recovery"] <= responses["leaf-only-recovery"]
        assert responses["leaf-only-recovery"] < responses["naive-recovery"]

    def test_leaf_only_is_cheap(self, d10_config):
        """Leaf-only recovery costs only slightly more than no recovery
        — the paper's punchline."""
        rate = 0.3
        none = analyze_optimistic_with_recovery(
            d10_config, rate, policy=NO_RECOVERY).response("insert")
        leaf = analyze_optimistic_with_recovery(
            d10_config, rate, policy=LEAF_ONLY_RECOVERY,
            t_trans=100.0).response("insert")
        assert leaf < 1.10 * none

    def test_naive_loses_most_throughput(self, d10_config):
        base = max_throughput(analyze_optimistic_with_recovery, d10_config,
                              policy=NO_RECOVERY)
        leaf = max_throughput(analyze_optimistic_with_recovery, d10_config,
                              policy=LEAF_ONLY_RECOVERY, t_trans=100.0)
        naive = max_throughput(analyze_optimistic_with_recovery, d10_config,
                               policy=NAIVE_RECOVERY, t_trans=100.0)
        assert leaf > 0.75 * base
        assert naive < 0.60 * base

    def test_zero_t_trans_equals_no_recovery(self, d10_config):
        rate = 0.4
        base = analyze_optimistic(d10_config, rate)
        naive0 = analyze_optimistic_with_recovery(
            d10_config, rate, policy=NAIVE_RECOVERY, t_trans=0.0)
        assert naive0.response("insert") == pytest.approx(
            base.response("insert"))

    def test_negative_t_trans_rejected(self, d10_config):
        with pytest.raises(ConfigurationError):
            analyze_optimistic_with_recovery(
                d10_config, 0.1, policy=NAIVE_RECOVERY, t_trans=-1.0)

    def test_algorithm_label_carries_policy(self, d10_config):
        p = analyze_optimistic_with_recovery(
            d10_config, 0.1, policy=LEAF_ONLY_RECOVERY)
        assert "leaf-only-recovery" in p.algorithm

    def test_longer_transactions_hurt_more(self, d10_config):
        responses = [
            analyze_optimistic_with_recovery(
                d10_config, 0.3, policy=NAIVE_RECOVERY,
                t_trans=t).response("insert")
            for t in (0.0, 50.0, 100.0, 200.0)
        ]
        assert all(a < b for a, b in zip(responses, responses[1:]))


class TestThroughputSolvers:
    def test_max_throughput_is_the_stability_boundary(self, paper_config):
        peak = max_throughput(analyze_lock_coupling, paper_config,
                              rel_tol=1e-5)
        assert analyze_lock_coupling(paper_config, peak).stable
        assert not analyze_lock_coupling(paper_config, peak * 1.01).stable

    def test_utilization_target_is_hit(self, paper_config):
        rate = arrival_rate_for_root_utilization(
            analyze_lock_coupling, paper_config, target=0.5, rel_tol=1e-5)
        rho = analyze_lock_coupling(
            paper_config, rate).root_writer_utilization
        assert rho == pytest.approx(0.5, abs=0.01)

    def test_target_below_half_gives_lower_rate(self, paper_config):
        low = arrival_rate_for_root_utilization(
            analyze_lock_coupling, paper_config, target=0.25)
        high = arrival_rate_for_root_utilization(
            analyze_lock_coupling, paper_config, target=0.75)
        assert low < high

    def test_bad_target_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            arrival_rate_for_root_utilization(
                analyze_lock_coupling, paper_config, target=1.5)

    def test_use_max_level_for_link(self, paper_config):
        rate = arrival_rate_for_root_utilization(
            analyze_link, paper_config, target=0.5, use_max_level=True)
        p = analyze_link(paper_config, rate)
        assert p.max_writer_utilization == pytest.approx(0.5, abs=0.02)

    def test_stability_margin(self, paper_config):
        stable = analyze_lock_coupling(paper_config, 0.1)
        assert 0.0 < stability_margin(stable) < 1.0
        unstable = analyze_lock_coupling(paper_config, 5.0)
        assert stability_margin(unstable) == -math.inf


class TestRulesOfThumb:
    def test_rule1_tracks_analysis_in_memory(self, memory_config):
        """For the in-memory tree Rule 1 closely matches the analytical
        lambda_{rho=.5} (paper Figure 13)."""
        analytical = arrival_rate_for_root_utilization(
            analyze_lock_coupling, memory_config, target=0.5)
        thumb = rule_of_thumb_1(memory_config)
        assert thumb == pytest.approx(analytical, rel=0.25)

    def test_rule1_overestimates_with_expensive_disk(self):
        """With D=10 and small nodes Rule 1 'vastly overestimates'...
        actually it *misses* the on-disk waiting, so it deviates from the
        analysis much more than in memory (paper Figure 13)."""
        config = paper_default_config(disk_cost=10.0)
        analytical = arrival_rate_for_root_utilization(
            analyze_lock_coupling, config, target=0.5)
        thumb = rule_of_thumb_1(config)
        assert abs(thumb - analytical) / analytical > 0.15

    def test_rule2_is_the_large_node_limit_of_rule1(self):
        """Rule 1 approaches Rule 2 as node size *and root fanout* grow
        (the paper's stated limit conditions), with the shape held
        non-degenerate via explicit fanouts."""
        from dataclasses import replace
        from repro.model.params import TreeShape
        gaps = []
        for order in (13, 59, 201, 1001):
            fanout = 0.69 * order
            base = paper_default_config(order=order)
            config = replace(base,
                             shape=TreeShape.from_fanouts((fanout, fanout)))
            gaps.append(abs(rule_of_thumb_1(config)
                            - rule_of_thumb_2(config)))
        assert all(a > b for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] < 0.02 * rule_of_thumb_2(paper_default_config())

    def test_rule2_independent_of_node_size(self):
        values = {rule_of_thumb_2(paper_default_config(order=order))
                  for order in (13, 59, 101)}
        # Only the height (via in-memory levels) could change Se(h); the
        # root is always cached so Rule 2 is constant.
        assert len(values) == 1

    def test_rule3_tracks_analysis(self, memory_config):
        analytical = arrival_rate_for_root_utilization(
            analyze_optimistic, memory_config, target=0.5)
        thumb = rule_of_thumb_3(memory_config)
        assert thumb == pytest.approx(analytical, rel=0.45)

    def test_rule4_grows_with_node_size(self):
        """Optimistic Descent's effective maximum rate grows with N
        (~ N / log^2 N): the paper's design contrast with Rule 2."""
        values = [rule_of_thumb_4(paper_default_config(order=order))
                  for order in (13, 31, 59, 101)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rules_need_updates(self):
        config = paper_default_config(mix=OperationMix(1.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            rule_of_thumb_1(config)
        with pytest.raises(ConfigurationError):
            rule_of_thumb_2(config)
        with pytest.raises(ConfigurationError):
            rule_of_thumb_3(config)
        with pytest.raises(ConfigurationError):
            rule_of_thumb_4(config)

    def test_ordering_rule3_above_rule1(self, paper_config):
        """Optimistic Descent's effective maximum is far above Naive's."""
        assert rule_of_thumb_3(paper_config) > 3 * rule_of_thumb_1(paper_config)
