"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.des import Acquire, Hold, READ, RWLock, Release, Simulator, WRITE
from repro.errors import ProcessError, SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: seen.append("c"))
    sim.schedule(1.0, lambda: seen.append("a"))
    sim.schedule(2.0, lambda: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, lambda tag=tag: seen.append(tag))
    sim.run()
    assert seen == ["first", "second", "third"]


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, lambda: seen.append("late"))
    sim.run(until=4.0)
    assert seen == []
    assert sim.now == 4.0
    sim.run()
    assert seen == ["late"]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_hold_advances_time():
    sim = Simulator()
    times = []

    def process():
        yield Hold(2.5)
        times.append(sim.now)
        yield Hold(1.5)
        times.append(sim.now)

    sim.spawn(process())
    sim.run()
    assert times == [2.5, 4.0]


def test_zero_hold_does_not_schedule():
    sim = Simulator()
    steps = []

    def process():
        steps.append(sim.now)
        yield Hold(0.0)
        steps.append(sim.now)

    sim.spawn(process())
    sim.run()
    assert steps == [0.0, 0.0]


def test_spawn_delay():
    sim = Simulator()
    starts = []

    def process():
        starts.append(sim.now)
        yield Hold(1.0)

    sim.spawn(process(), delay=3.0)
    sim.run()
    assert starts == [3.0]


def test_on_done_callback_and_bookkeeping():
    sim = Simulator()
    finished = []

    def process():
        yield Hold(1.0)

    sim.spawn(process(), name="p", on_done=lambda p: finished.append(p.name))
    assert sim.active_processes == 1
    sim.run()
    assert finished == ["p"]
    assert sim.active_processes == 0
    assert sim.total_spawned == 1


def test_process_records_start_and_finish_times():
    sim = Simulator()

    def process():
        yield Hold(2.0)

    proc = sim.spawn(process(), delay=1.0)
    sim.run()
    assert proc.started_at == 1.0
    assert proc.finished_at == 3.0
    assert proc.done


def test_stop_ends_run_after_current_event():
    sim = Simulator()
    seen = []

    def early():
        yield Hold(1.0)
        seen.append("early")
        sim.stop()

    def late():
        yield Hold(2.0)
        seen.append("late")

    sim.spawn(early())
    sim.spawn(late())
    sim.run()
    assert seen == ["early"]
    sim.run()
    assert seen == ["early", "late"]


def test_stop_when_predicate():
    sim = Simulator()
    counter = []

    def ticker():
        while True:
            yield Hold(1.0)
            counter.append(sim.now)

    sim.spawn(ticker())
    sim.run(stop_when=lambda: len(counter) >= 3)
    assert len(counter) == 3


def test_unknown_command_raises():
    sim = Simulator()

    def bad():
        yield "not a command"

    sim.spawn(bad())
    with pytest.raises(ProcessError):
        sim.run()


def test_non_generator_process_rejected():
    sim = Simulator()
    with pytest.raises(ProcessError):
        sim.spawn(lambda: None)


def test_resume_after_completion_is_an_error():
    sim = Simulator()

    def process():
        yield Hold(1.0)

    proc = sim.spawn(process())
    sim.run()
    sim.resume(proc)
    with pytest.raises(ProcessError):
        sim.run()


def test_lock_protocol_through_engine():
    """Acquire grants immediately when free; Release wakes waiters."""
    sim = Simulator()
    lock = RWLock("x")
    waits = {}

    def writer(name, hold):
        waits[name] = yield Acquire(lock, WRITE)
        yield Hold(hold)
        yield Release(lock)

    sim.spawn(writer("w1", 5.0))
    sim.spawn(writer("w2", 1.0), delay=1.0)
    sim.run()
    assert waits["w1"] == 0.0
    assert waits["w2"] == pytest.approx(4.0)  # arrived at 1, granted at 5


def test_reader_wait_value_sent_back():
    sim = Simulator()
    lock = RWLock("x")
    observed = []

    def writer():
        yield Acquire(lock, WRITE)
        yield Hold(3.0)
        yield Release(lock)

    def reader():
        wait = yield Acquire(lock, READ)
        observed.append((sim.now, wait))
        yield Release(lock)

    sim.spawn(writer())
    sim.spawn(reader(), delay=1.0)
    sim.run()
    assert observed == [(3.0, 2.0)]


def test_determinism_same_seed_same_trace():
    import random

    def trace(seed):
        rng = random.Random(seed)
        sim = Simulator()
        events = []

        def worker(i):
            yield Hold(rng.random())
            events.append((round(sim.now, 9), i))

        for i in range(50):
            sim.spawn(worker(i), delay=rng.random())
        sim.run()
        return events

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)
