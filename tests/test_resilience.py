"""Unit tests for the repro.resilience building blocks."""

from __future__ import annotations

import json
import math
import pickle

import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.resilience import (
    REASON_EVENT_CAP,
    REASON_WALL_DEADLINE,
    BatchReport,
    BudgetGuard,
    FailureRecord,
    FaultPlan,
    FaultSpec,
    KILL_WORKER,
    INJECT_NAN,
    STALL_TASK,
    CORRUPT_CACHE,
    ResilienceOptions,
    RetryPolicy,
    SweepJournal,
    TaskBudget,
    TruncatedResult,
    read_manifest,
)
from repro.resilience.manifest import keys_digest
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import run_simulation


def _quick(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="naive-lock-coupling", arrival_rate=0.15,
                    n_items=2_000, n_operations=150, warmup_operations=20,
                    seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
class TestTaskBudget:

    def test_empty_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskBudget()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskBudget(wall_seconds=0.0)
        with pytest.raises(ConfigurationError):
            TaskBudget(wall_seconds=math.inf)
        with pytest.raises(ConfigurationError):
            TaskBudget(max_events=0)
        with pytest.raises(ConfigurationError):
            TaskBudget(max_events=100, check_interval=0)

    def test_event_cap_is_exact(self):
        guard = BudgetGuard(TaskBudget(max_events=5))
        fired = [guard.exceeded() for _ in range(7)]
        assert fired == [False] * 4 + [True] * 3
        assert guard.tripped
        assert guard.reason == REASON_EVENT_CAP
        assert guard.events == 5  # counting stops at the cap

    def test_wall_deadline_checked_at_interval(self):
        guard = BudgetGuard(TaskBudget(wall_seconds=1e-6,
                                       check_interval=10))
        # The clock is already past the (tiny) deadline, but the check
        # only runs every 10 events.
        assert not any(guard.exceeded() for _ in range(9))
        assert guard.exceeded()
        assert guard.reason == REASON_WALL_DEADLINE

    def test_untripped_guard(self):
        guard = BudgetGuard(TaskBudget(max_events=1000))
        assert not guard.exceeded()
        assert not guard.tripped
        assert guard.reason is None
        assert guard.elapsed() >= 0.0


class TestBudgetedSimulation:

    def test_event_cap_truncates_run(self):
        outcome = run_simulation(_quick(), budget=TaskBudget(max_events=500))
        assert isinstance(outcome, TruncatedResult)
        assert outcome.reason == REASON_EVENT_CAP
        assert outcome.events_executed == 500
        assert outcome.result.overflowed  # saturation-suspected flag
        assert outcome.saturation_suspected

    def test_roomy_budget_changes_nothing(self):
        plain = run_simulation(_quick())
        budgeted = run_simulation(_quick(),
                                  budget=TaskBudget(max_events=10 ** 9))
        assert budgeted == plain  # full SimulationResult equality

    def test_closed_run_respects_budget(self):
        from repro.simulator.closed import run_closed_simulation
        outcome = run_closed_simulation(_quick(n_operations=100), 5,
                                        budget=TaskBudget(max_events=200))
        assert isinstance(outcome, TruncatedResult)
        assert outcome.result.overflowed

    def test_truncated_result_is_picklable(self):
        import dataclasses
        outcome = run_simulation(_quick(), budget=TaskBudget(max_events=300))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.reason == outcome.reason
        # repr-compare: partial metrics legitimately contain NaN, and
        # NaN != NaN would fail dataclass equality.
        assert repr(dataclasses.asdict(clone.result)) == \
            repr(dataclasses.asdict(outcome.result))


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:

    def test_encode_parse_round_trip(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=3, attempts=None),
            FaultSpec(kind=STALL_TASK, task_index=7, seconds=0.5),
            FaultSpec(kind=CORRUPT_CACHE, task_index=2),
            FaultSpec(kind=INJECT_NAN, count=-1),
            FaultSpec(kind=KILL_WORKER, task_index=1, attempts=(0, 2)),
        ))
        assert FaultPlan.parse(plan.encode()) == plan

    def test_env_round_trip(self, monkeypatch):
        from repro.resilience import FAULTS_ENV, plan_from_env
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=0, attempts=None),))
        monkeypatch.setenv(FAULTS_ENV, plan.encode())
        assert plan_from_env() == plan
        monkeypatch.setenv(FAULTS_ENV, "")
        assert plan_from_env() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="set-on-fire", task_index=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("kill-worker")  # needs a task index

    def test_attempt_selection(self):
        transient = FaultSpec(kind=KILL_WORKER, task_index=0)
        persistent = FaultSpec(kind=KILL_WORKER, task_index=0,
                               attempts=None)
        assert transient.fires_on(0) and not transient.fires_on(1)
        assert persistent.fires_on(0) and persistent.fires_on(5)
        plan = FaultPlan(specs=(transient,))
        assert plan.worker_faults(0, 0) == (transient,)
        assert plan.worker_faults(0, 1) == ()
        assert plan.worker_faults(1, 0) == ()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_cap=0.3, jitter=0.0)
        delays = [policy.delay_for(a) for a in (1, 2, 3, 4)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.3)  # capped
        assert delays[3] == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_token(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        a = policy.delay_for(1, token="alpha")
        b = policy.delay_for(1, token="beta")
        assert a == policy.delay_for(1, token="alpha")
        assert a != b  # different tokens spread out

    def test_options_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResilienceOptions(task_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceOptions(task_timeout=math.nan)
        with pytest.raises(ConfigurationError):
            ResilienceOptions(resume=True)  # resume needs a checkpoint
        ResilienceOptions(checkpoint=tmp_path / "j.ndjson", resume=True)


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
class TestSweepJournal:

    def test_write_and_replay(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        keys = ["k0", "k1", "k2"]
        with SweepJournal(path, keys) as journal:
            journal.record_completed(0, attempts=1, result={"x": 1})
            journal.record_quarantined(FailureRecord(
                index=1, key="k1", error="Boom", message="no", attempts=3))
            journal.record_event("retry", index=1, attempt=1)
        resumed = SweepJournal(path, keys, resume=True)
        try:
            assert resumed.completed == {0: {"x": 1}}
            assert resumed.prior_failures == {1: "Boom"}
        finally:
            resumed.close()

    def test_task_list_mismatch_refused(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        SweepJournal(path, ["a", "b"]).close()
        with pytest.raises(CheckpointError):
            SweepJournal(path, ["a", "different"], resume=True)
        with pytest.raises(CheckpointError):
            SweepJournal(path, ["a", "b", "c"], resume=True)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        keys = ["k0", "k1"]
        with SweepJournal(path, keys) as journal:
            journal.record_completed(0, attempts=1, result=41)
            journal.record_completed(1, attempts=1, result=42)
        # Simulate a crash mid-append: chop the last line in half.
        text = path.read_text()
        path.write_text(text[:len(text) - 25])
        resumed = SweepJournal(path, keys, resume=True)
        try:
            assert resumed.completed == {0: 41}  # task 1 recomputes
        finally:
            resumed.close()

    def test_non_journal_file_refused(self, tmp_path):
        path = tmp_path / "not-a-journal.ndjson"
        path.write_text("hello world\n")
        with pytest.raises(CheckpointError):
            SweepJournal(path, ["a"], resume=True)

    def test_read_manifest_view(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        with SweepJournal(path, ["k0", "k1"]) as journal:
            journal.record_completed(0, attempts=2, result=1.5)
            journal.record_quarantined(FailureRecord(
                index=1, key="k1", error="WorkerDied", message="rip",
                attempts=2))
        manifest = read_manifest(path)
        assert manifest["completed"] == [0]
        assert manifest["quarantined"] == [1]
        assert manifest["header"]["n_tasks"] == 2
        # The manifest view never exposes the pickled payload.
        assert "result" not in manifest["tasks"][0]

    def test_digest_is_order_sensitive(self):
        assert keys_digest(["a", "b"]) != keys_digest(["b", "a"])
        assert keys_digest([None, "a"]) != keys_digest(["a", None])


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestBatchReport:

    def test_summary_mentions_quarantine(self):
        report = BatchReport(results=[object(), None])
        report.failures.append(FailureRecord(
            index=1, key="k", error="Boom", message="m", attempts=3))
        report.retries = 2
        assert report.succeeded == 1
        assert not report.ok
        assert report.quarantined_indices == [1]
        text = report.summary()
        assert "1/2 tasks succeeded" in text
        assert "quarantined: 1" in text

    def test_clean_report_is_ok(self):
        report = BatchReport(results=[object()])
        assert report.ok
        assert report.summary() == "1/1 tasks succeeded"
