"""Workload-shaped pre-drawn streams for the vectorized kernels.

The tables contract: both the vector kernels and their scalar oracles
consume the same pre-drawn schedule tables, so a workload only has to
shape the tables — the PR 6/8 bit-equivalence then carries over to
every vector-native workload for free.  These tests enforce (a) the
default workload shapes to *bit-identical* tables, (b) shaped tables
still satisfy vector == scalar-oracle equivalence, and (c) the
transforms have the right distributional properties.
"""

import numpy as np
import pytest

from repro.des.vector import (
    LockContentionSpec,
    assert_equivalent,
    run_scalar_reference,
    run_vectorized,
)
from repro.des.vector_btree import (
    BTreeDescentSpec,
    assert_btree_equivalent,
    run_btree_vectorized,
    run_scalar_btree_reference,
)
from repro.errors import ConfigurationError
from repro.workload import (
    DEFAULT_WORKLOAD,
    HotspotKeysSpec,
    MMPPArrivals,
    MigratingHotspotKeysSpec,
    PoissonArrivals,
    SpikeArrivals,
    TransactionSpec,
    UniformKeysSpec,
    WorkloadSpec,
    ZipfKeysSpec,
)
from repro.workload.streams import (
    arrival_think_factors,
    supports_pre_draw,
    transform_key_uniforms,
    workload_btree_tables,
    workload_lock_durations,
)

N_LANES = 3
_SHAPED = WorkloadSpec(arrival=MMPPArrivals(),
                       keys=ZipfKeysSpec(theta=0.8))


def _btree_spec(**overrides) -> BTreeDescentSpec:
    defaults = dict(n_procs=6, iterations=5)
    defaults.update(overrides)
    return BTreeDescentSpec(**defaults)


def _lock_spec(**overrides) -> LockContentionSpec:
    return LockContentionSpec(**overrides)


# ----------------------------------------------------------------------
# Default workload: bit-identical tables
# ----------------------------------------------------------------------
class TestDefaultIdentity:

    def test_btree_tables_bit_identical(self):
        spec = _btree_spec()
        plain = spec.tables(N_LANES)
        shaped = workload_btree_tables(spec, N_LANES, DEFAULT_WORKLOAD)
        for name in ("think", "svc", "mod", "split", "path"):
            np.testing.assert_array_equal(getattr(plain, name),
                                          getattr(shaped, name))

    def test_lock_durations_bit_identical(self):
        spec = _lock_spec()
        plain_hold, plain_think = spec.durations(N_LANES)
        hold, think = workload_lock_durations(spec, N_LANES,
                                              DEFAULT_WORKLOAD)
        np.testing.assert_array_equal(plain_hold, hold)
        np.testing.assert_array_equal(plain_think, think)


# ----------------------------------------------------------------------
# Shaped tables: vector == scalar oracle
# ----------------------------------------------------------------------
class TestShapedEquivalence:

    @pytest.mark.parametrize("protocol", ["coupling", "optimistic"])
    def test_btree_vector_matches_oracle_on_shaped_tables(self,
                                                          protocol):
        spec = _btree_spec(protocol=protocol)
        tables = workload_btree_tables(spec, N_LANES, _SHAPED)
        vector = run_btree_vectorized(spec, N_LANES, tables=tables)
        scalars = [run_scalar_btree_reference(spec, lane, tables=tables)
                   for lane in range(N_LANES)]
        assert_btree_equivalent(vector, scalars)

    def test_lock_vector_matches_oracle_on_shaped_durations(self):
        spec = _lock_spec()
        durations = workload_lock_durations(spec, N_LANES, _SHAPED)
        vector = run_vectorized(spec, N_LANES, durations=durations)
        scalars = [run_scalar_reference(spec, lane, durations=durations)
                   for lane in range(N_LANES)]
        assert_equivalent(vector, scalars)

    def test_shaped_tables_differ_from_plain(self):
        spec = _btree_spec()
        plain = spec.tables(1)
        shaped = workload_btree_tables(spec, 1, _SHAPED)
        assert not np.array_equal(plain.path, shaped.path)
        assert not np.array_equal(plain.think, shaped.think)


# ----------------------------------------------------------------------
# Pre-draw gating
# ----------------------------------------------------------------------
class TestPreDrawGate:

    @pytest.mark.parametrize("workload,expected", [
        (DEFAULT_WORKLOAD, True),
        (_SHAPED, True),
        (WorkloadSpec(arrival=SpikeArrivals()), False),
        (WorkloadSpec(keys=MigratingHotspotKeysSpec()), False),
        (WorkloadSpec(transaction=TransactionSpec(size=2)), False),
    ], ids=["default", "mmpp-zipf", "spike", "migrating", "txn"])
    def test_supports_pre_draw(self, workload, expected):
        assert supports_pre_draw(workload) is expected

    def test_non_native_workload_rejected_by_table_builders(self):
        spec = _btree_spec()
        bad = WorkloadSpec(keys=MigratingHotspotKeysSpec())
        with pytest.raises(ConfigurationError, match="scalar"):
            workload_btree_tables(spec, 1, bad)
        with pytest.raises(ConfigurationError, match="scalar"):
            workload_lock_durations(_lock_spec(), 1, bad)

    def test_non_native_components_rejected_by_transforms(self):
        with pytest.raises(ConfigurationError):
            transform_key_uniforms(MigratingHotspotKeysSpec(),
                                   np.linspace(0, 0.99, 8))
        with pytest.raises(ConfigurationError):
            arrival_think_factors(SpikeArrivals(),
                                  np.random.default_rng(0), (4,))


# ----------------------------------------------------------------------
# Transform properties
# ----------------------------------------------------------------------
class TestTransforms:

    def test_uniform_transform_is_identity(self):
        u = np.linspace(0.0, 0.999, 64)
        assert transform_key_uniforms(UniformKeysSpec(), u) is u

    def test_hotspot_transform_concentrates_mass(self):
        rng = np.random.default_rng(5)
        u = rng.random(20_000)
        out = transform_key_uniforms(
            HotspotKeysSpec(hot_fraction=0.2, hot_probability=0.8), u)
        assert out.min() >= 0.0 and out.max() < 1.0
        hot_share = float((out < 0.2).mean())
        assert hot_share == pytest.approx(0.8, abs=0.02)

    def test_zipf_transform_skews_low(self):
        rng = np.random.default_rng(5)
        u = rng.random(20_000)
        out = transform_key_uniforms(ZipfKeysSpec(theta=0.9), u)
        assert out.min() >= 0.0 and out.max() < 1.0
        assert float((out < 0.1).mean()) > 0.5

    def test_scrambled_zipf_stays_in_unit_interval(self):
        rng = np.random.default_rng(5)
        u = rng.random(10_000)
        out = transform_key_uniforms(
            ZipfKeysSpec(theta=0.9, scramble=True), u)
        assert out.min() >= 0.0 and out.max() < 1.0
        assert float((out < 0.1).mean()) < 0.3  # spread out

    def test_poisson_factors_are_unit_and_draw_free(self):
        rng = np.random.default_rng(11)
        before = rng.bit_generator.state
        factors = arrival_think_factors(PoissonArrivals(), rng, (3, 4))
        assert factors.shape == (3, 4)
        np.testing.assert_array_equal(factors, np.ones((3, 4)))
        assert rng.bit_generator.state == before  # no draws consumed

    def test_mmpp_factors_follow_stationary_mixture(self):
        rng = np.random.default_rng(11)
        factors = arrival_think_factors(MMPPArrivals(), rng, 50_000)
        values = set(np.unique(factors))
        assert values == {0.5, 3.0}
        on_share = float((factors == 3.0).mean())
        assert on_share == pytest.approx(50.0 / 250.0, abs=0.01)
