"""The paper's in-text quantitative claims, checked end to end.

The paper has no numbered tables; its evaluation narrative makes several
checkable statements.  Each test here is one claim, referenced to the
section making it.  EXPERIMENTS.md records the measured values.
"""


import pytest

from repro.model import (
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    analyze_optimistic_with_recovery,
    arrival_rate_for_root_utilization,
    max_throughput,
    paper_default_config,
)
from repro.model.link import link_crossing_probability


class TestSection53Comparison:
    """'The Optimistic Descent algorithm has significantly better
    performance than the Naive Lock-coupling algorithm, and the Link
    type algorithm has significantly better performance than the
    Optimistic Descent algorithm.'"""

    def test_max_throughput_ordering_with_margins(self, paper_config):
        naive = max_throughput(analyze_lock_coupling, paper_config)
        optimistic = max_throughput(analyze_optimistic, paper_config)
        link = max_throughput(analyze_link, paper_config)
        assert optimistic / naive > 3.0
        assert link / optimistic > 20.0

    def test_link_has_no_effective_maximum(self, paper_config):
        """Section 6: 'the Link-type algorithm has no effective maximum
        throughput' — its knee sits orders of magnitude beyond any
        realistic load."""
        link = max_throughput(analyze_link, paper_config)
        naive = max_throughput(analyze_lock_coupling, paper_config)
        assert link > 100 * naive


class TestFigure10Claim:
    """'To go from rho_w = .5 to rho_w = 1 requires less than a 50%
    increase in arrival rate' (the cost of lock-coupling)."""

    def test_rho_half_to_saturation_increase(self, paper_config):
        rate_half = arrival_rate_for_root_utilization(
            analyze_lock_coupling, paper_config, target=0.5)
        rate_max = max_throughput(analyze_lock_coupling, paper_config)
        increase = (rate_max - rate_half) / rate_half
        assert increase < 0.50

    def test_utilization_growth_is_superlinear(self, paper_config):
        """Doubling the arrival rate more than doubles rho_w."""
        lo = analyze_lock_coupling(paper_config, 0.2).root_writer_utilization
        hi = analyze_lock_coupling(paper_config, 0.4).root_writer_utilization
        assert hi > 2.0 * lo


class TestSection6DesignRules:
    """'The maximum node size should be small [for Naive]. ... the
    maximum node sizes should be as large as possible [for Optimistic].'"""

    def test_naive_insensitive_to_node_size(self):
        rates = [
            arrival_rate_for_root_utilization(
                analyze_lock_coupling,
                paper_default_config(order=order), target=0.5)
            for order in (13, 31, 101)
        ]
        assert max(rates) < 2.5 * min(rates)

    def test_optimistic_gains_with_node_size(self):
        small = arrival_rate_for_root_utilization(
            analyze_optimistic, paper_default_config(order=13), target=0.5)
        large = arrival_rate_for_root_utilization(
            analyze_optimistic, paper_default_config(order=101), target=0.5)
        assert large > 3.0 * small

    def test_optimistic_advantage_widens_with_node_size(self):
        """'As the maximum node size increases, Optimistic Descent
        becomes increasingly better than Naive Lock-coupling.'"""
        ratios = []
        for order in (13, 31, 59, 101):
            config = paper_default_config(order=order)
            naive = arrival_rate_for_root_utilization(
                analyze_lock_coupling, config, target=0.5)
            optimistic = arrival_rate_for_root_utilization(
                analyze_optimistic, config, target=0.5)
            ratios.append(optimistic / naive)
        assert ratios[-1] > ratios[0]


class TestFigure9Claim:
    """'Link crossing is rare and has a negligible effect on
    performance.'"""

    def test_crossing_probability_negligible(self, paper_config):
        for rate in (1.0, 10.0, 30.0):
            assert link_crossing_probability(
                paper_config.with_disk_cost(10.0), rate, level=1) < 0.02


class TestSection7Recovery:
    """'The Leaf-only recovery algorithm has slightly worse performance
    than the no-recovery algorithm. In contrast, the Naive recovery
    algorithm has significantly worse performance than the Leaf-only
    algorithm.'"""

    @pytest.fixture
    def d10(self):
        return paper_default_config(disk_cost=10.0)

    def test_leaf_only_slightly_worse_than_none(self, d10):
        rate = 0.3
        none = analyze_optimistic_with_recovery(
            d10, rate, policy=NO_RECOVERY).response("insert")
        leaf = analyze_optimistic_with_recovery(
            d10, rate, policy=LEAF_ONLY_RECOVERY,
            t_trans=100.0).response("insert")
        assert none < leaf < 1.10 * none

    def test_naive_significantly_worse_than_leaf_only(self, d10):
        leaf_peak = max_throughput(
            analyze_optimistic_with_recovery, d10,
            policy=LEAF_ONLY_RECOVERY, t_trans=100.0)
        naive_peak = max_throughput(
            analyze_optimistic_with_recovery, d10,
            policy=NAIVE_RECOVERY, t_trans=100.0)
        assert naive_peak < 0.6 * leaf_peak


class TestFigure11Claim:
    """'The cost of locking nodes stored two levels below the root can
    have a significant impact on the performance of the algorithm.'"""

    def test_disk_cost_halves_throughput(self):
        cached = max_throughput(analyze_lock_coupling,
                                paper_default_config(disk_cost=1.0))
        disk10 = max_throughput(analyze_lock_coupling,
                                paper_default_config(disk_cost=10.0))
        assert disk10 < 0.6 * cached
