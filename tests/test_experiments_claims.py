"""Tests for the in-text claims evaluator and its CLI surface."""

import pytest

from repro.experiments.claims import (
    ClaimResult,
    evaluate_claims,
    format_claims,
)
from repro.experiments.runner import main as cli_main


@pytest.fixture(scope="module")
def results():
    return evaluate_claims()


def test_every_claim_holds(results):
    failing = [r.claim_id for r in results if not r.holds]
    assert not failing, f"claims failing: {failing}"


def test_all_sections_covered(results):
    sections = {r.section.split(" ")[0] for r in results}
    assert "Section" in sections.pop() or sections  # sanity
    ids = {r.claim_id for r in results}
    assert ids == {"ordering", "rho-half-to-one", "node-size-rules",
                   "link-crossings", "recovery",
                   "restrictive-serialization"}


def test_measured_strings_are_informative(results):
    for r in results:
        assert r.measured
        assert any(ch.isdigit() for ch in r.measured)


def test_format_lists_every_claim(results):
    text = format_claims(results)
    for r in results:
        assert r.claim_id in text
    assert f"{len(results)}/{len(results)} claims hold" in text


def test_format_marks_failures():
    fake = [ClaimResult("x", "Section 0", "up is down", "no", False)]
    text = format_claims(fake)
    assert "FAILS" in text
    assert "0/1 claims hold" in text


def test_cli_claims_exit_code(capsys):
    assert cli_main(["claims"]) == 0
    out = capsys.readouterr().out
    assert "claims hold" in out
