"""Unit tests for B-tree nodes."""

import pytest

from repro.btree.node import InternalNode, LeafNode
from repro.errors import BTreeError


class TestLeafNode:
    def test_fresh_leaf(self):
        leaf = LeafNode()
        assert leaf.is_leaf
        assert leaf.level == 1
        assert leaf.n_entries() == 0
        assert not leaf.dead

    def test_insert_keeps_sorted(self):
        leaf = LeafNode()
        for key in (5, 1, 3, 4, 2):
            assert leaf.insert_key(key)
        assert leaf.keys == [1, 2, 3, 4, 5]

    def test_duplicate_insert_rejected(self):
        leaf = LeafNode()
        assert leaf.insert_key(7)
        assert not leaf.insert_key(7)
        assert leaf.keys == [7]

    def test_contains(self):
        leaf = LeafNode()
        leaf.insert_key(2)
        leaf.insert_key(4)
        assert leaf.contains(2)
        assert not leaf.contains(3)

    def test_delete(self):
        leaf = LeafNode()
        leaf.insert_key(1)
        leaf.insert_key(2)
        assert leaf.delete_key(1)
        assert not leaf.delete_key(1)
        assert leaf.keys == [2]

    def test_covers_with_high_key(self):
        leaf = LeafNode()
        assert leaf.covers(10**9)  # no high key = rightmost
        leaf.high_key = 100
        assert leaf.covers(99)
        assert not leaf.covers(100)


class TestInternalNode:
    def _node(self):
        node = InternalNode(level=2)
        left, mid, right = LeafNode(), LeafNode(), LeafNode()
        node.keys = [10, 20]
        node.children = [left, mid, right]
        return node, left, mid, right

    def test_level_one_rejected(self):
        with pytest.raises(BTreeError):
            InternalNode(level=1)

    def test_child_routing(self):
        node, left, mid, right = self._node()
        assert node.child_for(5) is left
        assert node.child_for(10) is mid   # separator routes right
        assert node.child_for(15) is mid
        assert node.child_for(20) is right
        assert node.child_for(99) is right

    def test_insert_router(self):
        node, _left, mid, _right = self._node()
        sibling = LeafNode()
        node.insert_router(15, sibling)
        assert node.keys == [10, 15, 20]
        assert node.children[2] is sibling
        assert node.child_for(17) is sibling
        assert node.child_for(12) is mid

    def test_duplicate_router_rejected(self):
        node, *_ = self._node()
        with pytest.raises(BTreeError):
            node.insert_router(10, LeafNode())

    def test_remove_middle_child_left_absorbs(self):
        node, left, mid, right = self._node()
        node.remove_child(mid)
        assert node.children == [left, right]
        # The left sibling absorbs the removed (empty) child's range.
        assert node.keys == [20]
        assert node.child_for(5) is left
        assert node.child_for(15) is left
        assert node.child_for(50) is right

    def test_remove_first_child(self):
        node, left, mid, right = self._node()
        node.remove_child(left)
        assert node.children == [mid, right]
        assert node.keys == [20]

    def test_remove_last_child(self):
        node, left, mid, right = self._node()
        node.remove_child(right)
        assert node.children == [left, mid]
        assert node.keys == [10]

    def test_remove_only_child_empties_node(self):
        node = InternalNode(level=2)
        only = LeafNode()
        node.children = [only]
        node.remove_child(only)
        assert node.children == []
        assert node.keys == []

    def test_remove_non_child_rejected(self):
        node, *_ = self._node()
        with pytest.raises(BTreeError):
            node.remove_child(LeafNode())

    def test_node_ids_unique(self):
        ids = {LeafNode().node_id for _ in range(100)}
        assert len(ids) == 100
