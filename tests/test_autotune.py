"""The measured batch-width cost model (:mod:`repro.des.autotune`).

The calibration's job is scheduling, not correctness — results are
bit-identical at every width (``tests/test_batch_replications.py``) —
so these tests pin the model's math, the probe's plumbing, the
persistence contract (atomic, fingerprinted, corrupt → re-probe) and
the ``batch="auto"`` resolution path.
"""

import json

import pytest

from repro.des import autotune
from repro.des.autotune import (
    BatchCalibration,
    ProtocolCalibration,
    calibrate,
    calibration_path,
    choose_width,
    load_calibration,
    resolve_auto_width,
    save_calibration,
)
from repro.des.vector_btree import PROTOCOLS, BTreeDescentSpec

#: A tiny probe spec so calibration tests stay fast.
TINY = BTreeDescentSpec(iterations=2, n_procs=4)


def _entry(protocol="coupling", a=1e-4, b=1e-6, dispatches=100.0,
           events=500.0, scalar=250_000.0) -> ProtocolCalibration:
    return ProtocolCalibration(
        protocol=protocol, overhead_per_dispatch=a,
        cost_per_lane_dispatch=b, dispatches=dispatches,
        events_per_lane=events, scalar_events_per_sec=scalar)


def _calibration(**overrides) -> BatchCalibration:
    entries = {protocol: _entry(protocol) for protocol in PROTOCOLS}
    fields = dict(entries=entries, probe_widths=(32, 256),
                  fingerprint=autotune._fingerprint(),
                  generated_at="2026-08-08T00:00:00Z")
    fields.update(overrides)
    return BatchCalibration(**fields)


class TestCostModel:

    def test_predicted_speedup_math(self):
        entry = _entry(a=1e-4, b=1e-6, dispatches=100.0, events=500.0,
                       scalar=250_000.0)
        # T(64) = 100 * (1e-4 + 64e-6) s; eps = 64*500/T; ratio vs c.
        seconds = 100.0 * (1e-4 + 64e-6)
        expected = (64 * 500.0 / seconds) / 250_000.0
        assert entry.predicted_speedup(64) == pytest.approx(expected)

    def test_wider_batches_amortize_overhead(self):
        entry = _entry()
        speedups = [entry.predicted_speedup(w) for w in (8, 64, 512)]
        assert speedups == sorted(speedups)

    def test_calibration_speedup_is_conservative_minimum(self):
        cal = _calibration(entries={
            "coupling": _entry("coupling", scalar=100_000.0),
            "optimistic": _entry("optimistic", scalar=400_000.0),
        })
        per_protocol = [e.predicted_speedup(128)
                        for e in cal.entries.values()]
        assert cal.speedup(128) == min(per_protocol)


class TestChooseWidth:

    def test_picks_best_predicted_width(self):
        # With per-dispatch overhead dominating, the widest candidate
        # amortizes best.
        assert choose_width(_calibration(), 4096) == 1024

    def test_clamps_to_task_count(self):
        assert choose_width(_calibration(), 100) <= 100
        assert choose_width(_calibration(), 8) <= 8

    def test_scalar_for_trivial_or_losing_batches(self):
        assert choose_width(_calibration(), 1) == 1
        assert choose_width(_calibration(), 0) == 1
        # A model that never beats scalar falls back to width 1.
        slow = _calibration(entries={
            protocol: _entry(protocol, b=1.0) for protocol in PROTOCOLS})
        assert choose_width(slow, 4096) == 1


class TestCalibrate:

    def test_probe_produces_positive_model(self):
        cal = calibrate(TINY)
        assert set(cal.entries) == set(PROTOCOLS)
        for entry in cal.entries.values():
            assert entry.overhead_per_dispatch > 0
            assert entry.cost_per_lane_dispatch > 0
            assert entry.dispatches >= 1
            assert entry.events_per_lane > 0
            assert entry.scalar_events_per_sec > 0
        assert cal.fingerprint == autotune._fingerprint()

    def test_rejects_bad_probe_widths(self):
        with pytest.raises(ValueError, match="probe widths"):
            calibrate(TINY, probe_widths=(64, 16))
        with pytest.raises(ValueError, match="probe widths"):
            calibrate(TINY, probe_widths=(16,))


class TestPersistence:

    def test_round_trip(self, tmp_path):
        cal = _calibration()
        path = tmp_path / "autotune.json"
        save_calibration(cal, path)
        assert load_calibration(path) == cal

    def test_missing_or_corrupt_means_reprobe(self, tmp_path):
        path = tmp_path / "autotune.json"
        assert load_calibration(path) is None
        path.write_text("{not json", encoding="utf-8")
        assert load_calibration(path) is None

    def test_schema_or_fingerprint_mismatch_means_reprobe(self, tmp_path):
        path = tmp_path / "autotune.json"
        save_calibration(_calibration(), path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert load_calibration(path) is None
        save_calibration(
            _calibration(fingerprint={"machine": "other", "python": "0",
                                      "cpus": 1}), path)
        assert load_calibration(path) is None

    def test_calibration_path_prefers_cache_directory(self, tmp_path,
                                                      monkeypatch):
        from repro.parallel.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        assert calibration_path(cache) == \
            cache.directory / autotune.CALIBRATION_FILENAME
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fallback"))
        assert calibration_path(None) == \
            tmp_path / "fallback" / autotune.CALIBRATION_FILENAME


class TestResolveAutoWidth:

    def test_uses_persisted_calibration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        save_calibration(_calibration(), calibration_path(None))
        probed = []
        monkeypatch.setattr(autotune, "calibrate",
                            lambda *a, **k: probed.append(1))
        assert resolve_auto_width(4096) == 1024
        assert not probed  # served from disk, no probe run

    def test_probes_and_persists_on_first_use(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(autotune, "calibrate",
                            lambda *a, **k: _calibration())
        width = resolve_auto_width(4096)
        assert width == 1024
        assert load_calibration(calibration_path(None)) == _calibration()
