"""Unit tests for the statistics collectors."""

import math

import numpy as np
import pytest

from repro.des.stats import RunningStats, TimeWeightedStat, combine_runs


class TestRunningStats:
    def test_empty(self):
        acc = RunningStats()
        assert acc.n == 0
        assert math.isnan(acc.mean)
        assert math.isnan(acc.variance)

    def test_single_observation(self):
        acc = RunningStats()
        acc.add(5.0)
        assert acc.mean == 5.0
        assert acc.min == acc.max == 5.0
        assert math.isnan(acc.variance)

    def test_matches_numpy(self, rng):
        xs = [rng.gauss(10.0, 3.0) for _ in range(5_000)]
        acc = RunningStats()
        acc.extend(xs)
        assert acc.mean == pytest.approx(float(np.mean(xs)))
        assert acc.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert acc.stddev == pytest.approx(float(np.std(xs, ddof=1)))
        assert acc.min == min(xs)
        assert acc.max == max(xs)
        assert acc.total == pytest.approx(sum(xs))

    def test_merge_equals_bulk(self, rng):
        xs = [rng.random() for _ in range(1_000)]
        ys = [rng.random() * 3 for _ in range(700)]
        a, b, bulk = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        bulk.extend(xs + ys)
        a.merge(b)
        assert a.n == bulk.n
        assert a.mean == pytest.approx(bulk.mean)
        assert a.variance == pytest.approx(bulk.variance)
        assert a.min == bulk.min
        assert a.max == bulk.max

    def test_merge_into_empty(self):
        a, b = RunningStats(), RunningStats()
        b.extend([1.0, 2.0, 3.0])
        a.merge(b)
        assert a.n == 3
        assert a.mean == 2.0

    def test_merge_empty_is_noop(self):
        a, b = RunningStats(), RunningStats()
        a.extend([1.0, 2.0])
        a.merge(b)
        assert a.n == 2

    def test_ci95_contains_true_mean_usually(self, rng):
        hits = 0
        for _ in range(60):
            acc = RunningStats()
            acc.extend(rng.gauss(0.0, 1.0) for _ in range(200))
            low, high = acc.ci95()
            if low <= 0.0 <= high:
                hits += 1
        assert hits >= 50  # ~95% coverage, loose bound

    def test_ci95_needs_two_points(self):
        acc = RunningStats()
        acc.add(1.0)
        low, high = acc.ci95()
        assert math.isnan(low) and math.isnan(high)


class TestTimeWeightedStat:
    def test_piecewise_constant_mean(self):
        tw = TimeWeightedStat(start=0.0, value=0.0)
        tw.update(2.0, 1.0)   # 0 over [0,2)
        tw.update(5.0, 0.0)   # 1 over [2,5)
        assert tw.mean(10.0) == pytest.approx(3.0 / 10.0)

    def test_current_value_extends_to_now(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 4.0)
        assert tw.mean(3.0) == pytest.approx(4.0 * 2.0 / 3.0)
        assert tw.current == 4.0

    def test_time_going_backwards_rejected(self):
        tw = TimeWeightedStat()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 0.0)

    def test_zero_span_is_nan(self):
        tw = TimeWeightedStat(start=2.0)
        assert math.isnan(tw.mean(2.0))


class TestCombineRuns:
    def test_basic(self):
        summary = combine_runs([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.n_runs == 3
        assert summary.low == 1.0
        assert summary.high == 3.0
        assert summary.stddev == pytest.approx(1.0)

    def test_single_run_has_zero_spread(self):
        summary = combine_runs([4.2])
        assert summary.mean == 4.2
        assert summary.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_runs([])
