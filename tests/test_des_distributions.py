"""Unit tests for the service-time distributions."""

import pytest

from repro.des.distributions import (
    Deterministic,
    Exponential,
    Hyperexponential,
    UniformDist,
    poisson_interarrivals,
)
from repro.errors import ConfigurationError


def _sample_moments(dist, n=40_000):
    xs = [dist.sample() for _ in range(n)]
    mean = sum(xs) / n
    second = sum(x * x for x in xs) / n
    return mean, second


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(3.0)
        assert d.mean == 3.0
        assert d.second_moment == 9.0
        assert d.variance == 0.0
        assert d.scv == 0.0
        assert d.sample() == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Deterministic(-1.0)


class TestExponential:
    def test_exact_moments(self):
        e = Exponential(2.5)
        assert e.mean == 2.5
        assert e.second_moment == pytest.approx(12.5)
        assert e.scv == pytest.approx(1.0)
        assert e.rate == pytest.approx(0.4)

    def test_sampled_moments(self, rng):
        e = Exponential(2.0, rng=rng)
        mean, second = _sample_moments(e)
        assert mean == pytest.approx(2.0, rel=0.05)
        assert second == pytest.approx(8.0, rel=0.1)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_mean_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Exponential(bad)


class TestUniform:
    def test_exact_moments(self):
        u = UniformDist(1.0, 3.0)
        assert u.mean == 2.0
        # E[X^2] over [1,3] = (27-1)/(3*2) = 13/3
        assert u.second_moment == pytest.approx(13.0 / 3.0)

    def test_point_support(self):
        u = UniformDist(2.0, 2.0)
        assert u.mean == 2.0
        assert u.second_moment == 4.0

    def test_inverted_support_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDist(3.0, 1.0)


class TestHyperexponential:
    def test_exact_moments(self):
        h = Hyperexponential([0.3, 0.7], [1.0, 4.0])
        assert h.mean == pytest.approx(0.3 * 1.0 + 0.7 * 4.0)
        assert h.second_moment == pytest.approx(0.3 * 2.0 + 0.7 * 32.0)
        assert h.scv > 1.0  # hyperexponential is more variable

    def test_degenerates_to_exponential(self):
        h = Hyperexponential([1.0], [2.0])
        assert h.mean == 2.0
        assert h.second_moment == pytest.approx(8.0)
        assert h.scv == pytest.approx(1.0)

    def test_sampled_moments(self, rng):
        h = Hyperexponential([0.2, 0.8], [10.0, 1.0], rng=rng)
        mean, second = _sample_moments(h, n=60_000)
        assert mean == pytest.approx(h.mean, rel=0.05)
        assert second == pytest.approx(h.second_moment, rel=0.15)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential([0.5, 0.4], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential([], [])

    def test_negative_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential([1.5, -0.5], [1.0, 2.0])

    def test_unreachable_stage_may_have_any_mean(self):
        h = Hyperexponential([1.0, 0.0], [2.0, -1.0])
        assert h.mean == 2.0

    def test_reachable_stage_needs_positive_mean(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential([0.5, 0.5], [2.0, 0.0])


class TestPoissonInterarrivals:
    def test_mean_gap(self, rng):
        gen = poisson_interarrivals(4.0, rng)
        gaps = [next(gen) for _ in range(30_000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.25, rel=0.05)

    def test_nonpositive_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            next(poisson_interarrivals(0.0, rng))

    def test_counts_are_poisson_like(self, rng):
        """Number of arrivals in unit windows has variance ~ mean."""
        gen = poisson_interarrivals(3.0, rng)
        t, counts, window_end, count = 0.0, [], 1.0, 0
        for _ in range(60_000):
            t += next(gen)
            while t > window_end:
                counts.append(count)
                count = 0
                window_end += 1.0
            count += 1
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / (len(counts) - 1)
        assert mean == pytest.approx(3.0, rel=0.1)
        assert var == pytest.approx(mean, rel=0.15)
