"""Unit tests for the experiment drivers, registry, report and CLI."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentTable,
    format_table,
    get_experiment,
    to_csv,
)
from repro.experiments.figures import fig11, fig12, fig13, fig14, fig15, fig16
from repro.experiments.runner import main as cli_main


class TestRegistry:
    def test_all_fourteen_figures_registered(self):
        figures = [eid for eid in EXPERIMENTS if eid.startswith("fig")]
        assert sorted(figures) == [f"fig{n:02d}" for n in range(3, 17)]

    def test_extensions_registered(self):
        assert "ext01" in EXPERIMENTS
        assert "ext02" in EXPERIMENTS
        assert "ext03" in EXPERIMENTS
        assert "ext08" in EXPERIMENTS
        assert EXPERIMENTS["ext08"].has_simulation

    def test_lookup(self):
        exp = get_experiment("fig03")
        assert exp.figure == "Figure 3"
        assert exp.has_simulation

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_analytical_figures_marked(self):
        for experiment_id in ("fig11", "fig12", "fig13", "fig14",
                              "fig15", "fig16"):
            assert not EXPERIMENTS[experiment_id].has_simulation


class TestExperimentTable:
    def test_add_and_column(self):
        table = ExperimentTable("x", "t", "Figure X", ["a", "b"])
        table.add(1, 2.0)
        table.add(3, 4.0)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.0, 4.0]

    def test_row_arity_checked(self):
        table = ExperimentTable("x", "t", "Figure X", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_format_handles_inf_and_nan(self):
        table = ExperimentTable("x", "t", "Figure X", ["a", "b"])
        table.add(math.inf, math.nan)
        table.note("a note")
        text = format_table(table)
        assert "saturated" in text
        assert "note: a note" in text

    def test_csv_round_trip(self):
        table = ExperimentTable("x", "t", "Figure X", ["rate", "resp"])
        table.add(0.1, 17.5)
        csv = to_csv(table)
        assert csv.splitlines()[0] == "rate,resp"
        assert "0.1" in csv and "17.5" in csv


class TestAnalyticalFigures:
    """The simulation-free figures run quickly at full fidelity."""

    def test_fig11_monotone_decreasing(self):
        table = fig11()
        throughputs = table.column("max_throughput")
        assert all(a > b for a, b in zip(throughputs, throughputs[1:]))

    def test_fig12_ordering_holds_row_wise(self):
        table = fig12()
        for rate, naive, optimistic, link in table.rows:
            if math.isinf(naive):
                continue
            assert naive >= optimistic * 0.98
            assert optimistic >= link * 0.95

    def test_fig12_naive_saturates_first(self):
        table = fig12()
        naive = table.column("naive_insert")
        link = table.column("link_insert")
        assert any(math.isinf(v) for v in naive)
        assert not any(math.isinf(v) for v in link)

    def test_fig13_thumb_between_zero_and_limit(self):
        table = fig13()
        for _order, _d, analytical, thumb, limit in table.rows:
            assert 0 < thumb <= limit * 1.0001
            assert analytical > 0

    def test_fig14_rates_grow_with_node_size(self):
        table = fig14()
        by_d = {}
        for order, d, analytical, _t, _l in table.rows:
            by_d.setdefault(d, []).append((order, analytical))
        for d, series in by_d.items():
            first, last = series[0][1], series[-1][1]
            assert last > first  # Optimistic gains with node size

    def test_fig15_policy_ordering(self):
        table = fig15()
        for row in table.rows:
            _rate, none, leaf, naive = row
            if math.isinf(none):
                continue
            assert none <= leaf * 1.001
            if not math.isinf(naive):
                assert leaf <= naive * 1.001

    def test_fig15_naive_saturates_earliest(self):
        table = fig15()
        naive = table.column("naive_recovery_insert")
        none = table.column("no_recovery_insert")
        n_sat_naive = sum(1 for v in naive if math.isinf(v))
        n_sat_none = sum(1 for v in none if math.isinf(v))
        assert n_sat_naive > n_sat_none

    def test_fig16_uses_four_level_shape(self):
        table = fig16()
        assert any("height 4" in note for note in table.notes)
        assert len(table.rows) > 0

    def test_ext01_two_phase_is_worst(self):
        from repro.experiments.extensions import ext01
        table = ext01()
        for row in table.rows:
            _rate, two_phase, naive, optimistic, link = row
            if math.isinf(two_phase):
                continue
            assert two_phase >= naive >= optimistic * 0.98

    def test_ext02_throughput_monotone_in_buffer(self):
        from repro.experiments.extensions import ext02
        table = ext02()
        naive = table.column("naive_max_throughput")
        assert all(a <= b for a, b in zip(naive, naive[1:]))


class TestSimulatedFigureSmoke:
    """One simulated figure end to end at a tiny scale."""

    def test_fig03_tiny(self):
        experiment = get_experiment("fig03")
        table = experiment.run(scale=0.02)
        assert table.columns[0] == "arrival_rate"
        model = table.column("model_insert_response")
        sim = table.column("sim_insert_response")
        # Low-load rows must agree loosely even at a tiny scale.
        assert sim[0] == pytest.approx(model[0], rel=0.35)

    def test_no_sim_variant(self):
        table = get_experiment("fig04").run(scale=0.02, simulate=False)
        assert "sim_search_response" not in table.columns


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "fig16" in out

    def test_run_analytical(self, capsys):
        assert cli_main(["run", "fig11"]) == 0
        assert "max_throughput" in capsys.readouterr().out

    def test_run_csv(self, capsys):
        assert cli_main(["run", "fig11", "--csv"]) == 0
        assert "disk_cost,max_throughput" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert cli_main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
