"""Tests for the hotspot key-distribution wiring in the drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator.driver import make_key_picker
from repro.workloads.keyspace import HotspotKeys, UniformKeys


def _config(**overrides):
    defaults = dict(algorithm="naive-lock-coupling", arrival_rate=0.2,
                    n_items=3_000, n_operations=400,
                    warmup_operations=50, seed=31)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(key_distribution="zipf")

    def test_picker_factory(self):
        import random
        rng = random.Random(0)
        assert isinstance(make_key_picker(_config(), rng), UniformKeys)
        picker = make_key_picker(
            _config(key_distribution="hotspot", hot_fraction=0.1,
                    hot_probability=0.9), rng)
        assert isinstance(picker, HotspotKeys)
        assert picker.hot_fraction == 0.1
        assert picker.hot_probability == 0.9


class TestHotspotRuns:
    def test_run_completes(self):
        result = run_simulation(_config(key_distribution="hotspot"))
        assert not result.overflowed
        assert result.measured_operations >= 400

    def test_skew_concentrates_contention(self):
        """At the same arrival rate, a strong hotspot produces clearly
        more lock waiting than a uniform workload under lock-coupling."""
        uniform = run_simulation(_config(arrival_rate=0.3,
                                         n_operations=800))
        skewed = run_simulation(_config(arrival_rate=0.3,
                                        n_operations=800,
                                        key_distribution="hotspot",
                                        hot_probability=0.95))
        assert skewed.mean_response["insert"] \
            > 1.1 * uniform.mean_response["insert"]

    def test_link_type_shrugs_off_skew(self):
        uniform = run_simulation(_config(algorithm="link-type",
                                         arrival_rate=0.3,
                                         n_operations=800))
        skewed = run_simulation(_config(algorithm="link-type",
                                        arrival_rate=0.3,
                                        n_operations=800,
                                        key_distribution="hotspot",
                                        hot_probability=0.95))
        assert skewed.mean_response["insert"] \
            < 1.3 * uniform.mean_response["insert"]

    def test_closed_mode_accepts_hotspot(self):
        from repro.simulator.closed import run_closed_simulation
        result = run_closed_simulation(
            _config(key_distribution="hotspot"), multiprogramming_level=4)
        assert result.throughput > 0
