"""Fault-injection tests: the sweep stack under hostile conditions.

Every fault here is deterministic (keyed off task index + attempt), so
these tests exercise real worker deaths, stalls, cache corruption and
poisoned solvers without flakiness.  The acceptance scenario at the
bottom is the one the CI fault-smoke job mirrors.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import InjectedFaultError
from repro.obs.instruments import Instrumentation
from repro.parallel import (
    ResultCache,
    SimTask,
    execution,
    run_batch,
    run_batch_report,
)
from repro.resilience import (
    ERROR_TIMEOUT,
    ERROR_WORKER_DIED,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    INJECT_NAN,
    KILL_WORKER,
    STALL_TASK,
    CORRUPT_CACHE,
    ResilienceOptions,
    RetryPolicy,
    TaskBudget,
    read_manifest,
)
from repro.simulator.config import SimulationConfig

#: Fast options shared by the pool tests.
_FAST_RETRY = RetryPolicy(max_retries=1, backoff_base=0.01,
                          backoff_cap=0.05, jitter=0.0)


def _quick(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="naive-lock-coupling", arrival_rate=0.15,
                    n_items=2_000, n_operations=150, warmup_operations=20,
                    seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _tasks(n: int, start_seed: int = 100):
    return [SimTask(_quick(seed=start_seed + i)) for i in range(n)]


def _fingerprints(results):
    return [repr(dataclasses.asdict(r)) if r is not None else None
            for r in results]


# ----------------------------------------------------------------------
# Worker death (satellite: run_batch must survive BrokenProcessPool)
# ----------------------------------------------------------------------
class TestWorkerDeath:

    def test_transient_kill_retries_and_completes(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=1),))  # first try only
        report = run_batch_report(
            _tasks(4), jobs=2,
            resilience=ResilienceOptions(retry=_FAST_RETRY, faults=plan))
        assert report.ok
        assert report.succeeded == 4
        assert report.retries == 1
        assert report.pool_rebuilds >= 1
        # Bit-identical to an undisturbed serial run.
        clean = run_batch(_tasks(4), jobs=1)
        assert _fingerprints(report.results) == _fingerprints(clean)

    def test_persistent_kill_quarantines_only_the_culprit(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=2, attempts=None),))
        report = run_batch_report(
            _tasks(6), jobs=3,
            resilience=ResilienceOptions(retry=_FAST_RETRY, faults=plan))
        assert report.quarantined_indices == [2]
        assert report.succeeded == 5
        [failure] = report.failures
        assert failure.error == ERROR_WORKER_DIED
        assert failure.attempts == 2  # initial try + one retry

    def test_inline_kill_raises_injected_fault_not_exit(self):
        # jobs=1 must not take the test process down with it.
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=0, attempts=None),))
        report = run_batch_report(
            _tasks(2), jobs=1,
            resilience=ResilienceOptions(retry=_FAST_RETRY, faults=plan))
        assert report.quarantined_indices == [0]
        assert report.failures[0].error == InjectedFaultError.__name__
        assert report.results[1] is not None

    def test_legacy_run_batch_returns_partial_results(self):
        # The historical API, under a failure policy, yields None slots
        # instead of aborting the whole sweep.
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=0, attempts=None),))
        results = run_batch(
            _tasks(3), jobs=2,
            resilience=ResilienceOptions(retry=_FAST_RETRY, faults=plan))
        assert results[0] is None
        assert all(r is not None for r in results[1:])


# ----------------------------------------------------------------------
# Stalls and deadlines
# ----------------------------------------------------------------------
class TestStallsAndDeadlines:

    def test_transient_stall_cleared_by_timeout_then_succeeds(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=STALL_TASK, task_index=1, seconds=10.0),))
        report = run_batch_report(
            _tasks(3), jobs=2,
            resilience=ResilienceOptions(retry=_FAST_RETRY,
                                         task_timeout=1.0, faults=plan))
        assert report.ok
        assert report.timeouts == 1
        assert report.pool_rebuilds >= 1

    def test_persistent_stall_quarantined(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=STALL_TASK, task_index=0, attempts=None,
                      seconds=10.0),))
        report = run_batch_report(
            _tasks(3), jobs=2,
            resilience=ResilienceOptions(retry=RetryPolicy(
                max_retries=0), task_timeout=0.75, faults=plan))
        assert report.quarantined_indices == [0]
        assert report.failures[0].error == ERROR_TIMEOUT
        assert report.succeeded == 2

    def test_in_worker_budget_converts_stall_to_truncation(self):
        # A wall budget inside the worker needs no pool teardown: the
        # run truncates itself and reports partial, overflow-flagged
        # metrics.
        tasks = _tasks(2)
        slow = SimTask(_quick(seed=500, arrival_rate=0.5,
                              n_operations=100_000),
                       budget=TaskBudget(wall_seconds=0.5,
                                         check_interval=256))
        report = run_batch_report(
            tasks + [slow], jobs=2,
            resilience=ResilienceOptions(retry=_FAST_RETRY))
        assert report.ok
        assert [t.index for t in report.truncations] == [2]
        assert report.results[2].overflowed
        assert report.pool_rebuilds == 0


# ----------------------------------------------------------------------
# Cache corruption inside a sweep
# ----------------------------------------------------------------------
class TestCacheCorruptionFault:

    def test_corrupt_entry_recomputed_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _tasks(3)
        warm = run_batch(tasks, jobs=1, cache=cache)
        plan = FaultPlan(specs=(
            FaultSpec(kind=CORRUPT_CACHE, task_index=1),))
        report = run_batch_report(
            tasks, jobs=1, cache=cache,
            resilience=ResilienceOptions(faults=plan))
        assert report.ok
        assert report.cache_corruptions == 1
        assert _fingerprints(report.results) == _fingerprints(warm)
        # The recomputed entry was re-stored and now verifies.
        clean = run_batch_report(tasks, jobs=1, cache=cache,
                                 resilience=ResilienceOptions())
        assert clean.cache_corruptions == 0


# ----------------------------------------------------------------------
# Checkpoint/resume under faults
# ----------------------------------------------------------------------
class TestCheckpointResume:

    def test_interrupted_sweep_resumes_without_recomputing(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        tasks = _tasks(5)
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=3, attempts=None),))
        first = run_batch_report(
            tasks, jobs=2,
            resilience=ResilienceOptions(retry=RetryPolicy(max_retries=0),
                                         checkpoint=path, faults=plan))
        assert first.quarantined_indices == [3]
        manifest = read_manifest(path)
        assert manifest["quarantined"] == [3]
        assert len(manifest["completed"]) == 4

        # Resume fault-free: completed tasks replay from the journal,
        # the quarantined one gets fresh attempts and now succeeds.
        second = run_batch_report(
            tasks, jobs=2,
            resilience=ResilienceOptions(checkpoint=path, resume=True))
        assert second.ok
        assert second.resumed == 4
        clean = run_batch(tasks, jobs=1)
        assert _fingerprints(second.results) == _fingerprints(clean)

    def test_resumed_results_not_re_cached_from_scratch(self, tmp_path):
        path = tmp_path / "sweep.ndjson"
        tasks = _tasks(3)
        run_batch_report(tasks, jobs=1,
                         resilience=ResilienceOptions(checkpoint=path))
        report = run_batch_report(
            tasks, jobs=1,
            resilience=ResilienceOptions(checkpoint=path, resume=True))
        assert report.resumed == 3
        assert report.ok


# ----------------------------------------------------------------------
# Environment-driven plans (the CI smoke path)
# ----------------------------------------------------------------------
class TestEnvDrivenFaults:

    def test_env_plan_activates_resilient_batch(self, monkeypatch):
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=0, attempts=None),))
        monkeypatch.setenv(FAULTS_ENV, plan.encode())
        # No explicit resilience options anywhere: the env plan alone
        # must switch run_batch to the resilient path instead of
        # crashing the sweep.
        results = run_batch(_tasks(3), jobs=2)
        assert results[0] is None
        assert all(r is not None for r in results[1:])

    def test_ambient_context_carries_resilience(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=1, attempts=None),))
        options = ResilienceOptions(retry=_FAST_RETRY, faults=plan)
        with execution(resilience=options):
            results = run_batch(_tasks(3), jobs=2)
        assert results[1] is None
        assert results[0] is not None and results[2] is not None


# ----------------------------------------------------------------------
# Acceptance: the ISSUE's 20-task hostile sweep
# ----------------------------------------------------------------------
class TestAcceptanceSweep:

    def test_twenty_task_sweep_survives_injected_faults(self, tmp_path):
        """Under kill + stall + cache-corruption faults, a 20-task sweep
        must terminate with >= 17 successes, a failure manifest naming
        the quarantined tasks, and fingerprints identical to a clean
        run for every non-quarantined task."""
        cache = ResultCache(tmp_path / "cache")
        journal = tmp_path / "sweep.ndjson"
        tasks = _tasks(20)
        # Warm one entry so the corruption fault has a target.
        run_batch([tasks[5]], jobs=1, cache=cache)

        plan = FaultPlan(specs=(
            FaultSpec(kind=KILL_WORKER, task_index=3, attempts=None),
            FaultSpec(kind=KILL_WORKER, task_index=11),        # transient
            FaultSpec(kind=STALL_TASK, task_index=7, attempts=None,
                      seconds=10.0),                           # persistent
            FaultSpec(kind=CORRUPT_CACHE, task_index=5),
        ))
        inst = Instrumentation()
        report = run_batch_report(
            tasks, jobs=4, cache=cache,
            resilience=ResilienceOptions(
                retry=_FAST_RETRY, task_timeout=1.5, checkpoint=journal,
                faults=plan, instruments=inst))

        # Terminates with partial results: 18/20 (persistent kill and
        # persistent stall quarantined, transient kill retried).
        assert report.succeeded == 18
        assert sorted(report.quarantined_indices) == [3, 7]
        assert report.cache_corruptions == 1

        # The failure manifest names the quarantined tasks.
        manifest = read_manifest(journal)
        assert manifest["quarantined"] == [3, 7]
        assert len(manifest["completed"]) == 18
        errors = {manifest["tasks"][3]["error"],
                  manifest["tasks"][7]["error"]}
        assert errors == {ERROR_WORKER_DIED, ERROR_TIMEOUT}

        # Telemetry counters observed the events.
        assert inst.counter("resilience.quarantined").value == 2
        assert inst.counter("resilience.retries").value >= 3
        assert inst.counter("resilience.cache_corrupt").value == 1

        # Every surviving result is bit-identical to a clean serial run.
        clean = run_batch(tasks, jobs=1)
        survived = _fingerprints(report.results)
        expected = _fingerprints(clean)
        for index in range(20):
            if index in (3, 7):
                assert survived[index] is None
            else:
                assert survived[index] == expected[index]


# ----------------------------------------------------------------------
# Fault-free resilient path is byte-identical (golden guarantee)
# ----------------------------------------------------------------------
class TestFaultFreeParity:

    def test_resilient_path_matches_legacy_exactly(self):
        tasks = _tasks(4)
        legacy = run_batch(tasks, jobs=2)
        resilient = run_batch_report(
            tasks, jobs=2, resilience=ResilienceOptions())
        assert resilient.ok
        assert resilient.retries == 0
        assert resilient.pool_rebuilds == 0
        assert _fingerprints(resilient.results) == _fingerprints(legacy)


# ----------------------------------------------------------------------
# Property-style: arbitrary plans round-trip through $REPRO_FAULTS
# ----------------------------------------------------------------------
class TestPlanRoundTripProperty:
    """Any well-formed fault-spec sequence — including the cluster
    simulation kinds with their ``~window !at %factor`` fields — must
    survive ``encode -> $REPRO_FAULTS -> parse`` byte-identically."""

    @staticmethod
    def _random_spec(rng):
        from repro.resilience import REPLICA_LAG, SHARD_CRASH, SLOW_SHARD
        kind = rng.choice((KILL_WORKER, STALL_TASK, CORRUPT_CACHE,
                           INJECT_NAN, SHARD_CRASH, SLOW_SHARD,
                           REPLICA_LAG))
        # %g-stable floats: <= 6 significant digits survive the text form.
        def stable(lo, hi):
            return round(rng.uniform(lo, hi), 3)
        if kind == INJECT_NAN:
            return FaultSpec(kind=kind,
                             count=rng.choice((-1, 1, 2, 5)))
        if kind == CORRUPT_CACHE:
            return FaultSpec(kind=kind, task_index=rng.randrange(16))
        if kind in (KILL_WORKER, STALL_TASK):
            attempts = rng.choice((None, (0,), (1,), (0, 2),
                                   tuple(sorted(rng.sample(range(4), 2)))))
            if kind == STALL_TASK:
                return FaultSpec(kind=kind, task_index=rng.randrange(16),
                                 attempts=attempts,
                                 seconds=stable(0.001, 5.0))
            return FaultSpec(kind=kind, task_index=rng.randrange(16),
                             attempts=attempts)
        return FaultSpec(kind=kind, task_index=rng.randrange(32),
                         at=stable(0.0, 900.0),
                         duration=stable(0.001, 900.0),
                         factor=stable(1.0, 50.0))

    @pytest.mark.parametrize("seed", range(25))
    def test_random_plan_round_trips_byte_identically(self, seed,
                                                      monkeypatch):
        import random

        from repro.resilience import plan_from_env
        rng = random.Random(seed)
        plan = FaultPlan(specs=tuple(
            self._random_spec(rng) for _ in range(rng.randrange(1, 9))))
        encoded = plan.encode()
        monkeypatch.setenv(FAULTS_ENV, encoded)
        recovered = plan_from_env()
        assert recovered == plan
        # The text form is a fixed point: re-encoding changes nothing.
        assert recovered.encode() == encoded

    def test_simulation_kinds_survive_alongside_worker_kinds(self,
                                                             monkeypatch):
        from repro.resilience import REPLICA_LAG, SHARD_CRASH, SLOW_SHARD, \
            plan_from_env
        plan = FaultPlan(specs=(
            FaultSpec(kind=SHARD_CRASH, task_index=2, at=50.0,
                      duration=40.0, factor=3.0),
            FaultSpec(kind=SLOW_SHARD, task_index=0),
            FaultSpec(kind=REPLICA_LAG, task_index=1, at=12.5,
                      duration=7.25, factor=8.0),
            FaultSpec(kind=STALL_TASK, task_index=4, seconds=12.0),
            FaultSpec(kind=KILL_WORKER, task_index=2, attempts=(0, 1)),
            FaultSpec(kind=INJECT_NAN, count=3),
        ))
        monkeypatch.setenv(FAULTS_ENV, plan.encode())
        assert plan_from_env() == plan
