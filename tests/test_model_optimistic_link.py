"""Unit tests for the Optimistic Descent and Link-type analyses."""

import pytest

from repro.errors import ConfigurationError
from repro.model.link import analyze_link, link_crossing_probability
from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.occupancy import OccupancyModel
from repro.model.optimistic import analyze_optimistic


class TestOptimistic:
    def test_beats_naive_at_moderate_load(self, paper_config):
        rate = 0.4
        optimistic = analyze_optimistic(paper_config, rate)
        naive = analyze_lock_coupling(paper_config, rate)
        assert optimistic.response("insert") < naive.response("insert")
        assert optimistic.root_writer_utilization \
            < naive.root_writer_utilization

    def test_writers_above_leaf_are_redos_only(self, paper_config):
        """lambda_W at internal levels equals the redo rate
        q_i * Pr[F(1)] * lambda_level."""
        rate = 0.5
        p = analyze_optimistic(paper_config, rate)
        occ = OccupancyModel.corollary1(paper_config.mix, paper_config.order,
                                        paper_config.height)
        redo = paper_config.mix.q_insert * occ.full(1)
        for level in p.levels[1:]:
            level_rate = rate * paper_config.shape.arrival_share(level.level)
            assert level.lambda_w == pytest.approx(redo * level_rate)
            assert level.lambda_r == pytest.approx(level_rate)

    def test_leaf_carries_all_update_writes(self, paper_config):
        p = analyze_optimistic(paper_config, 0.5)
        leaf = p.level(1)
        leaf_rate = 0.5 * paper_config.shape.arrival_share(1)
        assert leaf.lambda_w > paper_config.mix.q_update * leaf_rate * 0.99

    def test_insert_pays_redo_premium_over_delete(self, paper_config):
        """Per(I) = first descent + Pr[F(1)] * redo; Per(D) has no redo
        term (Pr[Em] ~ 0)."""
        p = analyze_optimistic(paper_config, 0.3)
        assert p.response("insert") > p.response("delete")

    def test_saturates_eventually(self, paper_config):
        p = analyze_optimistic(paper_config, 50.0)
        assert not p.stable

    def test_monotone_in_rate(self, paper_config):
        responses = [analyze_optimistic(paper_config, r).response("insert")
                     for r in (0.5, 1.0, 2.0, 3.0)]
        assert all(a < b for a, b in zip(responses, responses[1:]))

    def test_recovery_hold_extras_increase_waits(self, paper_config):
        base = analyze_optimistic(paper_config, 1.0)
        held = analyze_optimistic(paper_config, 1.0, leaf_hold_extra=50.0)
        assert held.response("insert") > base.response("insert")

    def test_internal_extras_length_validated(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_optimistic(paper_config, 0.5,
                               internal_hold_extra=[1.0, 2.0])

    def test_nonpositive_rate_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_optimistic(paper_config, -1.0)


class TestLink:
    def test_beats_optimistic(self, paper_config):
        rate = 2.0
        link = analyze_link(paper_config, rate)
        optimistic = analyze_optimistic(paper_config, rate)
        assert link.max_writer_utilization \
            < optimistic.max_writer_utilization

    def test_sustains_enormous_load(self, paper_config):
        """The paper: the Link-type algorithm has no effective maximum
        throughput at realistic loads."""
        p = analyze_link(paper_config, 50.0)
        assert p.stable
        assert p.max_writer_utilization < 0.5

    def test_bottleneck_not_necessarily_root(self, paper_config):
        """Without lock coupling the busiest queue is usually the leaf
        level, not the root."""
        p = analyze_link(paper_config, 20.0)
        utilizations = {level.level: level.rho_w for level in p.levels}
        busiest = max(utilizations, key=utilizations.get)
        assert busiest != paper_config.height

    def test_per_node_split_rate_level_independent(self, paper_config):
        """Above the leaves the per-node W-lock arrival rate is nearly
        constant: Pr[F] ~ 1/(0.69N) cancels the fanout 0.69N — every
        node splits at about the same rate in steady state."""
        p = analyze_link(paper_config, 10.0)
        assert p.level(2).lambda_w < p.level(1).lambda_w
        internal = [p.level(level).lambda_w
                    for level in range(2, paper_config.height)]
        assert max(internal) < 1.2 * min(internal)

    def test_search_response_near_serial_even_loaded(self, paper_config):
        costs, h = paper_config.costs, paper_config.height
        serial = sum(costs.se(level, h) for level in range(1, h + 1))
        p = analyze_link(paper_config, 10.0)
        assert p.response("search") < 1.3 * serial

    def test_monotone_in_rate(self, paper_config):
        responses = [analyze_link(paper_config, r).response("insert")
                     for r in (1.0, 5.0, 20.0, 50.0)]
        assert all(a < b for a, b in zip(responses, responses[1:]))

    def test_nonpositive_rate_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_link(paper_config, 0.0)


class TestLinkCrossing:
    def test_probability_is_tiny(self, paper_config):
        for rate in (1.0, 10.0, 30.0):
            p = link_crossing_probability(paper_config, rate, level=1)
            assert p < 0.01

    def test_scales_with_rate(self, paper_config):
        low = link_crossing_probability(paper_config, 1.0, level=1)
        high = link_crossing_probability(paper_config, 10.0, level=1)
        assert high == pytest.approx(10 * low, rel=1e-6)

    def test_roughly_level_independent(self, paper_config):
        """Crossing probability barely varies with the level: the
        split-propagation decay cancels against the node-count decay."""
        probs = [link_crossing_probability(paper_config, 10.0, level=level)
                 for level in (1, 2, 3)]
        assert max(probs) < 1.5 * min(probs)

    def test_level_bounds(self, paper_config):
        with pytest.raises(ConfigurationError):
            link_crossing_probability(paper_config, 1.0, level=0)
        with pytest.raises(ConfigurationError):
            link_crossing_probability(paper_config, 1.0, level=99)


class TestAlgorithmOrdering:
    """The paper's headline comparison (Figure 12 / Section 5.3)."""

    def test_throughput_ordering(self, paper_config):
        from repro.model.throughput import max_throughput
        naive = max_throughput(analyze_lock_coupling, paper_config)
        optimistic = max_throughput(analyze_optimistic, paper_config)
        link = max_throughput(analyze_link, paper_config)
        assert optimistic > 2.0 * naive
        assert link > 10.0 * optimistic

    def test_response_ordering_at_high_load(self, paper_config):
        rate = 0.55  # near the Naive knee
        naive = analyze_lock_coupling(paper_config, rate)
        optimistic = analyze_optimistic(paper_config, rate)
        link = analyze_link(paper_config, rate)
        assert naive.response("insert") > optimistic.response("insert")
        assert optimistic.response("insert") \
            >= link.response("insert") * 0.95
