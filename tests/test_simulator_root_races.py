"""White-box tests for root-pointer races.

A process that queues on what it believes is the root can find, once
granted, that the tree grew (root split) or shrank (root collapse)
while it waited.  These tests construct those interleavings
deterministically and assert the restart logic delivers the right
answer anyway.
"""

import random

from repro.btree import BPlusTree, check_invariants
from repro.btree.node import Node
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.model.params import CostModel
from repro.simulator import lock_coupling, optimistic
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext


def _setup(order=3, keys=()):
    def attach(node: Node) -> None:
        node.lock = RWLock(f"n{node.node_id}")

    tree = BPlusTree(order=order, on_new_node=attach)
    for key in keys:
        tree.insert(key)
    sim = Simulator()
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    ctx = OperationContext(
        sim, tree,
        ServiceTimeSampler(CostModel(disk_cost=1.0), tree,
                           random.Random(0)),
        metrics, random.Random(1))
    return tree, sim, metrics, ctx


def test_search_restarts_after_root_split():
    """A search queued on the root lock while an insert splits the root
    must restart from the *new* root and still find its key — even a
    key that moved to the new right sibling."""
    # Order-3 root leaf holding 3 keys: one more insert splits it.
    tree, sim, metrics, ctx = _setup(order=3, keys=(10, 20, 30))
    assert tree.height == 1
    found = {}

    def probing_search(key):
        yield from lock_coupling.search(ctx, key)
        # search() records metrics; capture membership directly.
        found[key] = tree.search(key)

    # The insert arrives first and holds the root W lock while working;
    # the search queues behind it, and by grant time the root changed.
    sim.spawn(lock_coupling.insert(ctx, 40), delay=0.0)
    sim.spawn(probing_search(30), delay=0.01)  # 30 moves right on split
    sim.run()
    assert tree.height == 2
    assert metrics.restarts >= 1
    assert found[30] is True
    check_invariants(tree)


def test_update_restarts_after_root_split():
    tree, sim, metrics, ctx = _setup(order=3, keys=(10, 20, 30))
    sim.spawn(lock_coupling.insert(ctx, 40), delay=0.0)
    sim.spawn(lock_coupling.insert(ctx, 35), delay=0.01)
    sim.run()
    assert metrics.restarts >= 1
    assert tree.search(35) and tree.search(40)
    check_invariants(tree)


def test_search_restarts_after_root_collapse():
    """A search queued on an internal root while deletes collapse the
    tree must restart when it finds the node dead or demoted."""
    tree, sim, metrics, ctx = _setup(order=3,
                                     keys=(1, 2, 3, 4, 5, 6))
    assert tree.height >= 2
    # Delete everything but one key: the root collapses to a leaf.
    keys = list(tree.items())
    t = 0.0
    for key in keys[:-1]:
        sim.spawn(lock_coupling.delete(ctx, key), delay=t)
        t += 0.001  # back-to-back: searches queue behind deleters
    sim.spawn(lock_coupling.search(ctx, keys[-1]), delay=t / 2)
    sim.run()
    assert tree.height == 1
    assert tree.search(keys[-1])
    check_invariants(tree)


def test_optimistic_falls_back_on_single_leaf_tree():
    """Optimistic descent on a height-1 tree takes the W-protocol
    fallback path and still works."""
    tree, sim, metrics, ctx = _setup(order=4, keys=(1,))
    assert tree.height == 1
    sim.spawn(optimistic.insert(ctx, 2), delay=0.0)
    sim.spawn(optimistic.delete(ctx, 1), delay=0.1)
    sim.run()
    assert tree.search(2)
    assert not tree.search(1)
    check_invariants(tree)


def test_optimistic_redo_on_full_leaf():
    """An optimistic insert into a full leaf must release, redo with W
    locks, split, and succeed."""
    tree, sim, metrics, ctx = _setup(order=3, keys=(10, 20, 30, 40))
    assert tree.height == 2
    full_leaf = tree.find_leaf(40)
    while not tree.overflowed(full_leaf) and full_leaf.n_entries() < 3:
        tree.insert(full_leaf.keys[-1] + 1)
    target = full_leaf.keys[-1] + 1
    sim.spawn(optimistic.insert(ctx, target), delay=0.0)
    sim.run()
    assert metrics.redo_descents >= 1
    assert tree.search(target)
    check_invariants(tree)
