"""Behavioral tests for the event-driven cluster simulator
(:mod:`repro.cluster.sim`): determinism, conservation, and the effect
of each robustness policy under injected chaos."""

import math

import pytest

from repro.cluster import (
    ClusterSimConfig,
    ClusterSpec,
    get_policies,
    run_cluster_simulation,
)
from repro.errors import ConfigurationError
from repro.resilience import (
    REPLICA_LAG,
    SHARD_CRASH,
    SLOW_SHARD,
    FaultPlan,
    FaultSpec,
)

_MEANS = {"search": 2.0, "insert": 3.0, "delete": 3.0}
_MIX = {"search": 0.3, "insert": 0.5, "delete": 0.2}


def _config(**overrides):
    kwargs = dict(
        spec=ClusterSpec(shards=4, replicas=2),
        arrival_rate=0.2,
        service_means=_MEANS,
        mix=_MIX,
        horizon=600.0,
        seed=11,
    )
    kwargs.update(overrides)
    return ClusterSimConfig(**kwargs)


def _crash(shard=0, at=100.0, duration=80.0, factor=1.5):
    return FaultSpec(kind=SHARD_CRASH, task_index=shard, at=at,
                     duration=duration, factor=factor)


class TestConservation:
    def test_every_attempt_is_accounted(self):
        result = run_cluster_simulation(_config())
        assert result.attempted == (result.completed + result.failed
                                    + result.shed_writes)
        assert result.attempted > 0

    def test_per_shard_totals_match_cluster_totals(self):
        result = run_cluster_simulation(_config())
        assert sum(s.completed for s in result.per_shard) \
            == result.completed
        assert sum(s.attempted for s in result.per_shard) \
            == result.attempted

    def test_fault_free_run_completes_everything(self):
        result = run_cluster_simulation(_config())
        assert result.failed == 0
        assert result.availability == pytest.approx(1.0, abs=0.02)
        assert 0 < result.mean_response < math.inf


class TestDeterminism:
    def test_same_seed_is_identical(self):
        plan = FaultPlan(specs=(_crash(),))
        a = run_cluster_simulation(_config(faults=plan))
        b = run_cluster_simulation(_config(faults=plan))
        assert a == b

    def test_different_seed_differs(self):
        a = run_cluster_simulation(_config(seed=1))
        b = run_cluster_simulation(_config(seed=2))
        assert a.response_sum != b.response_sum


class TestChaosEffects:
    def test_crash_fails_operations_without_retries(self):
        plan = FaultPlan(specs=(_crash(),))
        fragile = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("fragile")))
        assert fragile.failed > 0
        assert fragile.availability < 1.0
        assert fragile.retries == 0

    def test_retries_rescue_crash_window_operations(self):
        plan = FaultPlan(specs=(_crash(duration=30.0),))
        fragile = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("fragile")))
        retrying = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("retry-only")))
        assert retrying.retries > 0
        # A 30-unit outage sits inside the retry rescue horizon: every
        # crash-window operation eventually lands.
        assert retrying.failed == 0
        assert retrying.availability > fragile.availability

    def test_brownout_trips_the_breaker(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind=SLOW_SHARD, task_index=0, at=100.0, duration=250.0,
            factor=8.0),))
        result = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("breaker-only"),
                    arrival_rate=0.4))
        assert result.shed_writes > 0
        assert result.per_shard[0].shed_writes == result.shed_writes

    def test_hedged_reads_win_against_lagging_replicas(self):
        result = run_cluster_simulation(
            _config(policies=get_policies("hedge-only"),
                    arrival_rate=0.5, horizon=1500.0))
        assert result.hedges > 0
        assert 0 < result.hedged_wins <= result.hedges

    def test_replica_lag_slows_reads_on_replicas(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind=REPLICA_LAG, task_index=0, at=0.0, duration=600.0,
            factor=10.0),))
        clean = run_cluster_simulation(
            _config(policies=get_policies("fragile")))
        lagged = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("fragile")))
        assert lagged.mean_response > clean.mean_response

    def test_common_random_numbers_isolate_the_policy_effect(self):
        """Same seed + same chaos: the fragile and resilient runs draw
        from one stream, so their offered loads track closely (policy-
        dependent draws — hedges, retries — perturb the tail of the
        arrival sequence, but not the regime)."""
        plan = FaultPlan(specs=(_crash(),))
        fragile = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("fragile")))
        resilient = run_cluster_simulation(
            _config(faults=plan, policies=get_policies("resilient")))
        assert fragile.attempted == pytest.approx(resilient.attempted,
                                                  rel=0.10)
        assert resilient.availability > fragile.availability


class TestValidation:
    def test_fault_beyond_topology_rejected(self):
        plan = FaultPlan(specs=(_crash(shard=9),))
        with pytest.raises(ConfigurationError, match="shard 9"):
            run_cluster_simulation(_config(faults=plan))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            _config(arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            _config(horizon=0.0)
        with pytest.raises(ConfigurationError):
            _config(mix={"search": 0.5, "insert": 0.5, "delete": 0.5})
        with pytest.raises(ConfigurationError):
            _config(service_means={"search": 2.0, "insert": 3.0})

    def test_counters_exported_under_cluster_namespace(self):
        result = run_cluster_simulation(_config())
        counters = result.counters()
        assert set(counters) == {
            "cluster.attempted", "cluster.completed", "cluster.failed",
            "cluster.shed_writes", "cluster.retries", "cluster.hedges",
            "cluster.hedged_wins",
        }
        assert counters["cluster.attempted"] == result.attempted
