"""CLI tests for the ``cluster`` and ``list-cluster-policies``
subcommands of ``btree-perf``."""

import pytest

from repro.algorithms import all_algorithms
from repro.cluster import policy_names
from repro.experiments.runner import main as cli_main
from repro.resilience import FAULTS_ENV


class TestListClusterPolicies:
    def test_lists_every_preset_with_its_description(self, capsys):
        assert cli_main(["list-cluster-policies"]) == 0
        out = capsys.readouterr().out
        for name in policy_names():
            assert name in out
        assert "no defenses" in out
        assert "breaker(rho>0.5" in out


class TestClusterCommand:
    def test_chaos_run_reports_model_and_sim(self, capsys):
        assert cli_main(["cluster", "--shards", "4", "--chaos", "1",
                         "--horizon", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "shard-crash@" in out
        assert "model: response" in out
        assert "sim availability" in out
        assert "shard 3:" in out

    def test_same_seed_output_is_identical(self, capsys):
        argv = ["cluster", "--shards", "2", "--chaos", "1",
                "--horizon", "400", "--seed", "7"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert cli_main(argv) == 0
        assert capsys.readouterr().out == first

    def test_explicit_faults_spec(self, capsys):
        assert cli_main(["cluster", "--shards", "2", "--horizon", "300",
                         "--faults", "slow-shard@1~60!100%4"]) == 0
        assert "slow-shard@1" in capsys.readouterr().out

    def test_faults_default_from_environment(self, capsys, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "shard-crash@0~50!80%1.5")
        assert cli_main(["cluster", "--shards", "2",
                         "--horizon", "300"]) == 0
        assert "shard-crash@0" in capsys.readouterr().out

    def test_faults_and_chaos_mutually_exclusive(self, capsys):
        assert cli_main(["cluster", "--faults", "slow-shard@0",
                         "--chaos", "1"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_faults_fail_cleanly(self, capsys):
        assert cli_main(["cluster", "--faults", "bogus@@"]) == 1
        assert "fault spec" in capsys.readouterr().err

    def test_model_free_algorithm_rejected(self, capsys):
        sim_only = [s.name for s in all_algorithms() if not s.has_model]
        if not sim_only:
            pytest.skip("every registered algorithm has a model")
        assert cli_main(["cluster", "--algorithm", sim_only[0]]) == 1
        assert "no analytical model" in capsys.readouterr().err

    def test_explicit_rate_overrides_rho(self, capsys):
        assert cli_main(["cluster", "--shards", "2", "--rate", "0.05",
                         "--horizon", "300"]) == 0
        assert "rate 0.05" in capsys.readouterr().out
