"""Unit tests for the cluster topology, policy catalog and chaos
schedules (:mod:`repro.cluster`)."""

import pytest

from repro.cluster import (
    POLICY_PRESETS,
    BreakerPolicy,
    ClusterSpec,
    HedgePolicy,
    RouterRetryPolicy,
    chaos_plan,
    get_policies,
    policy_names,
)
from repro.errors import ConfigurationError
from repro.resilience import REPLICA_LAG, SHARD_CRASH, SLOW_SHARD


class TestClusterSpec:
    def test_every_key_routes_to_a_shard(self):
        spec = ClusterSpec(shards=4, key_space=1000)
        shards = {spec.shard_for(key) for key in range(1000)}
        assert shards == {0, 1, 2, 3}

    def test_uniform_weights_split_the_space_evenly(self):
        spec = ClusterSpec(shards=4, key_space=1000)
        counts = [0] * 4
        for key in range(1000):
            counts[spec.shard_for(key)] += 1
        assert counts == [250, 250, 250, 250]

    def test_skewed_weights_shift_the_boundaries(self):
        spec = ClusterSpec(shards=2, weights=(3.0, 1.0), key_space=1000)
        hot = sum(1 for key in range(1000) if spec.shard_for(key) == 0)
        assert hot == 750
        assert spec.hottest_weight == pytest.approx(0.75)

    def test_weights_are_normalized(self):
        spec = ClusterSpec(shards=2, weights=(2.0, 2.0))
        assert spec.weight(0) == pytest.approx(0.5)
        assert spec.weight(1) == pytest.approx(0.5)

    def test_out_of_range_keys_rejected(self):
        spec = ClusterSpec(shards=2, key_space=10)
        with pytest.raises(ConfigurationError):
            spec.shard_for(10)
        with pytest.raises(ConfigurationError):
            spec.shard_for(-1)

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"shards": 2, "replicas": 0},
        {"shards": 2, "weights": (1.0,)},
        {"shards": 2, "weights": (1.0, -1.0)},
        {"shards": 2, "key_space": 0},
    ])
    def test_invalid_topologies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterSpec(**kwargs)


class TestPolicyCatalog:
    def test_fragile_has_no_defenses(self):
        fragile = get_policies("fragile")
        assert not fragile.retry.enabled
        assert not fragile.hedge.enabled
        assert not fragile.breaker.enabled
        assert fragile.describe() == "no defenses"

    def test_resilient_has_all_three(self):
        resilient = get_policies("resilient")
        assert resilient.retry.enabled
        assert resilient.hedge.enabled
        assert resilient.breaker.enabled
        text = resilient.describe()
        assert "retry(" in text and "hedge(" in text and "breaker(" in text

    def test_single_defense_presets_attribute_one_mechanism(self):
        for name, attr in (("retry-only", "retry"), ("hedge-only", "hedge"),
                           ("breaker-only", "breaker")):
            preset = get_policies(name)
            for other in ("retry", "hedge", "breaker"):
                assert getattr(preset, other).enabled == (other == attr)

    def test_names_match_catalog(self):
        assert set(policy_names()) == set(POLICY_PRESETS)

    def test_unknown_preset_names_the_catalog(self):
        with pytest.raises(ConfigurationError, match="fragile"):
            get_policies("bulletproof")

    def test_breaker_opens_at_margin_times_steady_state_backlog(self):
        # At rho = 0.5 the M/M/1 workload is one mean service time.
        breaker = BreakerPolicy(rho_threshold=0.5, margin=4.0)
        assert breaker.open_backlog(3.0) == pytest.approx(12.0)

    @pytest.mark.parametrize("kwargs", [
        {"rho_threshold": 0.0},
        {"rho_threshold": 1.0},
        {"margin": 0.0},
        {"hysteresis": 0.0},
        {"hysteresis": 1.0},
    ])
    def test_breaker_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(**kwargs)

    def test_retry_and_hedge_validation(self):
        with pytest.raises(ConfigurationError):
            RouterRetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay=0.0)


class TestChaosPlan:
    def test_rate_zero_is_fault_free(self):
        assert not chaos_plan(8, 0, 1000.0)

    def test_wave_composition(self):
        plan = chaos_plan(8, 2, 1000.0)
        kinds = [spec.kind for spec in plan.specs]
        assert kinds.count(SHARD_CRASH) == 2
        assert kinds.count(SLOW_SHARD) == 2
        assert kinds.count(REPLICA_LAG) == 1

    def test_windows_fit_the_horizon(self):
        plan = chaos_plan(8, 2, 1000.0)
        for spec in plan.specs:
            assert 0.0 <= spec.at < spec.window_end <= 1000.0
            assert 0 <= spec.shard < 8

    def test_deterministic_and_env_round_trippable(self):
        from repro.resilience import FaultPlan
        plan = chaos_plan(16, 2, 2000.0)
        assert plan == chaos_plan(16, 2, 2000.0)
        assert FaultPlan.parse(plan.encode()) == plan

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            chaos_plan(0, 1, 100.0)
        with pytest.raises(ConfigurationError):
            chaos_plan(4, -1, 100.0)
        with pytest.raises(ConfigurationError):
            chaos_plan(4, 1, 0.0)
