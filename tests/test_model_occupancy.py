"""Unit tests for the occupancy model (Corollary 1) against both the
closed forms and actual built trees."""

import pytest

from repro.btree import build_tree, collect_statistics
from repro.errors import ConfigurationError
from repro.model.occupancy import (
    OccupancyModel,
    effective_fanout,
    expected_split_rate,
    pr_full_internal,
    pr_full_leaf,
    utilization_headroom,
)
from repro.model.params import PAPER_MIX, OperationMix


class TestClosedForms:
    def test_corollary1_leaf_value(self):
        # q = 2/7 with the paper mix: (1 - 4/7) / ((5/7) * .68 * 13)
        expected = (1 - 4.0 / 7.0) / ((5.0 / 7.0) * 0.68 * 13)
        assert pr_full_leaf(PAPER_MIX, 13) == pytest.approx(expected)

    def test_pure_insert_limit(self):
        mix = OperationMix(0.3, 0.7, 0.0)
        assert pr_full_leaf(mix, 13) == pytest.approx(1.0 / (0.68 * 13))

    def test_more_deletes_than_inserts_rejected(self):
        mix = OperationMix(0.2, 0.3, 0.5)
        with pytest.raises(ConfigurationError):
            pr_full_leaf(mix, 13)

    def test_internal_value(self):
        assert pr_full_internal(13) == pytest.approx(1.0 / (0.69 * 13))

    def test_effective_fanout(self):
        assert effective_fanout(13) == pytest.approx(8.97)

    def test_larger_nodes_are_less_often_full(self):
        assert pr_full_leaf(PAPER_MIX, 59) < pr_full_leaf(PAPER_MIX, 13)
        assert pr_full_internal(59) < pr_full_internal(13)


class TestOccupancyModel:
    def test_corollary1_constructor(self):
        occ = OccupancyModel.corollary1(PAPER_MIX, 13, height=5)
        assert occ.height == 5
        assert occ.full(1) == pytest.approx(pr_full_leaf(PAPER_MIX, 13))
        for level in range(2, 6):
            assert occ.full(level) == pytest.approx(pr_full_internal(13))
            assert occ.empty(level) == 0.0

    def test_split_propagation_product(self):
        occ = OccupancyModel(pr_full=(0.1, 0.2, 0.5), pr_empty=(0, 0, 0))
        assert occ.split_propagation(1) == pytest.approx(0.1)
        assert occ.split_propagation(2) == pytest.approx(0.02)
        assert occ.split_propagation(3) == pytest.approx(0.01)
        assert occ.split_propagation(0) == 1.0

    def test_merge_propagation_zero_by_default(self):
        occ = OccupancyModel.corollary1(PAPER_MIX, 13, height=3)
        assert occ.merge_propagation(1) == 0.0

    def test_uniform(self):
        occ = OccupancyModel.uniform(0.25, height=4)
        assert all(occ.full(level) == 0.25 for level in range(1, 5))

    def test_probability_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            OccupancyModel(pr_full=(1.5,), pr_empty=(0.0,))
        with pytest.raises(ConfigurationError):
            OccupancyModel(pr_full=(0.5, 0.5), pr_empty=(0.0,))

    def test_measured_from_real_tree(self):
        tree = build_tree(10_000, order=13, seed=2)
        occ = OccupancyModel.measured(collect_statistics(tree))
        assert occ.height == tree.height
        assert 0.0 <= occ.full(1) <= 0.3

    def test_corollary1_matches_built_tree(self):
        """The closed form tracks the measured leaf-full fraction."""
        tree = build_tree(40_000, order=13, seed=0)
        measured = OccupancyModel.measured(collect_statistics(tree))
        closed = OccupancyModel.corollary1(PAPER_MIX, 13, tree.height)
        assert measured.full(1) == pytest.approx(closed.full(1), rel=0.25)

    def test_headroom(self):
        occ = OccupancyModel.uniform(0.0, height=3)
        assert utilization_headroom(occ) == pytest.approx(1.0)
        occ2 = OccupancyModel.uniform(0.5, height=3)
        assert utilization_headroom(occ2) == pytest.approx(0.5)


class TestSplitRate:
    def test_scales_with_arrival_rate(self):
        occ = OccupancyModel.corollary1(PAPER_MIX, 13, height=5)
        low = expected_split_rate(PAPER_MIX, occ, 1.0, level=1)
        high = expected_split_rate(PAPER_MIX, occ, 2.0, level=1)
        assert high == pytest.approx(2 * low)

    def test_decays_with_level(self):
        occ = OccupancyModel.corollary1(PAPER_MIX, 13, height=5)
        rates = [expected_split_rate(PAPER_MIX, occ, 1.0, level)
                 for level in range(1, 5)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_level_floor(self):
        occ = OccupancyModel.corollary1(PAPER_MIX, 13, height=5)
        with pytest.raises(ConfigurationError):
            expected_split_rate(PAPER_MIX, occ, 1.0, level=0)
