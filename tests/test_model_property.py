"""Property-based tests of the analytical framework.

Hypothesis sweeps the model inputs (mix, costs, shape, load) and checks
the structural properties every queueing analysis must satisfy:
response times are positive, increase with load, and the Theorem 6
fixed point is an actual fixed point with sane outputs across the
parameter space.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import UnstableQueueError
from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.link import analyze_link
from repro.model.optimistic import analyze_optimistic
from repro.model.params import (
    CostModel,
    ModelConfig,
    OperationMix,
    TreeShape,
)
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

_SETTINGS = settings(max_examples=60, deadline=None)

POSITIVE_RATE = st.floats(min_value=1e-3, max_value=5.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def queue_inputs(draw):
    lambda_r = draw(st.floats(min_value=0.0, max_value=3.0))
    lambda_w = draw(st.floats(min_value=1e-4, max_value=0.9))
    mu_r = draw(st.floats(min_value=0.2, max_value=5.0))
    mu_w = draw(st.floats(min_value=0.2, max_value=5.0))
    return RWQueueInput(lambda_r, lambda_w, mu_r, mu_w)


@st.composite
def model_configs(draw):
    q_search = draw(st.floats(min_value=0.05, max_value=0.9))
    insert_share = draw(st.floats(min_value=0.6, max_value=1.0))
    q_insert = (1.0 - q_search) * insert_share
    mix = OperationMix(q_search=q_search, q_insert=q_insert,
                       q_delete=1.0 - q_search - q_insert)
    disk_cost = draw(st.floats(min_value=1.0, max_value=10.0))
    in_memory = draw(st.integers(min_value=0, max_value=3))
    height = draw(st.integers(min_value=2, max_value=5))
    fanouts = tuple(
        draw(st.floats(min_value=3.0, max_value=30.0))
        for _ in range(height - 1))
    order = draw(st.integers(min_value=5, max_value=101))
    return ModelConfig(
        mix=mix,
        costs=CostModel(disk_cost=disk_cost, in_memory_levels=in_memory),
        shape=TreeShape.from_fanouts(fanouts),
        order=order,
    )


class TestTheorem6Properties:
    @_SETTINGS
    @given(q=queue_inputs())
    def test_fixed_point_or_saturation(self, q):
        try:
            sol = solve_rw_queue(q)
        except UnstableQueueError:
            return  # saturation is a legitimate outcome
        assert 0.0 <= sol.rho_w < 1.0
        assert sol.r_u >= 0.0 and sol.r_e >= 0.0
        rhs = q.lambda_w * (1.0 / q.mu_w + sol.rho_w * sol.r_u
                            + (1.0 - sol.rho_w) * sol.r_e)
        assert math.isclose(sol.rho_w, rhs, rel_tol=1e-6, abs_tol=1e-9)
        assert sol.aggregate_service_time >= 1.0 / q.mu_w

    @_SETTINGS
    @given(q=queue_inputs(),
           factor=st.floats(min_value=1.05, max_value=2.0))
    def test_rho_monotone_in_writer_load(self, q, factor):
        try:
            base = solve_rw_queue(q).rho_w
        except UnstableQueueError:
            return
        heavier = RWQueueInput(q.lambda_r, q.lambda_w * factor,
                               q.mu_r, q.mu_w)
        try:
            assert solve_rw_queue(heavier).rho_w > base
        except UnstableQueueError:
            pass  # pushed past the boundary: consistent with monotonicity


ANALYZERS = (analyze_lock_coupling, analyze_optimistic, analyze_link)


class TestAnalysisProperties:
    @_SETTINGS
    @given(config=model_configs(), rate=POSITIVE_RATE,
           analyzer=st.sampled_from(ANALYZERS))
    def test_stable_predictions_are_sane(self, config, rate, analyzer):
        prediction = analyzer(config, rate)
        if not prediction.stable:
            assert prediction.saturated_level is not None
            assert prediction.response("search") == math.inf
            return
        assert len(prediction.levels) == config.height
        serial_search = sum(config.costs.se(level, config.height)
                            for level in range(1, config.height + 1))
        assert prediction.response("search") >= serial_search * (1 - 1e-9)
        for op in ("search", "insert", "delete"):
            assert prediction.response(op) > 0.0
        for level in prediction.levels:
            assert 0.0 <= level.rho_w < 1.0
            assert level.R >= 0.0
            assert level.W >= level.R

    @_SETTINGS
    @given(config=model_configs(), rate=st.floats(min_value=1e-3,
                                                  max_value=0.5),
           analyzer=st.sampled_from(ANALYZERS))
    def test_response_monotone_in_load(self, config, rate, analyzer):
        low = analyzer(config, rate)
        high = analyzer(config, rate * 1.5)
        assume(low.stable and high.stable)
        for op in ("search", "insert", "delete"):
            assert high.response(op) >= low.response(op) - 1e-9

    @_SETTINGS
    @given(config=model_configs(), rate=st.floats(min_value=1e-3,
                                                  max_value=0.3))
    def test_optimistic_never_loads_the_root_more_than_naive(self, config,
                                                             rate):
        """Across the whole parameter space, turning updates' upper-level
        W locks into R locks (Optimistic Descent's whole point) can only
        lower the root writer utilization."""
        naive = analyze_lock_coupling(config, rate)
        optimistic = analyze_optimistic(config, rate)
        assume(naive.stable and optimistic.stable)
        assert naive.root_writer_utilization \
            >= optimistic.root_writer_utilization - 1e-9
