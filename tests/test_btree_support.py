"""Unit tests for policies, builder, statistics and the validator."""

import pytest

from repro.btree import (
    BPlusTree,
    MERGE_AT_EMPTY,
    MERGE_AT_HALF,
    build_tree,
    check_invariants,
    collect_statistics,
)
from repro.btree.policies import policy_by_name
from repro.btree.stats import LN2_FILL, expected_height
from repro.errors import ConfigurationError, InvariantViolationError


class TestPolicies:
    def test_merge_at_empty_floor(self):
        assert MERGE_AT_EMPTY.min_entries(13) == 1
        assert MERGE_AT_EMPTY.underflows(0, 13)
        assert not MERGE_AT_EMPTY.underflows(1, 13)

    def test_merge_at_half_floor(self):
        assert MERGE_AT_HALF.min_entries(13) == 7  # ceil(13/2)
        assert MERGE_AT_HALF.underflows(6, 13)
        assert not MERGE_AT_HALF.underflows(7, 13)

    def test_lookup_by_name(self):
        assert policy_by_name("merge-at-empty") is MERGE_AT_EMPTY
        assert policy_by_name("merge-at-half") is MERGE_AT_HALF
        with pytest.raises(ConfigurationError):
            policy_by_name("merge-at-noon")

    def test_str(self):
        assert str(MERGE_AT_EMPTY) == "merge-at-empty"


class TestBuilder:
    def test_reaches_target_size(self):
        tree = build_tree(2_000, order=7, seed=3)
        assert len(tree) >= 2_000
        check_invariants(tree)

    def test_zero_items(self):
        tree = build_tree(0, order=5)
        assert len(tree) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree(-1)

    def test_shrinking_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree(100, insert_fraction=0.4)

    def test_deterministic_by_seed(self):
        a = build_tree(1_500, order=7, seed=9)
        b = build_tree(1_500, order=7, seed=9)
        assert list(a.items()) == list(b.items())

    def test_different_seeds_differ(self):
        a = build_tree(1_500, order=7, seed=1)
        b = build_tree(1_500, order=7, seed=2)
        assert list(a.items()) != list(b.items())

    def test_paper_scale_shape(self):
        """The Section 5.3 tree: ~40k items, order 13 -> 5 levels,
        root fanout ~6, fill factor ~ln 2."""
        tree = build_tree(40_000, order=13, seed=0)
        stats = collect_statistics(tree)
        assert stats.height == 5
        assert 3 <= stats.root_fanout <= 12
        assert abs(stats.fill_factor() - LN2_FILL) < 0.06

    def test_node_hooks_forwarded(self):
        created = []
        build_tree(500, order=5, seed=1, on_new_node=created.append)
        assert len(created) > 50


class TestStatistics:
    def test_counts_match_manual_walk(self):
        tree = build_tree(1_000, order=7, seed=4)
        stats = collect_statistics(tree)
        assert stats.n_items == len(tree)
        assert stats.height == tree.height
        for level in range(1, tree.height + 1):
            assert stats.nodes_at(level) == len(list(tree.level_nodes(level)))

    def test_fraction_full_bounds(self):
        tree = build_tree(3_000, order=7, seed=5)
        stats = collect_statistics(tree)
        for level in range(1, tree.height + 1):
            assert 0.0 <= stats.fraction_full(level) <= 1.0

    def test_fanout_consistency(self):
        tree = build_tree(3_000, order=7, seed=6)
        stats = collect_statistics(tree)
        for level in range(2, tree.height + 1):
            expected = (stats.nodes_at(level - 1) / stats.nodes_at(level))
            assert stats.fanout(level) == pytest.approx(expected)

    @pytest.mark.parametrize("n_items,order", [
        (0, 13), (5, 13), (40_000, 13), (40_000, 59), (10**6, 101),
    ])
    def test_expected_height_close_to_actual_formula(self, n_items, order):
        h = expected_height(n_items, order)
        assert h >= 1
        effective = max(2.0, LN2_FILL * order)
        if n_items > 0:
            assert effective ** h >= n_items  # coverage suffices

    def test_expected_height_matches_paper(self):
        assert expected_height(40_000, 13) == 5


class TestValidator:
    def _tree(self):
        tree = BPlusTree(order=4)
        for key in range(40):
            tree.insert(key)
        return tree

    def test_clean_tree_passes(self):
        check_invariants(self._tree())

    def test_detects_unsorted_keys(self):
        tree = self._tree()
        leaf = tree.find_leaf(0)
        leaf.keys.reverse()
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_overflow(self):
        tree = self._tree()
        leaf = tree.find_leaf(39)
        leaf.keys.extend(range(1000, 1010))
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_router_violation(self):
        tree = self._tree()
        leaf = tree.find_leaf(0)
        leaf.keys.append(10**9)  # escapes every router bound
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_broken_right_link(self):
        tree = self._tree()
        first_leaf = tree.leftmost_leaf()
        first_leaf.right = first_leaf.right.right  # skip one node
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_bad_high_key(self):
        tree = self._tree()
        first_leaf = tree.leftmost_leaf()
        first_leaf.high_key = 10**9
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_dead_node(self):
        tree = self._tree()
        tree.find_leaf(0).dead = True
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_detects_size_mismatch(self):
        tree = self._tree()
        tree._size += 1
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)

    def test_allow_underflow_permits_empty_leaf(self):
        tree = self._tree()
        leaf = tree.find_leaf(0)
        removed = len(leaf.keys)
        tree._size -= removed
        leaf.keys.clear()
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)  # policy floor violated
        check_invariants(tree, allow_underflow=True)  # link-tree mode

    def test_detects_link_cycle(self):
        tree = self._tree()
        leaf = tree.leftmost_leaf()
        leaf.right.right = leaf  # cycle
        with pytest.raises(InvariantViolationError):
            check_invariants(tree)
