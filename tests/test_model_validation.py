"""Tests for the prediction-vs-simulation validation utilities."""

import math

import pytest

from repro.model.lock_coupling import analyze_lock_coupling
from repro.model.validation import (
    ComparisonRow,
    ValidationReport,
    compare_prediction_to_simulation,
    measured_model_config,
    sweep_agreement,
)
from repro.simulator.config import SimulationConfig


@pytest.fixture(scope="module")
def quick_config():
    return SimulationConfig(
        algorithm="naive-lock-coupling", arrival_rate=0.1,
        n_items=3_000, n_operations=500, warmup_operations=50, seed=21)


class TestComparisonRow:
    def test_relative_error(self):
        row = ComparisonRow("search", predicted=10.0, simulated=11.0)
        assert row.relative_error == pytest.approx(0.1)

    def test_undefined_when_saturated(self):
        row = ComparisonRow("search", predicted=math.inf, simulated=11.0)
        assert math.isnan(row.relative_error)


class TestMeasuredModelConfig:
    def test_shape_matches_simulator_tree(self, quick_config):
        config = measured_model_config(quick_config)
        assert config.order == quick_config.order
        assert config.mix == quick_config.mix
        assert config.height >= 3

    def test_deterministic(self, quick_config):
        a = measured_model_config(quick_config)
        b = measured_model_config(quick_config)
        assert a.shape == b.shape


class TestCompare:
    def test_low_load_agreement(self, quick_config):
        report = compare_prediction_to_simulation(
            analyze_lock_coupling, quick_config, n_seeds=2)
        assert len(report.rows) == 3
        assert report.prediction.stable
        assert not report.any_overflowed
        assert report.max_relative_error < 0.25
        assert report.agrees_within(0.30)

    def test_format_is_readable(self, quick_config):
        report = compare_prediction_to_simulation(
            analyze_lock_coupling, quick_config, n_seeds=1)
        text = report.format()
        assert "naive-lock-coupling" in text
        for op in ("search", "insert", "delete"):
            assert op in text

    def test_saturated_point_never_agrees(self, quick_config):
        saturated = quick_config.with_rate(10.0)
        report = compare_prediction_to_simulation(
            analyze_lock_coupling,
            SimulationConfig(**{**saturated.__dict__,
                                "max_population": 100}),
            n_seeds=1)
        assert not report.agrees_within(1e9)

    def test_sweep_reuses_shape(self, quick_config):
        reports = sweep_agreement(
            analyze_lock_coupling, quick_config, rates=(0.05, 0.15),
            n_seeds=1)
        assert set(reports) == {0.05, 0.15}
        for rate, report in reports.items():
            assert report.arrival_rate == rate
            assert isinstance(report, ValidationReport)
