"""Correctness of the concurrent algorithms: after a full simulated run
the shared tree must still satisfy every structural invariant, and the
lock discipline must never have been violated (violations raise during
the run)."""

import pytest

from repro.btree.validate import check_invariants
from repro.simulator.driver import (
    _ALGORITHM_MODULES,
    run_simulation,
)

# Re-run the driver but keep a handle on the tree: we rebuild the run via
# a tiny wrapper around run_simulation internals would be invasive;
# instead we exercise the operation processes directly on a shared tree.
import random

from repro.btree.builder import build_tree
from repro.btree.node import Node
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.model.params import CostModel, PAPER_MIX
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext, pick_resident_key


def _drive(algorithm: str, n_ops: int = 800, rate: float = 0.5,
           seed: int = 1, order: int = 5, n_items: int = 800,
           recovery: str = "no-recovery"):
    """Run ``n_ops`` concurrent operations of ``algorithm`` on a small,
    split-happy tree and return (tree, metrics, issued ops)."""
    module = _ALGORITHM_MODULES[algorithm]
    rng = random.Random(seed)

    def attach_lock(node: Node) -> None:
        node.lock = RWLock(name=str(node.node_id))

    tree = build_tree(n_items, order=order, key_space=5_000,
                      rng=random.Random(seed + 1), on_new_node=attach_lock)
    sim = Simulator()
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    sampler = ServiceTimeSampler(CostModel(disk_cost=2.0), tree,
                                 random.Random(seed + 2))
    ctx = OperationContext(sim, tree, sampler, metrics, rng,
                           recovery=recovery, t_trans=20.0)
    issued = []
    t = 0.0
    for _ in range(n_ops):
        t += rng.expovariate(rate)
        u = rng.random()
        if u < PAPER_MIX.q_search:
            op, key = "search", rng.randrange(5_000)
        elif u < PAPER_MIX.q_search + PAPER_MIX.q_insert:
            op, key = "insert", rng.randrange(5_000)
        else:
            op, key = "delete", pick_resident_key(tree, rng, 5_000)
        issued.append((op, key))
        factory = getattr(module, op)
        sim.spawn(factory(ctx, key), name=op, delay=t)
    sim.run()
    assert sim.active_processes == 0
    return tree, metrics, issued


ALGORITHMS = ["naive-lock-coupling", "optimistic-descent", "link-type"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_invariants_after_concurrent_run(algorithm, seed):
    tree, _metrics, _issued = _drive(algorithm, seed=seed)
    # Link trees may hold empty leaves (link-type never merges; the
    # symmetric variant's merges are best-effort).
    check_invariants(tree, allow_underflow=algorithm.startswith("link"))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_no_locks_leaked(algorithm):
    tree, _metrics, _issued = _drive(algorithm, n_ops=400)
    for level in range(1, tree.height + 1):
        for node in tree.level_nodes(level):
            assert node.lock.writer is None
            assert not node.lock.readers
            assert node.lock.queue_length == 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_inserted_keys_are_findable(algorithm):
    """Every key inserted (and not later deleted) must be in the tree."""
    tree, _metrics, issued = _drive(algorithm, n_ops=600, seed=7)
    final_state = {}
    for op, key in issued:
        if op == "insert":
            final_state[key] = True
        elif op == "delete":
            final_state[key] = False
    # Concurrency can reorder same-key operations that overlap in time,
    # so only check keys touched exactly once.
    touch_counts = {}
    for op, key in issued:
        if op != "search":
            touch_counts[key] = touch_counts.get(key, 0) + 1
    resident = set(tree.items())
    for key, wanted in final_state.items():
        if touch_counts.get(key, 0) == 1 and wanted:
            assert key in resident, f"lost insert of {key}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_size_counter_matches_contents(algorithm):
    tree, _metrics, _issued = _drive(algorithm, n_ops=500, seed=9)
    assert len(tree) == sum(1 for _ in tree.items())


def test_naive_update_splits_under_pressure():
    tree, metrics, _issued = _drive("naive-lock-coupling", n_ops=1_000,
                                    rate=1.0, seed=4)
    assert metrics.splits > 0


def test_optimistic_redo_counted():
    _tree, metrics, _issued = _drive("optimistic-descent", n_ops=1_000,
                                     rate=1.0, seed=5)
    assert metrics.redo_descents > 0


@pytest.mark.parametrize("recovery", ["leaf-only-recovery",
                                      "naive-recovery"])
def test_recovery_retention_releases_everything(recovery):
    """Retained locks must all be released once transactions commit."""
    tree, _metrics, _issued = _drive("optimistic-descent", n_ops=400,
                                     recovery=recovery)
    for level in range(1, tree.height + 1):
        for node in tree.level_nodes(level):
            assert node.lock.writer is None
            assert node.lock.queue_length == 0
    check_invariants(tree)


def test_full_driver_tree_is_validated_indirectly(quick_sim):
    """The packaged driver produces consistent metrics end to end."""
    result = run_simulation(quick_sim)
    assert result.final_tree_size > 0
    assert result.final_height >= 2
