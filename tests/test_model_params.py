"""Unit tests for model inputs (mix, cost model, tree shape)."""

import pytest

from repro.btree import build_tree, collect_statistics
from repro.errors import ConfigurationError
from repro.model.params import (
    CostModel,
    ModelConfig,
    OperationMix,
    PAPER_MIX,
    TreeShape,
    paper_default_config,
)


class TestOperationMix:
    def test_paper_mix(self):
        assert PAPER_MIX.q_search == 0.3
        assert PAPER_MIX.q_update == pytest.approx(0.7)
        assert PAPER_MIX.insert_share == pytest.approx(5.0 / 7.0)
        assert PAPER_MIX.delete_share == pytest.approx(2.0 / 7.0)
        assert PAPER_MIX.grows()

    def test_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            OperationMix(0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            OperationMix(1.2, -0.1, -0.1)

    def test_pure_search(self):
        mix = OperationMix(1.0, 0.0, 0.0)
        assert mix.q_update == 0.0
        assert mix.insert_share == 0.0
        assert mix.delete_share == 0.0
        assert not mix.grows()


class TestCostModel:
    def test_paper_costs(self):
        costs = CostModel(disk_cost=5.0, in_memory_levels=2)
        h = 5
        # Top two levels cached, lower three on disk.
        assert costs.se(5, h) == 1.0
        assert costs.se(4, h) == 1.0
        assert costs.se(3, h) == 5.0
        assert costs.se(1, h) == 5.0
        assert costs.modify(h) == 10.0      # 2 * Se(1)
        assert costs.sp(1, h) == 15.0       # 3 * Se(1)
        assert costs.sp(5, h) == 3.0
        assert costs.mg(1, h) == 15.0

    def test_all_cached(self):
        costs = CostModel(disk_cost=5.0, in_memory_levels=10)
        assert all(costs.se(level, 5) == 1.0 for level in range(1, 6))

    def test_disk_cost_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(disk_cost=0.5)

    def test_nonpositive_search_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(node_search_time=0.0)


class TestTreeShape:
    def test_ideal_paper_shape(self):
        shape = TreeShape.ideal(40_000, 13)
        assert shape.height == 5
        assert 4 <= shape.root_fanout <= 9
        assert shape.fanout(2) == pytest.approx(0.69 * 13, rel=0.02)

    def test_ideal_tiny(self):
        shape = TreeShape.ideal(5, 13)
        assert shape.height == 1
        assert shape.root_fanout == 1.0

    def test_ideal_root_fanout_clamped(self):
        """Configurations whose top level would have fanout < 2 clamp to
        the real-tree minimum of 2."""
        shape = TreeShape.ideal(40_000, 43)
        assert shape.root_fanout >= 2.0

    def test_nodes_at_and_arrival_share(self):
        shape = TreeShape.from_fanouts((8.0, 4.0))
        assert shape.height == 3
        assert shape.nodes_at(3) == 1.0
        assert shape.nodes_at(2) == 4.0
        assert shape.nodes_at(1) == 32.0
        assert shape.arrival_share(1) == pytest.approx(1.0 / 32.0)
        assert shape.arrival_share(3) == 1.0

    def test_from_statistics_matches_tree(self):
        tree = build_tree(3_000, order=7, seed=1)
        stats = collect_statistics(tree)
        shape = TreeShape.from_statistics(stats)
        assert shape.height == tree.height
        assert shape.root_fanout == stats.root_fanout

    def test_fanout_bounds_checked(self):
        shape = TreeShape.from_fanouts((8.0,))
        with pytest.raises(ConfigurationError):
            shape.fanout(1)
        with pytest.raises(ConfigurationError):
            shape.fanout(3)

    def test_mismatched_fanout_count_rejected(self):
        with pytest.raises(ConfigurationError):
            TreeShape(height=3, _fanouts=(8.0,))

    def test_fanout_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TreeShape.from_fanouts((0.5,))


class TestModelConfig:
    def test_paper_default(self):
        config = paper_default_config()
        assert config.height == 5
        assert config.order == 13
        assert config.costs.disk_cost == 5.0

    def test_with_disk_cost(self):
        config = paper_default_config().with_disk_cost(10.0)
        assert config.costs.disk_cost == 10.0
        assert config.order == 13  # untouched

    def test_with_order_reshapes(self):
        config = paper_default_config().with_order(59, n_items=40_000)
        assert config.order == 59
        assert config.height == 3

    def test_tiny_order_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(mix=PAPER_MIX, costs=CostModel(),
                        shape=TreeShape.ideal(100, 13), order=2)
