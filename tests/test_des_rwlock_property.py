"""Property-based tests of the FCFS R/W lock.

Hypothesis generates random customer schedules (arrival offsets, modes,
hold times) and the properties assert the safety and fairness contract
on the full execution:

* safety — a writer never overlaps any other holder;
* FCFS — grant order never inverts request order, except that
  consecutive readers may be granted together;
* liveness — every request is eventually granted and released;
* work conservation — the lock is never free while someone waits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Acquire, Hold, READ, RWLock, Release, Simulator, WRITE

CUSTOMERS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.sampled_from([READ, WRITE]),
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    ),
    min_size=1, max_size=40,
)

_SETTINGS = settings(max_examples=120, deadline=None)


def _execute(schedule):
    """Run the schedule; returns per-customer event records."""
    sim = Simulator()
    lock = RWLock("p")
    records = []

    def customer(index, mode, hold):
        requested = sim.now
        wait = yield Acquire(lock, mode)
        granted = sim.now
        holders_now = (len(lock.readers), lock.writer is not None)
        yield Hold(hold)
        yield Release(lock)
        records.append({
            "index": index, "mode": mode,
            "requested": requested, "granted": granted,
            "released": granted + hold, "wait": wait,
            "holders_at_grant": holders_now,
        })

    for index, (delay, mode, hold) in enumerate(schedule):
        sim.spawn(customer(index, mode, hold), delay=delay)
    sim.run()
    assert sim.active_processes == 0
    return sorted(records, key=lambda r: (r["granted"], r["requested"]))


@_SETTINGS
@given(schedule=CUSTOMERS)
def test_liveness_every_customer_served(schedule):
    records = _execute(schedule)
    assert len(records) == len(schedule)
    for record in records:
        assert record["granted"] >= record["requested"]
        assert record["wait"] == record["granted"] - record["requested"]


@_SETTINGS
@given(schedule=CUSTOMERS)
def test_safety_writer_exclusive(schedule):
    records = _execute(schedule)
    intervals = [(r["granted"], r["released"], r["mode"]) for r in records]
    for i, (g1, r1, m1) in enumerate(intervals):
        for g2, r2, m2 in intervals[i + 1:]:
            overlap = max(g1, g2) < min(r1, r2)
            if overlap:
                assert m1 == READ and m2 == READ, (
                    "writer overlapped another holder")


@_SETTINGS
@given(schedule=CUSTOMERS)
def test_fcfs_no_mode_inversion(schedule):
    """A request granted strictly earlier than another must not have
    been made strictly later — unless both are readers admitted into
    the same read batch."""
    records = _execute(schedule)
    for i, first in enumerate(records):
        for second in records[i + 1:]:
            if first["granted"] < second["granted"]:
                if first["requested"] > second["requested"]:
                    # Overtaking: only legal when the overtaker is a
                    # reader that joined an already-reading batch.
                    assert first["mode"] == READ
                    assert second["mode"] == WRITE


@_SETTINGS
@given(schedule=CUSTOMERS)
def test_writer_grant_means_sole_ownership(schedule):
    records = _execute(schedule)
    for record in records:
        n_readers, writer_held = record["holders_at_grant"]
        if record["mode"] == WRITE:
            assert writer_held and n_readers == 0
        else:
            assert not writer_held


@_SETTINGS
@given(schedule=CUSTOMERS)
def test_accounting_consistent(schedule):
    sim = Simulator()
    lock = RWLock("acct")

    def customer(mode, hold):
        yield Acquire(lock, mode)
        yield Hold(hold)
        yield Release(lock)

    n_readers = sum(1 for _d, mode, _h in schedule if mode == READ)
    n_writers = len(schedule) - n_readers
    for delay, mode, hold in schedule:
        sim.spawn(customer(mode, hold), delay=delay)
    sim.run()
    lock.finalize(sim.now)
    assert lock.grants_read == n_readers
    assert lock.grants_write == n_writers
    assert 0.0 <= lock.time_writer_held <= lock.time_writer_present
    assert lock.time_writer_held <= lock.time_held_any + 1e-9
