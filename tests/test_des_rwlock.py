"""Unit tests for the FCFS reader/writer lock."""

import pytest

from repro.des import Acquire, Hold, READ, RWLock, Release, Simulator, WRITE
from repro.errors import LockProtocolError


def _run(script):
    """Helper: run a list of (delay, generator-factory) and return sim."""
    sim = Simulator()
    for delay, factory in script:
        sim.spawn(factory(sim), delay=delay)
    sim.run()
    return sim


def test_readers_share():
    sim = Simulator()
    lock = RWLock()
    concurrent = []

    def reader(hold):
        yield Acquire(lock, READ)
        concurrent.append(len(lock.readers))
        yield Hold(hold)
        yield Release(lock)

    sim.spawn(reader(2.0))
    sim.spawn(reader(2.0), delay=0.5)
    sim.spawn(reader(2.0), delay=1.0)
    sim.run()
    assert max(concurrent) == 3


def test_writer_excludes_writer():
    sim = Simulator()
    lock = RWLock()
    active = []
    overlap = []

    def writer(name):
        yield Acquire(lock, WRITE)
        overlap.append(list(active))
        active.append(name)
        yield Hold(1.0)
        active.remove(name)
        yield Release(lock)

    for i in range(4):
        sim.spawn(writer(i), delay=0.1 * i)
    sim.run()
    assert all(entry == [] for entry in overlap)


def test_writer_excludes_readers():
    sim = Simulator()
    lock = RWLock()
    trace = []

    def writer():
        yield Acquire(lock, WRITE)
        trace.append(("w-in", sim.now))
        yield Hold(5.0)
        trace.append(("w-out", sim.now))
        yield Release(lock)

    def reader():
        yield Acquire(lock, READ)
        trace.append(("r-in", sim.now))
        yield Release(lock)

    sim.spawn(writer())
    sim.spawn(reader(), delay=1.0)
    sim.run()
    assert trace == [("w-in", 0.0), ("w-out", 5.0), ("r-in", 5.0)]


def test_fcfs_reader_does_not_overtake_queued_writer():
    """A late reader must wait behind a queued writer even though it is
    compatible with the current (reader) holders — strict FCFS."""
    sim = Simulator()
    lock = RWLock()
    grants = []

    def holder():
        yield Acquire(lock, READ)
        yield Hold(4.0)
        yield Release(lock)

    def writer():
        yield Acquire(lock, WRITE)
        grants.append(("w", sim.now))
        yield Hold(1.0)
        yield Release(lock)

    def late_reader():
        yield Acquire(lock, READ)
        grants.append(("r", sim.now))
        yield Release(lock)

    sim.spawn(holder())
    sim.spawn(writer(), delay=1.0)       # queues behind the holder
    sim.spawn(late_reader(), delay=2.0)  # compatible, but must not overtake
    sim.run()
    assert grants == [("w", 4.0), ("r", 5.0)]


def test_consecutive_readers_granted_together():
    sim = Simulator()
    lock = RWLock()
    grants = []

    def writer():
        yield Acquire(lock, WRITE)
        yield Hold(3.0)
        yield Release(lock)

    def reader(name):
        yield Acquire(lock, READ)
        grants.append((name, sim.now))
        yield Hold(1.0)
        yield Release(lock)

    sim.spawn(writer())
    sim.spawn(reader("r1"), delay=1.0)
    sim.spawn(reader("r2"), delay=2.0)
    sim.run()
    assert grants == [("r1", 3.0), ("r2", 3.0)]


def test_release_without_holding_raises():
    sim = Simulator()
    lock = RWLock("naked")

    def bad():
        yield Release(lock)

    sim.spawn(bad())
    with pytest.raises(LockProtocolError):
        sim.run()


def test_reentrant_request_raises():
    sim = Simulator()
    lock = RWLock()

    def bad():
        yield Acquire(lock, READ)
        yield Acquire(lock, READ)

    sim.spawn(bad())
    with pytest.raises(LockProtocolError):
        sim.run()


def test_holds_reports_mode_via_direct_api():
    from repro.des.process import Process

    def idle():
        yield Hold(0.0)

    sim = Simulator()
    lock = RWLock()
    reader = Process(idle(), name="r")
    writer = Process(idle(), name="w")
    assert lock.request(sim, reader, READ) is True
    assert lock.holds(reader) == READ
    assert lock.request(sim, writer, WRITE) is False  # queued
    assert lock.holds(writer) is None
    assert lock.queue_length == 1
    assert lock.writer_waiting()
    lock.release(sim, reader)
    assert lock.holds(writer) == WRITE
    assert lock.writer is writer
    lock.release(sim, writer)
    assert lock.writer is None
    assert lock.queue_length == 0


def test_observer_receives_waits():
    class Observer:
        def __init__(self):
            self.calls = []

        def on_wait(self, mode, wait):
            self.calls.append((mode, round(wait, 9)))

    sim = Simulator()
    observer = Observer()
    lock = RWLock(observer=observer)

    def writer():
        yield Acquire(lock, WRITE)
        yield Hold(2.0)
        yield Release(lock)

    def reader():
        yield Acquire(lock, READ)
        yield Release(lock)

    sim.spawn(writer())
    sim.spawn(reader(), delay=0.5)
    sim.run()
    assert observer.calls == [(WRITE, 0.0), (READ, 1.5)]


def test_writer_presence_accounting():
    sim = Simulator()
    lock = RWLock()

    def writer():
        yield Acquire(lock, WRITE)
        yield Hold(4.0)
        yield Release(lock)

    def reader():
        yield Acquire(lock, READ)
        yield Hold(2.0)
        yield Release(lock)

    sim.spawn(reader())
    sim.spawn(writer(), delay=1.0)  # waits 1 unit behind the reader
    sim.run()
    lock.finalize(sim.now)
    assert lock.time_writer_held == pytest.approx(4.0)
    # present = waiting (1..2) + holding (2..6)
    assert lock.time_writer_present == pytest.approx(5.0)
    assert lock.time_held_any == pytest.approx(6.0)
    assert lock.grants_read == 1
    assert lock.grants_write == 1


def test_grant_counters():
    sim = Simulator()
    lock = RWLock()

    def reader():
        yield Acquire(lock, READ)
        yield Release(lock)

    for i in range(5):
        sim.spawn(reader(), delay=float(i))
    sim.run()
    assert lock.grants_read == 5
    assert lock.grants_write == 0
