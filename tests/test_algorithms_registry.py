"""The algorithm registry: invariants, capability dispatch, CLI."""

import math

import pytest

from repro.algorithms import (
    AlgorithmSpec,
    algorithm_names,
    all_algorithms,
    display_label,
    get_algorithm,
    names,
    register_algorithm,
)
from repro.algorithms.spec import CAPABILITY_FLAGS, OPS_INTERFACE
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig


# ----------------------------------------------------------------------
# Registry invariants
# ----------------------------------------------------------------------
class TestRegistryInvariants:

    def test_paper_algorithms_registered_in_order(self):
        assert algorithm_names() == (
            names.NAIVE_LOCK_COUPLING,
            names.OPTIMISTIC_DESCENT,
            names.LINK_TYPE,
            names.LINK_SYMMETRIC,
            names.TWO_PHASE_LOCKING,
            names.OPTIMISTIC_LOCK_COUPLING,
        )

    def test_names_and_column_keys_unique(self):
        specs = all_algorithms()
        assert len({spec.name for spec in specs}) == len(specs)
        assert len({spec.short for spec in specs}) == len(specs)

    def test_every_spec_resolves_its_ops_module(self):
        for spec in all_algorithms():
            module = spec.ops
            for op in OPS_INTERFACE:
                assert callable(getattr(module, op)), (spec.name, op)
            assert spec.closed_module is module  # no closed variants yet

    def test_every_model_backed_spec_resolves_its_analyzer(self):
        with_model = [spec for spec in all_algorithms() if spec.has_model]
        assert len(with_model) == 4
        for spec in with_model:
            assert callable(spec.analyze), spec.name
        for spec in all_algorithms():
            if not spec.has_model:
                assert spec.analyze is None

    def test_duplicate_name_rejected(self):
        existing = get_algorithm(names.LINK_TYPE)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm(existing)

    def test_duplicate_column_key_rejected_and_not_registered(self):
        clash = AlgorithmSpec(
            name="brand-new-variant", label="Brand New", short="link",
            ops_ref="repro.simulator.link")
        with pytest.raises(ConfigurationError, match="column key"):
            register_algorithm(clash)
        assert "brand-new-variant" not in algorithm_names()

    def test_spec_requires_name_label_short_and_ops(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSpec(name="", label="x", short="x", ops_ref="m")
        with pytest.raises(ConfigurationError):
            AlgorithmSpec(name="x", label="x", short="x", ops_ref="")

    def test_unknown_name_lists_known_names_sorted(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_algorithm("bogus")
        message = str(excinfo.value)
        assert "unknown algorithm 'bogus'" in message
        assert ", ".join(sorted(algorithm_names())) in message

    def test_display_label_falls_back_for_composites(self):
        assert display_label(names.LINK_TYPE) == "Link-type (Lehman-Yao)"
        composite = f"{names.OPTIMISTIC_DESCENT}+naive-recovery"
        assert display_label(composite) == composite

    def test_capability_expectations(self):
        caps = {spec.name: spec.capabilities() for spec in all_algorithms()}
        assert caps[names.NAIVE_LOCK_COUPLING] == (
            "has_restarts", "supports_closed", "coupling_updates")
        assert caps[names.OPTIMISTIC_DESCENT] == (
            "has_restarts", "supports_closed", "supports_recovery")
        assert caps[names.LINK_TYPE] == (
            "has_link_crossings", "supports_closed", "supports_compaction")
        assert caps[names.LINK_SYMMETRIC] == (
            "has_link_crossings", "supports_compaction")
        assert caps[names.TWO_PHASE_LOCKING] == (
            "has_restarts", "coupling_updates")
        assert caps[names.OPTIMISTIC_LOCK_COUPLING] == (
            "has_restarts", "coupling_updates")
        for flags in caps.values():
            assert all(flag in CAPABILITY_FLAGS for flag in flags)


# ----------------------------------------------------------------------
# Capability-driven configuration gates
# ----------------------------------------------------------------------
class TestConfigGates:

    def test_unknown_algorithm_message_names_the_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SimulationConfig(algorithm="bogus")
        message = str(excinfo.value)
        assert "unknown algorithm 'bogus'" in message
        # Satellite fix: a readable sorted name list, not a tuple repr.
        assert ", ".join(sorted(algorithm_names())) in message
        assert "(" not in message.split("expected one of")[1]

    def test_recovery_gated_on_supports_recovery(self):
        SimulationConfig(algorithm=names.OPTIMISTIC_DESCENT,
                         recovery="leaf-only-recovery")
        with pytest.raises(ConfigurationError, match="recovery"):
            SimulationConfig(algorithm=names.OPTIMISTIC_LOCK_COUPLING,
                             recovery="leaf-only-recovery")

    def test_compaction_gated_on_supports_compaction(self):
        SimulationConfig(algorithm=names.LINK_SYMMETRIC,
                         compaction_interval=50.0)
        with pytest.raises(ConfigurationError, match="compaction"):
            SimulationConfig(algorithm=names.OPTIMISTIC_LOCK_COUPLING,
                             compaction_interval=50.0)


# ----------------------------------------------------------------------
# Registry-driven dispatch in the drivers and validation
# ----------------------------------------------------------------------
def _quick(algorithm: str, **overrides) -> SimulationConfig:
    defaults = dict(algorithm=algorithm, arrival_rate=0.1, n_items=2_000,
                    n_operations=300, warmup_operations=30, seed=5)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDispatch:

    def test_new_variant_runs_open_with_finite_responses(self):
        from repro.simulator.driver import run_simulation
        result = run_simulation(
            _quick(names.OPTIMISTIC_LOCK_COUPLING))
        assert not result.overflowed
        for operation in ("search", "insert", "delete"):
            assert math.isfinite(result.mean_response[operation])
        assert result.mean_response["insert"] > \
            result.mean_response["search"]

    def test_new_variant_runs_closed(self):
        from repro.simulator.closed import run_closed_simulation
        result = run_closed_simulation(
            _quick(names.OPTIMISTIC_LOCK_COUPLING, n_operations=150,
                   warmup_operations=15),
            multiprogramming_level=4, think_time=1.0)
        assert result.throughput > 0
        assert math.isfinite(result.mean_response["search"])

    def test_validation_resolves_registered_analyzer(self):
        from repro.model.validation import resolve_analyzer
        from repro.model.lock_coupling import analyze_lock_coupling
        resolved = resolve_analyzer(None, names.NAIVE_LOCK_COUPLING)
        assert resolved is analyze_lock_coupling
        sentinel = object()
        assert resolve_analyzer(sentinel, names.NAIVE_LOCK_COUPLING) \
            is sentinel

    def test_validation_rejects_simulator_only_specs(self):
        from repro.model.validation import resolve_analyzer
        with pytest.raises(ConfigurationError, match="no registered"):
            resolve_analyzer(None, names.OPTIMISTIC_LOCK_COUPLING)

    def test_deprecated_aliases_track_the_registry(self):
        from repro.simulator import ALGORITHMS
        from repro.simulator.driver import _ALGORITHM_MODULES
        assert tuple(ALGORITHMS) == algorithm_names()
        assert set(_ALGORITHM_MODULES) == set(algorithm_names())
        for name, module in _ALGORITHM_MODULES.items():
            assert module is get_algorithm(name).ops


# ----------------------------------------------------------------------
# CLI and experiment surfacing
# ----------------------------------------------------------------------
class TestSurfacing:

    def test_list_algorithms_subcommand(self, capsys):
        from repro.experiments.runner import main
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(all_algorithms())
        assert any(names.OPTIMISTIC_LOCK_COUPLING in line for line in lines)
        assert "sim-only" in out and "model" in out
        assert "coupling_updates" in out
        # Every spec advertises its vectorization tier (batch-path
        # eligibility plus descent-kernel coverage).
        for line, spec in zip(lines, all_algorithms()):
            expected = {"full": "full", "lock": "lock-only",
                        "none": "scalar"}[spec.vector_tier]
            assert expected in line

    def test_simulate_choices_come_from_registry(self):
        from repro.experiments.runner import _build_parser
        parser = _build_parser()
        args = parser.parse_args(
            ["simulate", "--algorithm", names.OPTIMISTIC_LOCK_COUPLING])
        assert args.algorithm == names.OPTIMISTIC_LOCK_COUPLING

    def test_ext06_registered_and_columned_by_short_keys(self):
        from repro.experiments.registry import EXPERIMENTS
        assert "ext06" in EXPERIMENTS
        assert EXPERIMENTS["ext06"].has_simulation

    def test_ext06_runs_at_tiny_scale(self):
        from repro.experiments.extensions import ext06
        table = ext06(scale=0.0)
        assert table.columns == ["arrival_rate", "naive_insert",
                                 "optimistic_insert", "link_insert",
                                 "olc_insert"]
        assert len(table.rows) == 4
        finite = [value for row in table.rows for value in row[1:]
                  if math.isfinite(value)]
        assert finite  # the sweep produced real response times
