"""Unit tests for the simulator configuration and service-time sampler."""

import random

import pytest

from repro.btree import MERGE_AT_HALF, build_tree
from repro.errors import ConfigurationError
from repro.model.params import CostModel
from repro.simulator.config import SimulationConfig
from repro.simulator.costs import ServiceTimeSampler


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.order == 13
        assert config.n_items == 40_000
        assert config.n_operations == 10_000
        assert config.costs.disk_cost == 5.0
        assert config.mix.q_search == 0.3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="three-phase-locking")

    def test_two_phase_locking_is_supported(self):
        config = SimulationConfig(algorithm="two-phase-locking",
                                  arrival_rate=0.01)
        assert config.algorithm == "two-phase-locking"

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(arrival_rate=0.0)

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(recovery="three-phase")

    def test_recovery_requires_optimistic(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="link-type",
                             recovery="leaf-only-recovery")
        SimulationConfig(algorithm="optimistic-descent",
                         recovery="leaf-only-recovery")

    def test_merge_at_half_rejected_concurrently(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(merge_policy=MERGE_AT_HALF)

    def test_with_rate_and_seed(self):
        config = SimulationConfig()
        assert config.with_rate(0.7).arrival_rate == 0.7
        assert config.with_seed(9).seed == 9
        assert config.with_rate(0.7).order == config.order

    def test_scaled(self):
        config = SimulationConfig(n_operations=10_000,
                                  warmup_operations=500)
        small = config.scaled(0.1)
        assert small.n_operations == 1_000
        assert small.warmup_operations == 50
        tiny = config.scaled(0.0001)
        assert tiny.n_operations == 100  # floor

    def test_population_floor(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_population=0)


class TestServiceTimeSampler:
    def _sampler(self, disk_cost=5.0, in_memory=2, height_keys=5_000):
        rng = random.Random(1)
        tree = build_tree(height_keys, order=13, seed=1)
        costs = CostModel(disk_cost=disk_cost, in_memory_levels=in_memory)
        return ServiceTimeSampler(costs, tree, rng), tree, costs

    def _mean(self, draw, n=20_000):
        return sum(draw() for _ in range(n)) / n

    def test_search_means_follow_dilation(self):
        sampler, tree, costs = self._sampler()
        h = tree.height
        mean_root = self._mean(lambda: sampler.search(h))
        mean_leaf = self._mean(lambda: sampler.search(1))
        assert mean_root == pytest.approx(costs.se(h, h), rel=0.05)
        assert mean_leaf == pytest.approx(costs.se(1, h), rel=0.05)
        assert mean_leaf > mean_root

    def test_modify_and_split_means(self):
        sampler, tree, costs = self._sampler()
        h = tree.height
        assert self._mean(sampler.modify) == pytest.approx(
            costs.modify(h), rel=0.05)
        assert self._mean(lambda: sampler.split(1)) == pytest.approx(
            costs.sp(1, h), rel=0.05)
        assert self._mean(lambda: sampler.merge(1)) == pytest.approx(
            costs.mg(1, h), rel=0.05)

    def test_half_split_plus_post_approximates_full_split(self):
        """Link-type splits charge the node-local half under the node
        lock and the parent post under the parent lock; together they
        stay close to the lock-coupling Sp(i)."""
        sampler, tree, costs = self._sampler()
        h = tree.height
        combined = self._mean(
            lambda: sampler.half_split(1) + sampler.parent_post(2))
        assert combined == pytest.approx(costs.sp(1, h), rel=0.1)

    def test_transaction_remainder_mean(self):
        sampler, _tree, _costs = self._sampler()
        mean = self._mean(lambda: sampler.transaction_remainder(100.0),
                          n=30_000)
        assert mean == pytest.approx(100.0, rel=0.05)

    def test_zero_mean_is_zero(self):
        sampler, _tree, _costs = self._sampler()
        assert sampler.transaction_remainder(0.0) == 0.0

    def test_samples_are_exponential(self):
        """SCV of the samples ~ 1 (the paper's exponential services)."""
        sampler, _tree, _costs = self._sampler()
        xs = [sampler.search(1) for _ in range(30_000)]
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert var / mean**2 == pytest.approx(1.0, rel=0.1)
