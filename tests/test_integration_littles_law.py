"""Little's law as an internal consistency check on the simulator.

At the root lock, every operation arrives once (rate λ) and waits a
mean W before its grant, so the time-average number of requests queued
there must be L = λ·W.  The simulator measures L (sampled queue length)
and W (per-level lock waits) independently, so agreement is a strong
check that neither metric is mis-accounted.
"""

import math

import pytest

from repro.simulator import SimulationConfig, run_simulation


def _run(rate: float, seed: int = 44):
    return run_simulation(SimulationConfig(
        algorithm="naive-lock-coupling", arrival_rate=rate,
        n_items=8_000, n_operations=2_500, warmup_operations=250,
        seed=seed))


@pytest.mark.parametrize("rate", [0.15, 0.3, 0.45])
def test_littles_law_at_the_root(rate):
    result = _run(rate)
    assert not result.overflowed
    root_level = result.final_height
    read_wait, write_wait = result.mean_lock_waits[root_level]
    # Arrival mix at the root: q_s readers, q_u writers (optimistic /
    # redo classes don't exist under naive lock-coupling).
    mean_wait = 0.3 * read_wait + 0.7 * write_wait
    expected_l = rate * mean_wait
    measured_l = result.root_mean_queue_length
    assert measured_l == pytest.approx(expected_l, rel=0.30, abs=0.02), (
        f"L = {measured_l:.3f} vs lambda*W = {expected_l:.3f} at "
        f"rate {rate}")


def test_queue_length_grows_with_load():
    low = _run(0.1).root_mean_queue_length
    high = _run(0.5).root_mean_queue_length
    assert high > 3.0 * low


def test_queue_length_defined_and_nonnegative():
    result = _run(0.2)
    assert not math.isnan(result.root_mean_queue_length)
    assert result.root_mean_queue_length >= 0.0
