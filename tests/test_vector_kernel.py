"""The vectorized batch-replication kernel against its scalar oracle.

Every test here enforces the contract of :mod:`repro.des.vector`: the
numpy struct-of-arrays kernel must reproduce the scalar
``Simulator`` + ``RWLock`` execution of the same lock-contention
workload *exactly* — end times, event counts and grant counts
bit-for-bit, time-weighted accumulators to float tolerance — across
workload shapes chosen to exercise every branch of the masked step
loop (grant waves, writer handoff, bulk arrival absorption, the
all-busy fast path, retirement).
"""

import math

import numpy as np
import pytest

from repro.des.vector import (
    LockContentionSpec,
    VectorLockKernel,
    assert_equivalent,
    run_scalar_reference,
    run_vectorized,
)


def _check(spec: LockContentionSpec, n_lanes: int) -> None:
    durations = spec.durations(n_lanes)
    vector = run_vectorized(spec, n_lanes, durations=durations)
    scalar = [run_scalar_reference(spec, lane, durations=durations)
              for lane in range(n_lanes)]
    assert_equivalent(vector, scalar)


class TestScalarEquivalence:
    """The kernel's core promise, over branch-covering workloads."""

    def test_default_contention_mix(self):
        _check(LockContentionSpec(n_procs=32, iterations=30,
                                  writer_every=4, seed=11), n_lanes=4)

    def test_single_process(self):
        _check(LockContentionSpec(n_procs=1, iterations=25,
                                  writer_every=1, seed=3), n_lanes=5)

    def test_all_writers_serialize(self):
        _check(LockContentionSpec(n_procs=8, iterations=25,
                                  writer_every=1, seed=7), n_lanes=5)

    def test_all_readers_never_queue_behind_each_other(self):
        _check(LockContentionSpec(n_procs=8, iterations=25,
                                  writer_every=0, seed=9), n_lanes=5)

    def test_heavy_writer_share(self):
        _check(LockContentionSpec(n_procs=12, iterations=30,
                                  writer_every=2, seed=13), n_lanes=5)

    def test_low_contention_exercises_open_lock_arrivals(self):
        # Long think times keep the lock mostly open, so grants happen
        # at arrival (the slow path), not in post-release waves.
        _check(LockContentionSpec(n_procs=6, iterations=25,
                                  writer_every=3, seed=17,
                                  think_low=0.5, think_high=2.0),
               n_lanes=5)

    def test_extreme_contention_exercises_bulk_absorption(self):
        _check(LockContentionSpec(n_procs=48, iterations=15,
                                  writer_every=5, seed=19,
                                  think_low=1e-5, think_high=5e-5),
               n_lanes=3)

    def test_odd_sizes(self):
        _check(LockContentionSpec(n_procs=7, iterations=33,
                                  writer_every=3, seed=23), n_lanes=3)


class TestBatchInvariance:
    """Lane ``k`` must not depend on how many lanes ride along."""

    def test_lane_prefix_property(self):
        spec = LockContentionSpec(n_procs=16, iterations=25,
                                  writer_every=4, seed=31)
        narrow = run_vectorized(spec, 4)
        wide = run_vectorized(spec, 12)
        for lane in range(4):
            assert narrow.lane(lane) == wide.lane(lane)

    def test_lanes_are_distinct_replications(self):
        spec = LockContentionSpec(n_procs=16, iterations=25,
                                  writer_every=4, seed=31)
        stats = run_vectorized(spec, 4)
        assert len(set(stats.end_time.tolist())) == 4

    def test_iterations_amortize_dispatches(self):
        # The whole point: far fewer interpreted dispatches than events.
        spec = LockContentionSpec(n_procs=32, iterations=50,
                                  writer_every=4)
        stats = run_vectorized(spec, 32)
        assert stats.iterations * 4 < stats.total_events


class TestAccounting:
    """Structural tallies and stats plumbing."""

    def test_grant_counts_are_one_per_cycle(self):
        spec = LockContentionSpec(n_procs=12, iterations=20,
                                  writer_every=3, seed=5)
        stats = run_vectorized(spec, 3)
        writers = int(spec.writer_mask().sum())
        assert np.all(stats.grants_write == writers * spec.iterations)
        assert np.all(stats.grants_read
                      == (spec.n_procs - writers) * spec.iterations)

    def test_accumulators_are_positive_under_contention(self):
        spec = LockContentionSpec(n_procs=16, iterations=20,
                                  writer_every=4, seed=5)
        stats = run_vectorized(spec, 2)
        for lane in range(2):
            got = stats.lane(lane)
            assert 0 < got.time_writer_held <= got.time_writer_present
            assert got.time_held_any <= got.end_time
            assert got.time_writer_present <= got.end_time

    def test_lane_stats_round_trip_python_scalars(self):
        stats = run_vectorized(
            LockContentionSpec(n_procs=4, iterations=5, seed=1), 2)
        lane = stats.lane(0)
        assert isinstance(lane.events, int)
        assert isinstance(lane.end_time, float)
        assert stats.total_events == int(stats.events.sum())


class TestValidation:
    """Constructor contracts and divergence detection."""

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one lane"):
            VectorLockKernel(LockContentionSpec(), 0)

    def test_rejects_degenerate_workload(self):
        with pytest.raises(ValueError, match="process"):
            VectorLockKernel(LockContentionSpec(n_procs=0), 1)

    def test_rejects_mismatched_duration_tables(self):
        spec = LockContentionSpec(n_procs=4, iterations=5)
        bad = (np.ones((1, 4, 5)), np.ones((1, 4, 4)))
        with pytest.raises(ValueError, match="duration tables"):
            VectorLockKernel(spec, 1, durations=bad)

    def test_assert_equivalent_flags_divergence(self):
        spec = LockContentionSpec(n_procs=4, iterations=5, seed=2)
        stats = run_vectorized(spec, 1)
        oracle = run_scalar_reference(spec, 0)
        assert_equivalent(stats, [oracle])  # sanity: they do agree
        tampered = oracle.__class__(
            **{**oracle.__dict__, "events": oracle.events + 1})
        with pytest.raises(AssertionError, match="diverged"):
            assert_equivalent(stats, [tampered])

    def test_assert_equivalent_checks_accumulators(self):
        spec = LockContentionSpec(n_procs=4, iterations=5, seed=2)
        stats = run_vectorized(spec, 1)
        oracle = run_scalar_reference(spec, 0)
        tampered = oracle.__class__(
            **{**oracle.__dict__,
               "time_held_any": oracle.time_held_any * (1 + 1e-6)})
        with pytest.raises(AssertionError, match="time_held_any"):
            assert_equivalent(stats, [tampered])

    def test_scalar_reference_is_deterministic(self):
        spec = LockContentionSpec(n_procs=6, iterations=10, seed=4)
        one = run_scalar_reference(spec, 2)
        two = run_scalar_reference(spec, 2)
        assert one == two
        assert math.isfinite(one.end_time)
