"""Driver integration of the workload subsystem.

The central promises:

* the default spec (``workload=None`` or ``WorkloadSpec()``) produces
  **byte-identical** results to the pre-workload driver (the golden
  fingerprints in ``tests/test_des_kernel_hotpath.py`` enforce the
  absolute baseline; here we enforce None == explicit default);
* non-default workloads are deterministic under a fixed seed and flow
  through the open driver, the closed driver, the lane-multiplexed
  batch path and telemetry;
* transaction envelopes complete without deadlock and report their
  lock-hold time.
"""

import dataclasses
import hashlib
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.obs import TelemetryOptions, TelemetryRecorder
from repro.simulator.batch import run_replication_batch
from repro.simulator.closed import run_closed_simulation
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import run_simulation
from repro.workload import (
    HotspotKeysSpec,
    MMPPArrivals,
    MigratingHotspotKeysSpec,
    ScheduleArrivals,
    SpikeArrivals,
    TransactionSpec,
    WorkloadSpec,
    ZipfKeysSpec,
)


def fingerprint(result) -> str:
    return hashlib.sha256(
        repr(dataclasses.asdict(result)).encode()).hexdigest()


def _config(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="link-type", arrival_rate=0.15,
                    n_items=1_500, n_operations=150,
                    warmup_operations=20, seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


_TRACES = {
    "mmpp": WorkloadSpec(arrival=MMPPArrivals()),
    "schedule": WorkloadSpec(arrival=ScheduleArrivals()),
    "spike": WorkloadSpec(arrival=SpikeArrivals(start=50.0,
                                                duration=100.0)),
    "zipf": WorkloadSpec(keys=ZipfKeysSpec()),
    "migrating": WorkloadSpec(keys=MigratingHotspotKeysSpec()),
    "txn": WorkloadSpec(transaction=TransactionSpec(size=3)),
}


# ----------------------------------------------------------------------
# Byte identity of the default path
# ----------------------------------------------------------------------
class TestDefaultPathIdentity:

    def test_explicit_default_spec_matches_none(self):
        assert fingerprint(run_simulation(_config())) == \
            fingerprint(run_simulation(_config(workload=WorkloadSpec())))

    def test_explicit_default_spec_matches_none_closed(self):
        plain = run_closed_simulation(_config(), 6, think_time=1.0)
        spec = run_closed_simulation(_config(workload=WorkloadSpec()),
                                     6, think_time=1.0)
        assert fingerprint(plain) == fingerprint(spec)

    def test_hotspot_spec_matches_legacy_key_distribution(self):
        legacy = _config(key_distribution="hotspot", hot_fraction=0.2,
                         hot_probability=0.8)
        spec = _config(workload=WorkloadSpec(keys=HotspotKeysSpec(
            hot_fraction=0.2, hot_probability=0.8)))
        assert fingerprint(run_simulation(legacy)) == \
            fingerprint(run_simulation(spec))
        assert fingerprint(run_closed_simulation(legacy, 6)) == \
            fingerprint(run_closed_simulation(spec, 6))


# ----------------------------------------------------------------------
# Non-default workloads through the open driver
# ----------------------------------------------------------------------
class TestNonDefaultWorkloads:

    @pytest.mark.parametrize("name", sorted(_TRACES))
    def test_deterministic_under_fixed_seed(self, name):
        config = _config(workload=_TRACES[name])
        assert fingerprint(run_simulation(config)) == \
            fingerprint(run_simulation(config))

    @pytest.mark.parametrize("name", sorted(_TRACES))
    def test_results_diverge_from_default_stream(self, name):
        config = _config(workload=_TRACES[name])
        assert fingerprint(run_simulation(config)) != \
            fingerprint(run_simulation(_config()))

    def test_transactions_complete_without_deadlock(self):
        config = _config(workload=_TRACES["txn"], n_operations=120)
        result = run_simulation(config)
        assert not result.overflowed
        assert result.measured_operations >= 120

    def test_closed_driver_rejects_transaction_envelopes(self):
        with pytest.raises(ConfigurationError, match="closed"):
            run_closed_simulation(_config(workload=_TRACES["txn"]), 4)

    def test_closed_driver_runs_non_default_keys(self):
        config = _config(workload=_TRACES["zipf"])
        assert fingerprint(run_closed_simulation(config, 4)) == \
            fingerprint(run_closed_simulation(config, 4))


# ----------------------------------------------------------------------
# Batch path equivalence
# ----------------------------------------------------------------------
class TestBatchEquivalence:

    @pytest.mark.parametrize("name",
                             ["mmpp", "zipf", "migrating", "txn"])
    def test_batch_lanes_match_scalar_runs(self, name):
        configs = [_config(workload=_TRACES[name], seed=seed)
                   for seed in (1, 2, 3)]
        batched = run_replication_batch(configs)
        for config, result in zip(configs, batched):
            assert fingerprint(result) == \
                fingerprint(run_simulation(config))


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestWorkloadTelemetry:

    def _record(self, config):
        recorder = TelemetryRecorder(TelemetryOptions())
        run_simulation(config, telemetry=recorder)
        return recorder.telemetry

    def test_workload_counters_exported(self):
        telemetry = self._record(_config())
        counters = telemetry.counters
        assert counters["workload.arrivals"] > 0
        assert counters["workload.keys"] > 0
        assert counters["workload.interarrival.count"] == \
            counters["workload.arrivals"]
        assert counters["workload.interarrival.total"] > 0.0
        # Uniform keys have no hot set.
        assert counters.get("workload.keys_hot", 0) == 0

    def test_hot_key_share_counted_for_skewed_workloads(self):
        telemetry = self._record(
            _config(workload=WorkloadSpec(keys=HotspotKeysSpec())))
        counters = telemetry.counters
        assert 0 < counters["workload.keys_hot"] < \
            counters["workload.keys"]
        share = counters["workload.keys_hot"] / counters["workload.keys"]
        assert share == pytest.approx(0.8, abs=0.1)

    def test_transaction_hold_times_recorded(self):
        telemetry = self._record(_config(workload=_TRACES["txn"],
                                         n_operations=100))
        counters = telemetry.counters
        assert counters["workload.txn_hold.count"] > 0
        assert counters["workload.txn_hold.total"] > 0.0


# ----------------------------------------------------------------------
# Deprecation shim
# ----------------------------------------------------------------------
class TestWorkloadsShim:

    def test_legacy_names_forward_with_deprecation_warning(self):
        import repro.workloads as legacy
        import repro.workload as current
        with pytest.warns(DeprecationWarning, match="repro.workload"):
            assert legacy.UniformKeys is current.UniformKeys
        with pytest.warns(DeprecationWarning):
            assert legacy.PAPER_MIX is current.PAPER_MIX

    def test_unknown_legacy_attribute_raises(self):
        import repro.workloads as legacy
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(AttributeError):
                legacy.NoSuchThing
