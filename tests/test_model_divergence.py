"""Solver divergence guards, per registered algorithm analyzer.

A parameter point past saturation must surface as a structured outcome
— an unstable prediction with infinite (never NaN) responses, or a
structured :class:`~repro.errors.ConvergenceError` /
:class:`~repro.errors.UnstableQueueError` — and a numerically poisoned
fixed point must raise :class:`~repro.errors.ConvergenceError` instead
of propagating NaN into result tables.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms import all_algorithms
from repro.errors import ConvergenceError, UnstableQueueError
from repro.model.params import paper_default_config
from repro.model.rwqueue import RWQueueInput, solve_rw_queue
from repro.resilience.faults import nan_faults

#: Far past every algorithm's saturation knee at the paper's
#: configuration (rates there are O(0.1) per root-search time).
_PAST_SATURATION_RATE = 50.0

_MODELED = [spec for spec in all_algorithms() if spec.has_model]


@pytest.fixture(scope="module")
def config():
    return paper_default_config()


@pytest.mark.parametrize("spec", _MODELED, ids=lambda s: s.name)
class TestPastSaturationPerAlgorithm:

    def test_no_nan_propagation_past_saturation(self, spec, config):
        prediction = spec.analyze(config, _PAST_SATURATION_RATE)
        for operation, value in prediction.response_times.items():
            assert not math.isnan(value), \
                f"{spec.name}/{operation} produced NaN past saturation"
        if not prediction.stable:
            assert all(math.isinf(v)
                       for v in prediction.response_times.values())

    def test_poisoned_fixed_point_raises_convergence_error(
            self, spec, config):
        # Every evaluation NaN: the damped fallback cannot converge and
        # must fail with the structured error, not emit NaN numbers.
        with nan_faults(-1):
            with pytest.raises((ConvergenceError, UnstableQueueError)) \
                    as excinfo:
                spec.analyze(config, _PAST_SATURATION_RATE)
        if isinstance(excinfo.value, ConvergenceError):
            assert excinfo.value.solver == "rw-queue"
            assert excinfo.value.iterations is not None

    def test_transient_poison_recovers_to_clean_result(self, spec, config):
        # At a comfortably stable rate, one poisoned evaluation diverts
        # to the damped fallback, which must land on the same root.
        rate = 0.05
        clean = spec.analyze(config, rate)
        with nan_faults(1):
            recovered = spec.analyze(config, rate)
        assert recovered.stable == clean.stable
        for operation, value in clean.response_times.items():
            assert recovered.response_times[operation] == \
                pytest.approx(value, rel=1e-6)


class TestQueueSolverGuards:

    def test_structured_convergence_error_fields(self):
        q = RWQueueInput(lambda_r=0.5, lambda_w=0.1, mu_r=2.0, mu_w=1.0)
        with nan_faults(-1):
            with pytest.raises(ConvergenceError) as excinfo:
                solve_rw_queue(q, level=3)
        error = excinfo.value
        assert error.solver == "rw-queue"
        assert error.iterations is not None
        assert error.context["level"] == 3
        assert error.context["lambda_w"] == q.lambda_w

    def test_saturation_still_raises_unstable_not_convergence(self):
        q = RWQueueInput(lambda_r=0.5, lambda_w=2.0, mu_r=2.0, mu_w=1.0)
        with pytest.raises(UnstableQueueError):
            solve_rw_queue(q)

    def test_fallback_matches_brentq_root(self):
        q = RWQueueInput(lambda_r=0.8, lambda_w=0.2, mu_r=3.0, mu_w=1.5)
        clean = solve_rw_queue(q)
        with nan_faults(1):
            fallback = solve_rw_queue(q)
        assert fallback.rho_w == pytest.approx(clean.rho_w, abs=1e-9)
        assert fallback.aggregate_service_time == \
            pytest.approx(clean.aggregate_service_time, rel=1e-9)

    def test_closed_system_prediction_is_finite(self):
        from repro.model.closed import closed_system_prediction

        spec = _MODELED[0]
        config = paper_default_config()
        # Sanity: the real solver works and reports a finite point.
        prediction = closed_system_prediction(spec.analyze, config, 5)
        assert math.isfinite(prediction.throughput)
        assert math.isfinite(prediction.response_time)
