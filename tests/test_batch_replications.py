"""Fixed-seed equivalence of the lane-multiplexed batch path.

The batch driver (:mod:`repro.simulator.batch`) and its executor
wiring (``run_batch(batch=N)``) promise bit-identical per-replication
results and unchanged cache keys.  These tests enforce that promise
for every registered algorithm — any spec that sets
``vector_capable`` is covered automatically — plus the fallback
contract for tasks the batch driver must not absorb.
"""

import dataclasses

import pytest

import repro.algorithms  # noqa: F401 - populate the registry
from repro.algorithms import all_algorithms, get_algorithm
from repro.algorithms.spec import _REGISTRY
from repro.errors import ConfigurationError
from repro.parallel import SimTask, execution, replication_tasks, task_key
from repro.parallel.cache import ResultCache
from repro.parallel.executor import KIND_CLOSED, _batch_eligible, _plan_units
from repro.resilience.budget import TaskBudget
from repro.simulator.batch import batch_capable, run_replication_batch
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import run_replications, run_simulation

#: Small but non-trivial workload: long enough to overlap operations
#: and cross the warm-up, short enough to keep the suite quick.
N_OPERATIONS = 400
N_SEEDS = 5
BATCH = 16


def _config(algorithm: str, seed: int = 7) -> SimulationConfig:
    return SimulationConfig(algorithm=algorithm,
                            n_operations=N_OPERATIONS, seed=seed)


def _synthetic_calibration():
    """A calibration whose cost model makes every width look great, so
    ``choose_width`` deterministically picks the widest candidate."""
    from repro.des import autotune

    entries = {
        protocol: autotune.ProtocolCalibration(
            protocol=protocol, overhead_per_dispatch=1e-6,
            cost_per_lane_dispatch=1e-9, dispatches=100.0,
            events_per_lane=1000.0, scalar_events_per_sec=1000.0)
        for protocol in ("coupling", "optimistic")}
    return autotune.BatchCalibration(
        entries=entries, probe_widths=(32, 256),
        fingerprint=autotune._fingerprint(), generated_at="test")


@pytest.mark.parametrize(
    "algorithm", [spec.name for spec in all_algorithms()])
class TestFixedSeedEquivalence:

    def test_batched_replications_match_scalar(self, algorithm):
        config = _config(algorithm)
        scalar = run_replications(config, n_seeds=N_SEEDS)
        batched = run_replications(config, n_seeds=N_SEEDS, batch=BATCH)
        assert batched == scalar

    def test_batch_driver_matches_run_simulation(self, algorithm):
        configs = [_config(algorithm).with_seed(7 + i) for i in range(3)]
        assert run_replication_batch(configs) == \
            [run_simulation(c) for c in configs]

    def test_auto_batch_matches_scalar(self, algorithm, tmp_path,
                                       monkeypatch):
        # batch="auto" resolves a width from the persisted calibration
        # and must stay bit-identical to the scalar path whatever width
        # it lands on.  A synthetic calibration (favoring the widest
        # candidate) is pre-seeded so the test never pays a probe run.
        from repro.des import autotune

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        autotune.save_calibration(_synthetic_calibration(),
                                  autotune.calibration_path(None))
        config = _config(algorithm)
        scalar = run_replications(config, n_seeds=N_SEEDS)
        auto = run_replications(config, n_seeds=N_SEEDS, batch="auto")
        assert auto == scalar


def test_every_registered_algorithm_is_vector_capable():
    # The ISSUE's contract: any spec opting into the batch path must be
    # in the fixed-seed equivalence suite above (it is, via the
    # all_algorithms() parametrization); this guards the converse —
    # a capability silently dropped would dodge the batch path without
    # failing anything, so pin today's expectation explicitly.
    for spec in all_algorithms():
        assert spec.vector_capable, spec.name
        assert spec.vector_tier in ("lock", "full"), spec.name
        assert batch_capable(_config(spec.name))
    # The two paper algorithms whose descents the vector B-tree kernel
    # models are tiered "full"; dropping the tier would silently shrink
    # the kernel's advertised coverage.
    assert get_algorithm("naive-lock-coupling").vector_tier == "full"
    assert get_algorithm("optimistic-descent").vector_tier == "full"


def test_cache_keys_ignore_batch(tmp_path):
    # A batched sweep must populate the same cache entries the scalar
    # sweep reads — identical task keys, one entry per seed.
    config = _config("link-type")
    cache = ResultCache(tmp_path / "cache")
    with execution(cache=cache, batch=BATCH):
        batched = run_replications(config, n_seeds=N_SEEDS)
    assert cache.stats.misses == N_SEEDS
    with execution(cache=cache):  # scalar read of the same points
        scalar = run_replications(config, n_seeds=N_SEEDS)
    assert cache.stats.hits == N_SEEDS
    # repr, not ==: the cache pickle round-trip re-creates any NaN
    # fields (unmeasured lock levels), and nan != nan.
    assert repr(scalar) == repr(batched)
    keys = {task_key(task)
            for task in replication_tasks(config, N_SEEDS)}
    assert len(keys) == N_SEEDS


class TestFallbackContract:

    def test_budget_tasks_stay_scalar(self):
        task = SimTask(_config("link-type"),
                       budget=TaskBudget(max_events=10))
        assert not _batch_eligible(task)

    def test_closed_tasks_stay_scalar(self):
        task = SimTask(_config("link-type"), kind=KIND_CLOSED, mpl=4)
        assert not _batch_eligible(task)

    def test_non_capable_algorithm_stays_scalar(self, monkeypatch):
        spec = get_algorithm("link-type")
        monkeypatch.setitem(
            _REGISTRY, "link-type",
            dataclasses.replace(spec, vector_tier="none"))
        task = SimTask(_config("link-type"))
        assert not _batch_eligible(task)
        with pytest.raises(ConfigurationError):
            run_replication_batch([_config("link-type")])
        # ...but run_replications still works: the planner routes the
        # now-ineligible tasks through the scalar path.
        results = run_replications(_config("link-type"), n_seeds=2,
                                   batch=BATCH)
        assert len(results) == 2

    def test_unit_planning_interleaves_singletons(self):
        eligible = SimTask(_config("link-type"))
        scalar_only = SimTask(_config("link-type"),
                              budget=TaskBudget(max_events=10))
        tasks = [eligible, eligible, scalar_only, eligible, eligible,
                 eligible]
        units = _plan_units(tasks, range(len(tasks)), width=2)
        assert units == [[0, 1], [2], [3, 4], [5]]
        assert _plan_units(tasks, range(len(tasks)), width=1) == \
            [[i] for i in range(len(tasks))]


def test_cli_accepts_batch_flag():
    from repro.experiments.runner import _build_parser
    parser = _build_parser()
    args = parser.parse_args(["run", "fig03", "--batch", "8"])
    assert args.batch == 8
    args = parser.parse_args(["simulate", "--batch", "4"])
    assert args.batch == 4
    for command in (["run", "fig03"], ["figures", "fig03"], ["simulate"]):
        args = parser.parse_args(command + ["--batch", "auto"])
        assert args.batch == "auto"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig03", "--batch", "-1"])
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fig03", "--batch", "wide"])
