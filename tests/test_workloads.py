"""Unit tests for the workloads subpackage."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    HotspotKeys,
    INSERT_ONLY,
    PAPER_MIX,
    READ_HEAVY,
    UPDATE_HEAVY,
    UniformKeys,
    draw_operation,
)


class TestMixes:
    @pytest.mark.parametrize("mix", [PAPER_MIX, READ_HEAVY, UPDATE_HEAVY,
                                     INSERT_ONLY])
    def test_named_mixes_are_valid(self, mix):
        assert mix.q_search + mix.q_insert + mix.q_delete \
            == pytest.approx(1.0)

    def test_draw_frequencies_match_mix(self, rng):
        counts = Counter(draw_operation(PAPER_MIX, rng)
                         for _ in range(30_000))
        assert counts["search"] / 30_000 == pytest.approx(0.3, abs=0.02)
        assert counts["insert"] / 30_000 == pytest.approx(0.5, abs=0.02)
        assert counts["delete"] / 30_000 == pytest.approx(0.2, abs=0.02)

    def test_insert_only_never_draws_others(self, rng):
        draws = {draw_operation(INSERT_ONLY, rng) for _ in range(1_000)}
        assert draws == {"insert"}


class TestUniformKeys:
    def test_range(self, rng):
        picker = UniformKeys(100, rng)
        keys = [picker.pick() for _ in range(2_000)]
        assert all(0 <= k < 100 for k in keys)
        assert len(set(keys)) > 80  # covers most of the space

    def test_empty_space_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            UniformKeys(0, rng)


class TestHotspotKeys:
    def test_hot_fraction_receives_hot_probability(self, rng):
        picker = HotspotKeys(1_000, rng, hot_fraction=0.2,
                             hot_probability=0.8)
        hits = sum(1 for _ in range(20_000) if picker.pick() < 200)
        assert hits / 20_000 == pytest.approx(0.8, abs=0.02)

    def test_cold_keys_land_outside(self, rng):
        picker = HotspotKeys(1_000, rng, hot_fraction=0.1,
                             hot_probability=0.0)
        assert all(picker.pick() >= 100 for _ in range(1_000))

    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigurationError):
            HotspotKeys(100, rng, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotspotKeys(100, rng, hot_probability=1.5)


class TestDeprecationShim:
    def test_warning_blames_the_callers_line(self):
        """The shim's DeprecationWarning must point at the user's
        import/attribute access, not at frozen importlib frames."""
        import warnings

        import repro.workloads as shim
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _ = shim.PAPER_MIX
        (entry,) = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert entry.filename == __file__

    def test_from_import_blames_this_file_too(self):
        import importlib
        import warnings

        import repro.workloads as shim
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Re-trigger module __getattr__ through importlib's
            # from-list machinery, the path a fixed stacklevel=2 blamed
            # on <frozen importlib._bootstrap>.
            importlib._bootstrap._handle_fromlist(
                shim, ("UniformKeys",), __import__)
        entries = [w for w in caught
                   if issubclass(w.category, DeprecationWarning)]
        assert entries
        assert all("importlib" not in e.filename for e in entries)

    def test_unknown_attribute_raises_without_warning(self):
        import warnings

        import repro.workloads as shim
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError):
                _ = shim.NoSuchName
        assert not caught
