"""Integration-grade unit tests for the simulation driver."""

import math

import pytest

from repro.simulator import SimulationConfig, run_replications, run_simulation
from repro.simulator.driver import pooled_response_means


def _quick(algorithm="naive-lock-coupling", **overrides):
    defaults = dict(algorithm=algorithm, arrival_rate=0.1, n_items=3_000,
                    n_operations=400, warmup_operations=50, seed=5)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestBasicRuns:
    @pytest.mark.parametrize("algorithm", ["naive-lock-coupling",
                                           "optimistic-descent",
                                           "link-type"])
    def test_run_completes_and_measures(self, algorithm):
        result = run_simulation(_quick(algorithm))
        assert not result.overflowed
        assert result.measured_operations >= 400
        assert result.elapsed_time > 0
        for op in ("search", "insert", "delete"):
            assert result.mean_response[op] > 0
        assert result.throughput == pytest.approx(0.1, rel=0.4)

    def test_deterministic_per_seed(self):
        a = run_simulation(_quick(seed=3))
        b = run_simulation(_quick(seed=3))
        assert a.mean_response == b.mean_response
        assert a.splits == b.splits
        assert a.elapsed_time == b.elapsed_time

    def test_seeds_differ(self):
        a = run_simulation(_quick(seed=3))
        b = run_simulation(_quick(seed=4))
        assert a.mean_response != b.mean_response

    def test_tree_grows_during_run(self):
        """Inserts outnumber deletes, so the tree ends bigger."""
        result = run_simulation(_quick(n_operations=1_500))
        assert result.final_tree_size > 3_000

    def test_lock_waits_collected_per_level(self):
        result = run_simulation(_quick(arrival_rate=0.3))
        assert set(result.mean_lock_waits) >= {1, 2, 3}
        for level, (read_wait, write_wait) in result.mean_lock_waits.items():
            if not math.isnan(read_wait):
                assert read_wait >= 0.0
            if not math.isnan(write_wait):
                assert write_wait >= 0.0

    def test_root_utilization_sampled(self):
        result = run_simulation(_quick(arrival_rate=0.3))
        assert 0.0 <= result.root_writer_utilization <= 1.0

    def test_trace_capture(self):
        from repro.des import TraceLog
        trace = TraceLog(capacity=50_000)
        result = run_simulation(_quick(n_operations=150), trace=trace)
        assert result.measured_operations >= 150
        kinds = {event.kind for event in trace}
        assert {"spawn", "finish", "request", "grant", "hold",
                "release"} <= kinds

    def test_trace_does_not_perturb_results(self):
        from repro.des import TraceLog
        plain = run_simulation(_quick(seed=12))
        traced = run_simulation(_quick(seed=12), trace=TraceLog())
        assert plain.mean_response == traced.mean_response


class TestSaturation:
    def test_overflow_flags_saturation(self):
        """An absurd arrival rate exhausts the operation allocation —
        the paper's simulator 'crash'."""
        config = _quick(arrival_rate=50.0, max_population=60,
                        n_operations=5_000)
        result = run_simulation(config)
        assert result.overflowed
        assert result.peak_population > 60
        assert result.response("search") > 0 or \
            result.response("search") == math.inf

    def test_sustainable_load_does_not_overflow(self):
        result = run_simulation(_quick(arrival_rate=0.05))
        assert not result.overflowed
        assert result.peak_population < 50


class TestWarmup:
    def test_zero_warmup(self):
        result = run_simulation(_quick(warmup_operations=0,
                                       n_operations=200))
        assert result.measured_operations >= 200

    def test_measured_count_excludes_warmup(self):
        result = run_simulation(_quick(warmup_operations=100,
                                       n_operations=300))
        # Exactly the requested number measured (plus simultaneous
        # completions at the stop event).
        assert 300 <= result.measured_operations <= 320


class TestAlgorithmSpecificCounters:
    def test_naive_counts_splits(self):
        result = run_simulation(_quick(n_operations=1_500))
        assert result.splits > 0
        assert result.redo_descents == 0
        assert result.link_crossings == 0

    def test_optimistic_counts_redos(self):
        result = run_simulation(_quick("optimistic-descent",
                                       n_operations=1_500))
        assert result.redo_descents > 0

    def test_link_may_cross_links(self):
        result = run_simulation(_quick("link-type", arrival_rate=2.0,
                                       n_operations=1_500))
        # Crossings are rare; mostly we assert the counter exists and the
        # run is healthy at a rate lock-coupling could not sustain.
        assert result.link_crossings >= 0
        assert not result.overflowed


class TestReplications:
    def test_run_replications_uses_distinct_seeds(self):
        results = run_replications(_quick(), n_seeds=3)
        assert len(results) == 3
        assert len({r.seed for r in results}) == 3

    def test_progress_callback(self):
        seen = []
        run_replications(_quick(n_operations=150), n_seeds=2,
                         progress=seen.append)
        assert len(seen) == 2

    def test_pooled_means(self):
        results = run_replications(_quick(), n_seeds=2)
        pooled = pooled_response_means(results)
        for op in ("search", "insert", "delete"):
            individual = [r.mean_response[op] for r in results]
            assert min(individual) <= pooled[op] <= max(individual)

    def test_pooled_means_all_overflowed(self):
        config = _quick(arrival_rate=80.0, max_population=40,
                        n_operations=2_000)
        results = run_replications(config, n_seeds=2)
        assert all(r.overflowed for r in results)
        pooled = pooled_response_means(results)
        assert pooled["search"] == math.inf
