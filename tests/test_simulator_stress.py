"""High-contention stress tests.

Order-3 nodes and an arrival rate far above anything the figures use
force constant splits, root growth, merge-at-empty removals and (for
the Link-type algorithm) link chases and split races — the regime where
concurrency bugs live.  After the storm the tree must be structurally
sound, no process may be stuck and no lock may be leaked.
"""

import random

import pytest

from repro.btree.builder import build_tree
from repro.btree.node import Node
from repro.btree.validate import check_invariants
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.model.params import CostModel
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.driver import _ALGORITHM_MODULES
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext, pick_resident_key

KEY_SPACE = 400
ALGORITHMS = sorted(_ALGORITHM_MODULES)


def _storm(algorithm: str, seed: int, n_ops: int = 1_200,
           rate: float = 2.0, order: int = 3):
    rng = random.Random(seed)

    def attach(node: Node) -> None:
        node.lock = RWLock(str(node.node_id))

    tree = build_tree(60, order=order, key_space=KEY_SPACE,
                      rng=random.Random(seed + 100), on_new_node=attach)
    sim = Simulator()
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    sampler = ServiceTimeSampler(CostModel(disk_cost=2.0), tree,
                                 random.Random(seed + 200))
    ctx = OperationContext(sim, tree, sampler, metrics, rng)
    module = _ALGORITHM_MODULES[algorithm]
    t = 0.0
    for _ in range(n_ops):
        t += rng.expovariate(rate)
        u = rng.random()
        if u < 0.25:
            op, key = "search", rng.randrange(KEY_SPACE)
        elif u < 0.75:
            op, key = "insert", rng.randrange(KEY_SPACE)
        else:
            op, key = "delete", pick_resident_key(tree, rng, KEY_SPACE)
        sim.spawn(getattr(module, op)(ctx, key), name=op, delay=t)
    sim.run()
    return sim, tree, metrics


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_storm_leaves_tree_consistent(algorithm, seed):
    sim, tree, _metrics = _storm(algorithm, seed)
    assert sim.active_processes == 0, "stuck operation processes"
    check_invariants(tree, allow_underflow=algorithm.startswith("link"))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_storm_leaks_no_locks(algorithm):
    _sim, tree, _metrics = _storm(algorithm, seed=9)
    for level in range(1, tree.height + 1):
        for node in tree.level_nodes(level):
            assert node.lock.writer is None
            assert not node.lock.readers
            assert node.lock.queue_length == 0


def test_storm_grows_the_tree():
    """Inserts dominate, so the storm splits nodes and raises the tree."""
    _sim, tree, metrics = _storm("naive-lock-coupling", seed=5,
                                 n_ops=2_000)
    assert metrics.splits > 50
    assert tree.height >= 4


def test_link_storm_chases_links():
    """At order 3 and rate 2 the Link-type algorithm actually exercises
    the right-link recovery path."""
    crossings = 0
    for seed in range(8):
        _sim, _tree, metrics = _storm("link-type", seed=seed)
        crossings += metrics.link_crossings
    assert crossings > 0
