"""Validation report: error semantics, gates, JSON schema round trip."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.claims import ClaimResult
from repro.experiments.common import ExperimentTable
from repro.report import (
    build_report,
    dumps_report,
    get_figure,
    loads_report,
    report_to_dict,
    report_to_markdown,
    validate_report_dict,
)
from repro.report.registry import ABSOLUTE, RELATIVE, Comparison, FigureSpec
from repro.report.validation import (
    BOTH_SATURATED,
    MODEL_SATURATED,
    OK,
    SIM_SATURATED,
    UNDEFINED,
    evaluate_comparison,
    validate_figure,
)


def _spec(metric=RELATIVE, threshold=0.25) -> FigureSpec:
    return FigureSpec("fig03", "paper", (
        Comparison("algo", "response", "model", "sim",
                   metric=metric, threshold=threshold),))


def _table(rows) -> ExperimentTable:
    table = ExperimentTable("fig03", "Synthetic", "Figure 3",
                            ["x", "model", "sim"])
    for row in rows:
        table.add(*row)
    return table


class TestPointSemantics:
    def test_statuses(self):
        spec = _spec()
        result = evaluate_comparison(spec, spec.comparisons[0], _table([
            (1.0, 10.0, 11.0),
            (2.0, math.inf, math.inf),
            (3.0, math.inf, 40.0),
            (4.0, 40.0, math.inf),
            (5.0, math.nan, 40.0),
        ]))
        assert [p.status for p in result.points] == [
            OK, BOTH_SATURATED, MODEL_SATURATED, SIM_SATURATED, UNDEFINED]
        # Only the OK point contributes to the error statistics.
        assert len(result.valid_points) == 1
        assert result.points[0].error == pytest.approx(0.1)
        assert result.saturation_mismatches == 2

    def test_relative_vs_absolute_metric(self):
        rows = [(1.0, 10.0, 12.0)]
        spec_rel = _spec(metric=RELATIVE)
        rel = evaluate_comparison(spec_rel, spec_rel.comparisons[0],
                                  _table(rows))
        spec_abs = _spec(metric=ABSOLUTE)
        abs_ = evaluate_comparison(spec_abs, spec_abs.comparisons[0],
                                   _table(rows))
        assert rel.points[0].error == pytest.approx(0.2)
        assert abs_.points[0].error == pytest.approx(2.0)

    def test_zero_model_relative_error_is_undefined_unless_sim_zero(self):
        spec = _spec()
        result = evaluate_comparison(spec, spec.comparisons[0], _table([
            (1.0, 0.0, 0.0),
            (2.0, 0.0, 3.0),
        ]))
        assert result.points[0].status == OK
        assert result.points[0].error == 0.0
        assert result.points[1].status == UNDEFINED

    def test_missing_columns_pass_vacuously(self):
        spec = _spec()
        table = ExperimentTable("fig03", "Synthetic", "Figure 3",
                                ["x", "model"])
        table.add(1.0, 10.0)
        result = evaluate_comparison(spec, spec.comparisons[0], table)
        assert result.points == []
        assert math.isnan(result.median_error)
        assert result.passed()


class TestGates:
    def test_median_gates_not_max(self):
        # One outlier point must not fail the comparison when the
        # median stays inside the threshold.
        spec = _spec(threshold=0.25)
        result = evaluate_comparison(spec, spec.comparisons[0], _table([
            (1.0, 10.0, 11.0),   # 10%
            (2.0, 10.0, 11.5),   # 15%
            (3.0, 10.0, 19.0),   # 90% outlier
        ]))
        assert result.median_error == pytest.approx(0.15)
        assert result.max_error == pytest.approx(0.90)
        assert result.passed()

    def test_threshold_scale_loosens_and_tightens(self):
        spec = _spec(threshold=0.25)
        result = evaluate_comparison(spec, spec.comparisons[0],
                                     _table([(1.0, 10.0, 14.0)]))  # 40%
        assert not result.passed()
        assert result.passed(threshold_scale=2.0)
        assert not result.passed(threshold_scale=0.5)

    def test_figure_and_report_aggregation(self):
        spec = _spec(threshold=0.25)
        bad = _table([(1.0, 10.0, 20.0)])  # 100% error
        validation = validate_figure(spec, bad)
        assert not validation.passed()
        report = build_report([(spec, bad)], scale=0.1,
                              include_claims=False)
        assert len(report.breaches) == 1
        assert not report.passed
        report.claims = [ClaimResult("c1", "S1", "stmt", "meas", True)]
        assert report.failed_claims == []


class TestJsonRoundTrip:
    def _report(self):
        spec = _spec(threshold=0.25)
        table = _table([(1.0, 10.0, 11.0), (2.0, math.inf, math.inf)])
        report = build_report([(spec, table)], scale=0.1,
                              threshold_scale=1.5, include_claims=False)
        report.claims = [
            ClaimResult("ordering", "Section 5.3", "a >> b",
                        "measured text", True),
            ClaimResult("broken", "Section 9", "x < y", "nope", False),
        ]
        return report

    def test_dumps_validates_and_loads_back_equal(self):
        report = self._report()
        text = dumps_report(report)
        loaded = loads_report(text)
        assert loaded.scale == report.scale
        assert loaded.threshold_scale == report.threshold_scale
        assert loaded.passed == report.passed
        assert len(loaded.figures) == 1
        original = report.figures[0].comparisons[0]
        round_tripped = loaded.figures[0].comparisons[0]
        assert round_tripped.median_error == pytest.approx(
            original.median_error)
        assert [p.status for p in round_tripped.points] \
            == [p.status for p in original.points]
        assert round_tripped.points[1].model == math.inf
        assert [c.claim_id for c in loaded.claims] == ["ordering", "broken"]
        assert loaded.failed_claims[0].claim_id == "broken"
        # A second serialization of the loaded report is byte-identical.
        assert dumps_report(loaded) == text

    def test_schema_rejects_missing_key(self):
        data = report_to_dict(self._report())
        del data["figures"][0]["comparisons"][0]["median_error"]
        with pytest.raises(ConfigurationError, match="median_error"):
            validate_report_dict(data)

    def test_schema_rejects_bad_status_and_version(self):
        data = report_to_dict(self._report())
        data["figures"][0]["comparisons"][0]["points"][0]["status"] = "meh"
        with pytest.raises(ConfigurationError, match="status"):
            validate_report_dict(data)
        data = report_to_dict(self._report())
        data["schema"] = 999
        with pytest.raises(ConfigurationError, match="schema"):
            validate_report_dict(data)


class TestMarkdown:
    def test_contains_verdicts_and_claims(self):
        spec = _spec(threshold=0.25)
        report = build_report(
            [(spec, _table([(1.0, 10.0, 20.0)]))],  # breach
            scale=0.1, include_claims=False)
        report.claims = [ClaimResult("c1", "S1", "stmt", "meas", False)]
        text = report_to_markdown(report)
        assert "**FAIL**" in text
        assert "**BREACH**" in text
        assert "**FAILS**" in text
        assert "fig03" in text

    def test_analytical_only_run_reads_cleanly(self):
        spec = get_figure("fig11")  # no comparisons declared
        table = spec.run(scale=0.02, simulate=False)
        report = build_report([(spec, table)], scale=0.02,
                              include_claims=False)
        assert report.passed
        text = report_to_markdown(report)
        assert "**PASS**" in text
        assert "no simulated comparisons" in text
