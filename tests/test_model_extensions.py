"""Unit tests for the full-version extensions: Two-Phase Locking and
LRU buffering (both promised in the paper's conclusions)."""

import pytest

from repro.errors import ConfigurationError
from repro.model import (
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    analyze_two_phase,
    max_throughput,
    paper_default_config,
)
from repro.model.buffering import (
    buffered_config,
    buffered_cost_model,
    pages_for_top_levels,
    plan_buffer,
)
from repro.model.params import CostModel


class TestTwoPhaseLocking:
    def test_far_worse_than_naive_lock_coupling(self, paper_config):
        """2PL is the restrictive baseline: lock-coupling's early
        releases buy an order of magnitude of throughput."""
        two_phase = max_throughput(analyze_two_phase, paper_config)
        naive = max_throughput(analyze_lock_coupling, paper_config)
        assert naive > 8.0 * two_phase

    def test_full_ordering(self, paper_config):
        """2PL < Naive LC < Optimistic < Link — the complete spectrum."""
        peaks = [max_throughput(analyzer, paper_config)
                 for analyzer in (analyze_two_phase, analyze_lock_coupling,
                                  analyze_optimistic, analyze_link)]
        assert all(a < b for a, b in zip(peaks, peaks[1:]))

    def test_holds_compose_down_the_path(self, paper_config):
        """A level-i lock is held for the whole remaining descent, so
        hold times grow (rather than shrink) toward the root."""
        p = analyze_two_phase(paper_config, 0.01)
        holds = [1.0 / level.mu_w for level in p.levels]
        assert all(a < b for a, b in zip(holds, holds[1:]))

    def test_matches_naive_at_the_leaf_queue(self, paper_config):
        """Leaf-level writer service is the same leaf work in both
        protocols (plus 2PL's split charge)."""
        rate = 0.01
        two_phase = analyze_two_phase(paper_config, rate)
        naive = analyze_lock_coupling(paper_config, rate)
        assert 1.0 / two_phase.level(1).mu_w \
            >= 1.0 / naive.level(1).mu_w

    def test_response_monotone_and_saturates(self, paper_config):
        responses = [analyze_two_phase(paper_config, r).response("search")
                     for r in (0.005, 0.015, 0.03)]
        assert all(a < b for a, b in zip(responses, responses[1:]))
        assert not analyze_two_phase(paper_config, 0.1).stable

    def test_nonpositive_rate_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            analyze_two_phase(paper_config, 0.0)


class TestBufferPlan:
    def test_zero_buffer_all_misses(self, paper_config):
        plan = plan_buffer(paper_config.shape, 0)
        assert all(h == 0.0 for h in plan.hit_rates)

    def test_huge_buffer_all_hits(self, paper_config):
        plan = plan_buffer(paper_config.shape, 10**6)
        assert all(h == 1.0 for h in plan.hit_rates)

    def test_allocation_is_top_down(self, paper_config):
        """The root caches before level 4, level 4 before level 3..."""
        frames = pages_for_top_levels(paper_config.shape, 2)
        plan = plan_buffer(paper_config.shape, frames)
        h = paper_config.height
        assert plan.hit_rate(h) == 1.0
        assert plan.hit_rate(h - 1) == pytest.approx(1.0, abs=0.02)
        assert plan.hit_rate(1) == 0.0

    def test_partial_level_gets_fractional_hits(self, paper_config):
        shape = paper_config.shape
        frames = shape.nodes_at(5) + shape.nodes_at(4) + \
            0.5 * shape.nodes_at(3)
        plan = plan_buffer(shape, frames)
        assert plan.hit_rate(3) == pytest.approx(0.5)

    def test_hit_rates_monotone_in_level(self, paper_config):
        plan = plan_buffer(paper_config.shape, 40)
        assert all(a <= b for a, b in
                   zip(plan.hit_rates, plan.hit_rates[1:]))

    def test_hit_rates_monotone_in_buffer_size(self, paper_config):
        overall = [plan_buffer(paper_config.shape, frames).overall_hit_rate
                   for frames in (0, 10, 100, 1_000, 10_000)]
        assert all(a <= b for a, b in zip(overall, overall[1:]))

    def test_negative_buffer_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            plan_buffer(paper_config.shape, -1)


class TestBufferedCostModel:
    def test_dilations_interpolate_disk_cost(self, paper_config):
        costs = buffered_cost_model(paper_config.costs, paper_config.shape,
                                    buffer_pages=40)
        h = paper_config.height
        assert costs.se(h, h) == pytest.approx(1.0)          # root cached
        assert costs.se(1, h) == pytest.approx(
            paper_config.costs.disk_cost)                    # leaves cold
        assert 1.0 <= costs.se(3, h) <= paper_config.costs.disk_cost

    def test_reduces_to_fixed_levels_at_matching_budget(self):
        """A buffer holding exactly the top two levels reproduces the
        paper's in_memory_levels=2 setting (within the fractional tail)."""
        config = paper_default_config()
        frames = pages_for_top_levels(config.shape, 2)
        buffered = buffered_config(config, frames)
        h = config.height
        for level in (h, h - 1):
            assert buffered.costs.se(level, h) == pytest.approx(1.0,
                                                                abs=0.05)
        for level in (1, 2):
            assert buffered.costs.se(level, h) == pytest.approx(
                config.costs.se(level, h), rel=0.05)

    def test_throughput_saturates_with_buffer(self):
        config = paper_default_config(disk_cost=10.0)
        peaks = [
            max_throughput(analyze_lock_coupling,
                           buffered_config(config, frames))
            for frames in (0, 7, 600, 10_000)
        ]
        assert all(a < b for a, b in zip(peaks, peaks[1:]))
        # Diminishing returns: the first 7 frames (the top levels) are
        # worth vastly more *per frame* than the rest of the pool.
        per_frame_first = (peaks[1] - peaks[0]) / 7
        per_frame_rest = (peaks[3] - peaks[1]) / (10_000 - 7)
        assert per_frame_first > 50 * per_frame_rest

    def test_explicit_dilations_validated(self):
        with pytest.raises(ConfigurationError):
            CostModel(level_dilations=(0.5, 1.0))

    def test_dilation_level_bounds_checked(self):
        costs = CostModel(level_dilations=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            costs.se(3, 2)

    def test_pages_for_top_levels_validation(self, paper_config):
        with pytest.raises(ConfigurationError):
            pages_for_top_levels(paper_config.shape, -1)
