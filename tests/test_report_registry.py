"""Figure-registry invariants: completeness, uniqueness, declarations."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS
from repro.report import FIGURES, all_figure_ids, get_figure
from repro.report.registry import _ENTRIES, ABSOLUTE, RELATIVE


class TestCompleteness:
    def test_every_experiment_has_exactly_one_figure(self):
        assert set(FIGURES) == set(EXPERIMENTS)
        ids = [spec.figure_id for spec in _ENTRIES]
        assert len(ids) == len(set(ids)), "duplicate figure registration"

    def test_every_paper_figure_is_registered(self):
        expected = {f"fig{n:02d}" for n in range(3, 17)}
        assert set(all_figure_ids("paper")) == expected

    def test_every_extension_figure_is_registered(self):
        assert set(all_figure_ids("ext")) == {
            f"ext{n:02d}" for n in range(1, 9)}

    def test_kinds_partition_the_registry(self):
        assert (set(all_figure_ids("paper")) | set(all_figure_ids("ext"))
                == set(all_figure_ids()))


class TestDeclarations:
    def test_lookup_and_experiment_link(self):
        spec = get_figure("fig03")
        assert spec.kind == "paper"
        assert spec.experiment.experiment_id == "fig03"
        assert spec.has_simulation is True
        assert spec.title

    def test_unknown_figure_is_a_readable_error(self):
        with pytest.raises(ConfigurationError, match="fig99"):
            get_figure("fig99")

    def test_comparison_metrics_are_known(self):
        for spec in FIGURES.values():
            for comparison in spec.comparisons:
                assert comparison.metric in (RELATIVE, ABSOLUTE)
                assert comparison.threshold > 0
                assert comparison.model_column != comparison.sim_column

    def test_simulated_paper_response_figures_declare_comparisons(self):
        # The figures whose paper originals overlay simulation points
        # must carry at least one model-vs-sim pair to validate.
        for figure_id in ("fig03", "fig04", "fig05", "fig06", "fig07",
                          "fig08", "fig09", "fig10"):
            assert get_figure(figure_id).comparisons, figure_id

    def test_comparison_columns_exist_in_generated_tables(self):
        # Cheap analytical run: the model column must exist; the sim
        # column is conditional on simulate=True by design.
        spec = get_figure("fig03")
        table = spec.run(scale=0.02, simulate=False)
        for comparison in spec.comparisons:
            assert comparison.model_column in table.columns

    def test_plot_columns_reference_real_columns(self):
        spec = get_figure("fig09")
        table = spec.run(scale=0.02, simulate=False)
        assert spec.plot_columns is not None
        # At least the analytical series of the declared plot columns
        # must exist even in a no-sim run.
        assert any(c in table.columns for c in spec.plot_columns)
