"""Batch-fallback boundaries: mixed sweeps stay byte-identical.

A realistic sweep mixes batch-eligible replications with tasks the
batch driver must not absorb — scalar-only algorithms, telemetry
collection, per-task budgets, closed-system runs.  ``run_batch`` must
(1) produce results byte-identical to ``batch=None`` for the whole
mixture and (2) group exactly the eligible runs, leaving everything
else on the scalar path.  These tests pin both halves, including under
``batch="auto"``.
"""

import dataclasses

import pytest

import repro.algorithms  # noqa: F401 - populate the registry
from repro.algorithms import get_algorithm
from repro.algorithms.spec import _REGISTRY
from repro.des import autotune
from repro.obs.telemetry import TelemetryOptions
from repro.parallel import SimTask, run_batch
from repro.parallel.executor import KIND_CLOSED, _batch_eligible, _plan_units
from repro.resilience.budget import TaskBudget
from repro.simulator.config import SimulationConfig

N_OPERATIONS = 300


def _config(algorithm="link-type", seed=3) -> SimulationConfig:
    return SimulationConfig(algorithm=algorithm,
                            n_operations=N_OPERATIONS, seed=seed)


def _scalar_only(monkeypatch, algorithm="two-phase-locking") -> None:
    """Demote one registered algorithm to tier "none" for this test."""
    monkeypatch.setitem(
        _REGISTRY, algorithm,
        dataclasses.replace(get_algorithm(algorithm), vector_tier="none"))


def _mixed_tasks():
    """Eligible runs bracketing every kind of ineligible task."""
    return [
        SimTask(_config(seed=10)),                              # eligible
        SimTask(_config(seed=11)),                              # eligible
        SimTask(_config("two-phase-locking", seed=12)),         # scalar-only
        SimTask(_config(seed=13)),                              # eligible
        SimTask(_config(seed=14), telemetry=TelemetryOptions()),
        SimTask(_config(seed=15),
                budget=TaskBudget(max_events=100_000_000)),
        SimTask(_config(seed=16), kind=KIND_CLOSED, mpl=2),
        SimTask(_config(seed=17)),                              # eligible
        SimTask(_config(seed=18)),                              # eligible
    ]


def test_mixed_sweep_byte_identical_to_unbatched(monkeypatch):
    _scalar_only(monkeypatch)
    tasks = _mixed_tasks()
    telemetry_scalar, telemetry_batched = {}, {}
    scalar = run_batch(tasks, batch=None,
                       telemetry_sink=telemetry_scalar.__setitem__)
    batched = run_batch(tasks, batch=4,
                        telemetry_sink=telemetry_batched.__setitem__)
    assert repr(batched) == repr(scalar)
    assert len(scalar) == len(tasks) and None not in scalar
    # The telemetry task delivered through the sink on both paths, with
    # identical recorded series.
    assert set(telemetry_scalar) == set(telemetry_batched) == {4}
    assert repr(telemetry_batched[4].result) == \
        repr(telemetry_scalar[4].result)


def test_mixed_sweep_grouping(monkeypatch):
    _scalar_only(monkeypatch)
    tasks = _mixed_tasks()
    eligible = [_batch_eligible(task) for task in tasks]
    assert eligible == [True, True, False, True, False, False, False,
                        True, True]
    units = _plan_units(tasks, range(len(tasks)), width=4)
    # Consecutive eligible runs fuse (respecting the width cap); every
    # ineligible task is its own scalar unit, in task order.
    assert units == [[0, 1], [2], [3], [4], [5], [6], [7, 8]]
    # Width caps a long eligible run into consecutive chunks.
    wide = [SimTask(_config(seed=30 + i)) for i in range(5)]
    assert _plan_units(wide, range(5), width=2) == [[0, 1], [2, 3], [4]]


def test_auto_batch_mixed_sweep(monkeypatch, tmp_path):
    # batch="auto" resolves a width from the persisted calibration and
    # then obeys the same grouping/fallback rules.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    entries = {
        protocol: autotune.ProtocolCalibration(
            protocol=protocol, overhead_per_dispatch=1e-6,
            cost_per_lane_dispatch=1e-9, dispatches=100.0,
            events_per_lane=1000.0, scalar_events_per_sec=1000.0)
        for protocol in ("coupling", "optimistic")}
    autotune.save_calibration(
        autotune.BatchCalibration(entries=entries, probe_widths=(32, 256),
                                  fingerprint=autotune._fingerprint(),
                                  generated_at="test"),
        autotune.calibration_path(None))
    _scalar_only(monkeypatch)
    tasks = _mixed_tasks()
    scalar = run_batch(tasks, batch=None)
    auto = run_batch(tasks, batch="auto")
    assert repr(auto) == repr(scalar)


def test_rejects_unknown_batch_string():
    from repro.errors import ConfigurationError
    from repro.parallel.context import resolve_batch

    with pytest.raises(ConfigurationError, match="'wide'"):
        resolve_batch("wide")
