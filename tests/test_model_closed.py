"""Tests for the closed-system analytical prediction (interactive
response-time law over the open model)."""

import pytest

from repro.errors import ConfigurationError
from repro.model import analyze_link, analyze_lock_coupling
from repro.model.closed import closed_system_prediction
from repro.model.throughput import max_throughput


class TestFixedPoint:
    def test_single_customer_has_no_contention(self, paper_config):
        """MPL 1: throughput = 1 / zero-load response."""
        p = closed_system_prediction(analyze_lock_coupling, paper_config, 1)
        assert not p.saturated
        assert p.throughput == pytest.approx(1.0 / p.response_time,
                                             rel=1e-3)

    def test_little_s_law_holds_at_the_solution(self, paper_config):
        for mpl in (2, 8, 30):
            p = closed_system_prediction(analyze_lock_coupling,
                                         paper_config, mpl)
            assert p.throughput * (p.response_time + p.think_time) \
                == pytest.approx(mpl, rel=0.02)

    def test_throughput_monotone_and_capped(self, paper_config):
        capacity = max_throughput(analyze_lock_coupling, paper_config)
        throughputs = [
            closed_system_prediction(analyze_lock_coupling, paper_config,
                                     mpl).throughput
            for mpl in (1, 4, 16, 64, 256)
        ]
        assert all(a < b or b == pytest.approx(capacity, rel=0.02)
                   for a, b in zip(throughputs, throughputs[1:]))
        assert all(x <= capacity * 1.0001 for x in throughputs)

    def test_plateau_reached_at_high_mpl(self, paper_config):
        p = closed_system_prediction(analyze_lock_coupling, paper_config,
                                     200)
        assert p.saturated
        assert p.throughput == pytest.approx(p.capacity, rel=0.02)
        # On the plateau the response grows as N / capacity.
        assert p.response_time == pytest.approx(200 / p.capacity,
                                                rel=0.02)

    def test_think_time_defers_saturation(self, paper_config):
        busy = closed_system_prediction(analyze_lock_coupling,
                                        paper_config, 40)
        idle = closed_system_prediction(analyze_lock_coupling,
                                        paper_config, 40,
                                        think_time=200.0)
        assert idle.throughput < busy.throughput
        assert not idle.saturated

    def test_link_type_barely_notices_mpl_100(self, paper_config):
        """The Section 1 scenario analytically: at MPL 100 the Link-type
        algorithm runs far from its capacity, lock-coupling far past the
        knee."""
        naive = closed_system_prediction(analyze_lock_coupling,
                                         paper_config, 100)
        link = closed_system_prediction(analyze_link, paper_config, 100)
        assert naive.saturated
        assert not link.saturated
        assert link.throughput > 5.0 * naive.throughput
        assert link.response_time < 0.3 * naive.response_time

    def test_validation(self, paper_config):
        with pytest.raises(ConfigurationError):
            closed_system_prediction(analyze_lock_coupling, paper_config, 0)
        with pytest.raises(ConfigurationError):
            closed_system_prediction(analyze_lock_coupling, paper_config,
                                     5, think_time=-1.0)


class TestAgainstClosedSimulation:
    def test_tracks_the_simulator_across_mpls(self):
        """Model vs closed simulator within a few percent below and on
        the plateau (the ext04 comparison in miniature)."""
        from repro.btree import build_tree, collect_statistics
        from repro.model import ModelConfig, TreeShape
        from repro.model.params import CostModel, PAPER_MIX
        from repro.simulator import SimulationConfig
        from repro.simulator.closed import run_closed_simulation

        tree = build_tree(8_000, order=13, seed=4)
        config = ModelConfig(
            mix=PAPER_MIX,
            costs=CostModel(disk_cost=5.0, in_memory_levels=2),
            shape=TreeShape.from_statistics(collect_statistics(tree)),
            order=13)
        sim_config = SimulationConfig(
            algorithm="naive-lock-coupling", arrival_rate=0.1,
            n_items=8_000, n_operations=1_000, warmup_operations=100,
            seed=4)
        for mpl in (5, 25, 100):
            predicted = closed_system_prediction(analyze_lock_coupling,
                                                 config, mpl)
            simulated = run_closed_simulation(sim_config, mpl)
            assert simulated.throughput == pytest.approx(
                predicted.throughput, rel=0.10)
            assert simulated.overall_mean_response == pytest.approx(
                predicted.response_time, rel=0.12)
