"""Guard: no hard-coded algorithm-name literals outside the registry.

The refactor's contract is that :mod:`repro.algorithms` is the single
place where algorithm names exist as strings; everything else goes
through :data:`repro.algorithms.names` constants or registry specs.
This test scans every source file's AST for string constants that
*exactly* equal a registered name (prose mentioning an algorithm inside
a longer note or docstring is fine) and fails with the offending
locations, so a regression names its own culprit.
"""

import ast
from pathlib import Path

from repro.algorithms import algorithm_names

SRC = Path(__file__).resolve().parent.parent / "src"

#: The only package allowed to spell algorithm names as literals.
ALLOWED = SRC / "repro" / "algorithms"


def test_algorithm_names_only_appear_in_the_registry_package():
    registered = set(algorithm_names())
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if ALLOWED in path.parents:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and node.value in registered:
                offenders.append(
                    f"{path.relative_to(SRC)}:{node.lineno} "
                    f"{node.value!r}")
    assert not offenders, (
        "hard-coded algorithm names found (use repro.algorithms.names "
        "or registry specs instead):\n  " + "\n  ".join(offenders))
