"""Tests for the symmetric Link-type algorithm (Lanin-Shasha style
inline merge-at-empty deletes)."""

import random

import pytest

from repro.btree.builder import build_tree
from repro.btree.node import Node
from repro.btree.validate import check_invariants
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.model.params import CostModel
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator import link as link_plain
from repro.simulator import link_symmetric
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext


def _count_empty_leaves(tree) -> int:
    return sum(1 for leaf in tree.leaves()
               if not leaf.keys and leaf is not tree.root)


def _delete_heavy(module, seed: int):
    """Delete most of a small link tree through ``module``'s delete."""
    rng = random.Random(seed)

    def attach(node: Node) -> None:
        node.lock = RWLock(str(node.node_id))

    tree = build_tree(600, order=4, key_space=1_500,
                      rng=random.Random(seed + 1), on_new_node=attach)
    sim = Simulator()
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    ctx = OperationContext(
        sim, tree, ServiceTimeSampler(CostModel(disk_cost=2.0), tree,
                                      random.Random(seed + 2)),
        metrics, rng)
    resident = list(tree.items())
    rng.shuffle(resident)
    t = 0.0
    for key in resident[:450]:
        t += rng.expovariate(2.0)
        sim.spawn(module.delete(ctx, key), delay=t)
    sim.run()
    assert sim.active_processes == 0
    return tree, metrics


def test_inline_merges_prevent_empty_leaf_buildup():
    plain_tree, _pm = _delete_heavy(link_plain, seed=3)
    sym_tree, metrics = _delete_heavy(link_symmetric, seed=3)
    assert metrics.leaf_removals > 0
    assert _count_empty_leaves(sym_tree) \
        < _count_empty_leaves(plain_tree) / 3
    check_invariants(sym_tree, allow_underflow=True)


def test_contents_preserved():
    tree, _metrics = _delete_heavy(link_symmetric, seed=9)
    keys = list(tree.items())
    assert keys == sorted(keys)
    check_invariants(tree, allow_underflow=True)


def test_shares_search_and_insert_with_lehman_yao():
    assert link_symmetric.search is link_plain.search
    assert link_symmetric.insert is link_plain.insert
    assert link_symmetric.scan is link_plain.scan


def test_full_driver_run():
    result = run_simulation(SimulationConfig(
        algorithm="link-symmetric", arrival_rate=1.0, n_items=3_000,
        n_operations=600, warmup_operations=60, seed=2))
    assert not result.overflowed
    assert result.measured_operations >= 600


def test_performance_matches_plain_link():
    """Under the paper's insert-heavy mix, symmetric deletes almost
    never fire, so the two link variants perform identically."""
    def run(algorithm):
        return run_simulation(SimulationConfig(
            algorithm=algorithm, arrival_rate=2.0, n_items=5_000,
            n_operations=1_000, warmup_operations=100, seed=6))

    plain = run("link-type")
    symmetric = run("link-symmetric")
    for op in ("search", "insert", "delete"):
        assert symmetric.mean_response[op] == pytest.approx(
            plain.mean_response[op], rel=0.20)
