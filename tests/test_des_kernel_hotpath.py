"""Regression tests for the allocation-free kernel hot path.

Three layers of protection for the hot-path rewrite (typed heap events,
interned commands, bare-float holds, O(1) writer-waiting counter):

* **Golden-seed determinism** — full simulator runs hashed against
  fingerprints captured when the rewrite was proven byte-identical to
  the pre-rewrite kernel.  Any change to event ordering, RNG stream
  consumption, or result contents shows up here (and must be paired
  with a ``CODE_SALT`` bump in ``repro.parallel.cache``).
* **Typed-event scheduling paths** — every heap-record kind
  (action / start / resume) and every command spelling the step loop
  accepts, including the error paths.
* **Equivalence checks** — traced vs untraced stepping, the maintained
  queued-writer counter vs a direct queue scan, and the bisect-based
  hyperexponential branch selection vs the old linear walk.
"""

import dataclasses
import hashlib
import random

import pytest

from repro.des import Acquire, Hold, READ, RWLock, Release, Simulator, WRITE
from repro.des.distributions import Hyperexponential
from repro.des.trace import TraceLog
from repro.errors import ProcessError
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator.closed import run_closed_simulation


def fingerprint(result) -> str:
    """Stable digest of every field of a SimulationResult."""
    return hashlib.sha256(
        repr(dataclasses.asdict(result)).encode()).hexdigest()


def gen(*commands):
    """A generator yielding a fixed command sequence."""
    for command in commands:
        yield command


# ----------------------------------------------------------------------
# Golden-seed determinism
# ----------------------------------------------------------------------
#: (algorithm, arrival_rate, seed) -> sha256 of the full result, captured
#: from the kernel that was verified byte-identical to the pre-rewrite
#: one.  Shared scale: n_items=2000, n_operations=400, warmup=50.
GOLDEN_OPEN = {
    ("naive-lock-coupling", 0.03, 1):
        "98534384e8f573a08d4e36f9d456f3d0bcf16d5b4c3ff7b9f7e0ea3a0547029a",
    ("naive-lock-coupling", 0.06, 2):
        "d8efff5571193b59328ee1a58925a67e9d3beeed72d80f5bb57706b7f42e9c91",
    ("optimistic-descent", 0.03, 1):
        "0664e939d538bbdd8a190b00aaac78197e33c036326fd18349ea3dd88d159ace",
    ("optimistic-descent", 0.06, 2):
        "a6e835ad5cac82a9d32e8df70d2f343e5afc9af4d474c655d8ea457ea2764e08",
    ("link-type", 0.03, 1):
        "545e1d193c65d9def49847b869164ae760129f259de49edbd48c52ce7061588c",
    ("link-type", 0.06, 2):
        "d169bea76961d7e3abb340426a198e0dfa6ca1e40f6eba6911c3eed810d2fea0",
    ("link-symmetric", 0.04, 5):
        "0b49753e180b1208eb6b5680d9de985c6f8d384f67c977a4858df30aaf6d3622",
    ("two-phase-locking", 0.02, 7):
        "369f754565a942499b59c58298d7f113acffb4353eacbb146c9ac804bb1ca6fb",
}

GOLDEN_CLOSED = \
    "e96fe70b11a8cbe902af9c0f3779b5cf899e0e1aeff3f7a1040883b5f2876564"


@pytest.mark.parametrize("algorithm,rate,seed", sorted(GOLDEN_OPEN),
                         ids=lambda v: str(v))
def test_golden_seed_open_system(algorithm, rate, seed):
    config = SimulationConfig(algorithm=algorithm, arrival_rate=rate,
                              n_items=2000, n_operations=400,
                              warmup_operations=50, seed=seed)
    assert fingerprint(run_simulation(config)) == \
        GOLDEN_OPEN[(algorithm, rate, seed)]


def test_golden_seed_closed_system():
    config = SimulationConfig(algorithm="optimistic-descent", n_items=1000,
                              n_operations=200, warmup_operations=20, seed=3)
    result = run_closed_simulation(config, multiprogramming_level=8,
                                   think_time=2.0)
    assert fingerprint(result) == GOLDEN_CLOSED


# ----------------------------------------------------------------------
# Typed-event scheduling paths
# ----------------------------------------------------------------------
def test_spawn_delay_uses_start_record():
    sim = Simulator()
    started = []

    def proc():
        started.append(sim.now)
        yield 1.0

    sim.spawn(proc(), delay=2.5)
    assert sim.run() == 3.5
    assert started == [2.5]


def test_resume_record_delivers_value():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield 1.0))
        got.append((yield 1.0))

    p = sim.spawn(proc())
    sim.resume(p, "wake", delay=0.25)  # arrives while the hold is pending
    with pytest.raises(ProcessError):
        sim.run()  # resuming mid-hold double-steps the generator


def test_bare_float_hold_advances_clock():
    sim = Simulator()

    def proc():
        yield 1.5
        yield 2.5

    sim.spawn(proc())
    assert sim.run() == 4.0


def test_zero_hold_continues_within_step():
    sim = Simulator()
    seen = []

    def proc():
        yield 0.0
        seen.append(sim.now)
        yield Hold(0.0)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0.0, 0.0]


def test_int_hold_slow_path():
    sim = Simulator()

    def proc():
        yield 2  # ints take the _step_other path
        yield 1

    sim.spawn(proc())
    assert sim.run() == 3.0


def test_negative_float_hold_raises():
    sim = Simulator()
    sim.spawn(gen(-0.5))
    with pytest.raises(ProcessError, match="negative time"):
        sim.run()


def test_negative_int_hold_raises():
    sim = Simulator()
    sim.spawn(gen(-2))
    with pytest.raises(ProcessError, match="negative time"):
        sim.run()


@pytest.mark.parametrize("command", ["nonsense", True, None, object()],
                         ids=["str", "bool", "none", "object"])
def test_unknown_command_raises(command):
    sim = Simulator()
    sim.spawn(gen(command))
    with pytest.raises(ProcessError, match="unsupported command"):
        sim.run()


def test_unknown_command_raises_traced():
    sim = Simulator(trace=TraceLog())
    sim.spawn(gen("nonsense"))
    with pytest.raises(ProcessError, match="unsupported command"):
        sim.run()


def test_stop_interrupts_run():
    sim = Simulator()
    sim.schedule(1.0, sim.stop)
    sim.schedule(9.0, lambda: None)
    assert sim.run() == 1.0
    assert sim.run() == 9.0  # the rest of the heap survives a stop


# ----------------------------------------------------------------------
# Interned commands
# ----------------------------------------------------------------------
def test_lock_interns_one_command_per_mode():
    lock = RWLock("n")
    assert lock.acquire_read is lock.acquire_read
    assert lock.acquire_read == Acquire(lock, READ)
    assert lock.acquire_write == Acquire(lock, WRITE)
    assert lock.release_cmd == Release(lock)
    assert lock.acquire_read.kind != lock.release_cmd.kind


def test_interned_and_allocated_commands_equivalent():
    def worker(sim, lock, interned, log):
        if interned:
            wait = yield lock.acquire_write
            yield 1.0
            yield lock.release_cmd
        else:
            wait = yield Acquire(lock, WRITE)
            yield Hold(1.0)
            yield Release(lock)
        log.append((sim.now, wait))

    outcomes = []
    for interned in (True, False):
        sim = Simulator()
        lock = RWLock("n")
        log = []
        sim.spawn(worker(sim, lock, interned, log))
        sim.spawn(worker(sim, lock, interned, log))
        end = sim.run()
        outcomes.append((end, log, lock.grants_write))
    assert outcomes[0] == outcomes[1]
    end, log, grants = outcomes[0]
    assert end == 2.0
    assert grants == 2
    assert log == [(1.0, 0.0), (2.0, 1.0)]


# ----------------------------------------------------------------------
# Traced vs untraced equivalence
# ----------------------------------------------------------------------
def _contended_workload(sim, lock, finish_times, n=8, iters=5):
    def worker(i):
        rng = random.Random(i)
        acquire = lock.acquire_write if i % 3 == 0 else lock.acquire_read
        for _ in range(iters):
            wait = yield acquire
            assert wait >= 0.0
            yield rng.uniform(0.1, 0.5)
            yield lock.release_cmd
            yield rng.uniform(0.0, 0.2)
        finish_times.append(sim.now)

    for i in range(n):
        sim.spawn(worker(i), name=f"w{i}")


def test_traced_run_matches_untraced():
    results = []
    for trace in (None, TraceLog()):
        sim = Simulator(trace=trace)
        lock = RWLock("contended")
        finish_times = []
        _contended_workload(sim, lock, finish_times)
        end = sim.run()
        results.append((end, finish_times, lock.grants_read,
                        lock.grants_write, lock.time_writer_held,
                        lock.time_held_any))
    assert results[0] == results[1]
    # sanity: the traced run actually recorded the lock protocol
    trace_kinds = {e.kind for e in trace}
    assert {"spawn", "request", "grant", "release", "hold",
            "finish"} <= trace_kinds


# ----------------------------------------------------------------------
# O(1) writer_waiting counter
# ----------------------------------------------------------------------
def test_writer_waiting_counter_tracks_queue():
    sim = Simulator()
    lock = RWLock("counted")

    def scan(expected):
        actual = any(req.mode == WRITE for req in lock._queue)
        assert lock.writer_waiting() == actual == expected

    def holder():
        yield lock.acquire_write
        scan(False)
        yield 5.0
        yield lock.release_cmd

    def reader():
        yield 1.0
        yield lock.acquire_read
        yield lock.release_cmd

    def writer():
        yield 2.0
        yield lock.acquire_write
        yield lock.release_cmd

    sim.spawn(holder())
    sim.spawn(reader())
    sim.spawn(writer())
    sim.schedule(3.0, lambda: scan(True))   # writer queued behind holder
    sim.run()
    scan(False)                             # everything drained
    assert lock.grants_write == 2
    assert lock.grants_read == 1


def test_writer_waiting_counter_many_writers():
    sim = Simulator()
    lock = RWLock("counted")

    def writer(duration):
        yield lock.acquire_write
        yield duration
        yield lock.release_cmd

    for _ in range(5):
        sim.spawn(writer(1.0))
    counts = []
    sim.schedule(0.5, lambda: counts.append(
        (lock.writer_waiting(),
         sum(1 for req in lock._queue if req.mode == WRITE))))
    sim.run()
    assert counts == [(True, 4)]
    assert not lock.writer_waiting()


# ----------------------------------------------------------------------
# Hyperexponential bisect vs linear walk
# ----------------------------------------------------------------------
def test_hyperexponential_bisect_matches_linear_walk():
    probs = [0.2, 0.0, 0.5, 0.3]
    means = [1.0, 99.0, 0.5, 2.0]

    def linear_reference(seed, n):
        rng = random.Random(seed)
        out = []
        for _ in range(n):
            u = rng.random()
            acc = 0.0
            for p, m in zip(probs, means):
                acc += p
                if u <= acc:  # first threshold >= u, as the old walk did
                    out.append(rng.expovariate(1.0 / m))
                    break
        return out

    rng = random.Random(42)
    dist = Hyperexponential(probs, means, rng=rng)
    samples = [dist.sample() for _ in range(2000)]
    assert samples == linear_reference(42, 2000)
