"""Simulator tests for the Two-Phase Locking algorithm."""

import pytest

from repro.simulator import SimulationConfig, run_simulation


def _config(**overrides):
    defaults = dict(algorithm="two-phase-locking", arrival_rate=0.01,
                    n_items=3_000, n_operations=400,
                    warmup_operations=50, seed=2)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_runs_and_measures():
    result = run_simulation(_config())
    assert not result.overflowed
    assert result.measured_operations >= 400
    for op in ("search", "insert", "delete"):
        assert result.mean_response[op] > 0


def test_saturates_far_below_lock_coupling():
    """A rate Naive LC cruises at (0.2) overwhelms 2PL."""
    two_phase = run_simulation(_config(
        arrival_rate=0.2, max_population=300, n_operations=2_000))
    naive = run_simulation(_config(
        algorithm="naive-lock-coupling", arrival_rate=0.2,
        max_population=300, n_operations=2_000))
    assert two_phase.overflowed
    assert not naive.overflowed


def test_root_utilization_dominates():
    """2PL holds the root for whole operations, so the root lock is the
    visible bottleneck even at low load."""
    result = run_simulation(_config(arrival_rate=0.02,
                                    n_operations=800))
    assert result.root_writer_utilization > 0.15


def test_agrees_with_model_at_low_load():
    from repro.btree import build_tree, collect_statistics
    from repro.model import ModelConfig, TreeShape, analyze_two_phase
    from repro.model.params import CostModel, PAPER_MIX

    tree = build_tree(3_000, order=13, seed=0)
    config = ModelConfig(
        mix=PAPER_MIX, costs=CostModel(disk_cost=5.0, in_memory_levels=2),
        shape=TreeShape.from_statistics(collect_statistics(tree)), order=13)
    prediction = analyze_two_phase(config, 0.01)
    result = run_simulation(_config(arrival_rate=0.01, n_operations=800))
    # The exponential-aggregate approximation overestimates 2PL waiting
    # (holds are sums of stages, CV < 1), so allow a generous band but
    # require the right order of magnitude and direction.
    for op in ("search", "insert", "delete"):
        assert result.mean_response[op] == pytest.approx(
            prediction.response(op), rel=0.45)


def test_deterministic():
    a = run_simulation(_config(seed=8))
    b = run_simulation(_config(seed=8))
    assert a.mean_response == b.mean_response
