"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; refactors must not break them.
The heavyweight ones (full validation sweep) are exercised through the
figure benchmarks instead.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: Scripts cheap enough to run inside the unit-test suite.
FAST_EXAMPLES = (
    "quickstart.py",
    "buffer_sizing.py",
    "profile_saturation.py",
    "index_sizing.py",
    "capacity_planning.py",
    "recovery_tradeoff.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_every_example_has_a_docstring_and_main():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith(('"""', '#!')), path.name
        assert 'if __name__ == "__main__":' in source, path.name


def test_examples_cover_the_paper_stories():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert "validate_against_simulation.py" in names  # Figures 3-8
    assert "recovery_tradeoff.py" in names            # Section 7
    assert "index_sizing.py" in names                 # Section 6
    assert "capacity_planning.py" in names            # Section 1
