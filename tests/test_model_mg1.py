"""Unit tests for the M/M/1 / M/G/1 machinery and the Theorem 3 server."""

import random

import pytest

from repro.des.distributions import Exponential, Hyperexponential
from repro.errors import ConfigurationError, UnstableQueueError
from repro.model.mg1 import (
    LockCouplingServer,
    exponential_second_moment,
    mm1_wait,
    pollaczek_khinchine_wait,
    saturating,
)


class TestMM1:
    def test_closed_form(self):
        # rho = 0.5, mu = 1 -> W = 1
        assert mm1_wait(0.5, 1.0) == pytest.approx(1.0)
        # rho = 0.8, mu = 2 -> 0.8 / (0.2 * 2) = 2
        assert mm1_wait(1.6, 2.0) == pytest.approx(2.0)

    def test_saturation(self):
        with pytest.raises(UnstableQueueError):
            mm1_wait(1.0, 1.0)

    def test_bad_service_rate(self):
        with pytest.raises(ConfigurationError):
            mm1_wait(0.5, 0.0)


class TestPollaczekKhinchine:
    def test_reduces_to_mm1_for_exponential_service(self):
        lam, mu = 0.5, 1.0
        wait = pollaczek_khinchine_wait(
            lam, exponential_second_moment(1.0 / mu), lam / mu)
        assert wait == pytest.approx(mm1_wait(lam, mu))

    def test_deterministic_service_halves_the_wait(self):
        lam, mean = 0.5, 1.0
        exp_wait = pollaczek_khinchine_wait(lam, 2.0 * mean**2, lam * mean)
        det_wait = pollaczek_khinchine_wait(lam, mean**2, lam * mean)
        assert det_wait == pytest.approx(exp_wait / 2.0)

    def test_saturation(self):
        with pytest.raises(UnstableQueueError):
            pollaczek_khinchine_wait(1.0, 2.0, 1.0)

    def test_negative_moment_rejected(self):
        with pytest.raises(ConfigurationError):
            pollaczek_khinchine_wait(0.5, -1.0, 0.5)


class TestLockCouplingServer:
    def _server(self):
        return LockCouplingServer(t_e=1.0, p_f=0.1, t_f=3.0, rho_o=0.3,
                                  inv_mu_o=2.0, r_e_child=0.5)

    def test_mean_composition(self):
        server = self._server()
        t_o = 0.3 * 2.0 + 0.7 * 0.5
        assert server.t_o == pytest.approx(t_o)
        assert server.mean == pytest.approx(1.0 + 0.1 * 3.0 + t_o)

    def test_second_moment_matches_monte_carlo(self):
        """The twice-differentiated Laplace transform agrees with direct
        sampling of the three-stage server of Figure 2."""
        server = self._server()
        rng = random.Random(42)
        exp_e = Exponential(server.t_e, rng=rng)
        exp_f = Exponential(server.t_f, rng=rng)
        stage_o = Hyperexponential(
            [server.rho_o, 1.0 - server.rho_o],
            [server.inv_mu_o, server.r_e_child], rng=rng)
        n = 200_000
        total = 0.0
        total_sq = 0.0
        for _ in range(n):
            x = exp_e.sample() + stage_o.sample()
            if rng.random() < server.p_f:
                x += exp_f.sample()
            total += x
            total_sq += x * x
        assert total / n == pytest.approx(server.mean, rel=0.02)
        assert total_sq / n == pytest.approx(server.second_moment, rel=0.04)

    def test_more_variable_than_exponential(self):
        assert self._server().scv > 0.0

    def test_wait_is_pk(self):
        server = self._server()
        lam, rho = 0.1, 0.4
        assert server.wait(lam, rho) == pytest.approx(
            lam * server.second_moment / (2 * (1 - rho)))

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            LockCouplingServer(1.0, 1.5, 1.0, 0.5, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            LockCouplingServer(1.0, 0.5, 1.0, -0.1, 1.0, 1.0)

    def test_degenerate_no_child_contention(self):
        """With rho_o = 0 and no split branch the server is the t_e
        stage plus the fixed reader drain."""
        server = LockCouplingServer(t_e=2.0, p_f=0.0, t_f=0.0, rho_o=0.0,
                                    inv_mu_o=0.0, r_e_child=0.5)
        assert server.mean == pytest.approx(2.5)


def test_saturating_maps_nan_to_inf():
    import math
    assert saturating(float("nan")) == math.inf
    assert saturating(1.5) == 1.5
