"""Tests for the parallel sweep execution layer (repro.parallel)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    ResultCache,
    SimTask,
    config_key,
    current_context,
    execution,
    replication_tasks,
    run_batch,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import (
    pooled_response_means,
    run_replications,
    run_simulation,
)


def _quick(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="naive-lock-coupling", arrival_rate=0.15,
                    n_items=2_000, n_operations=150, warmup_operations=20,
                    seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit
# ----------------------------------------------------------------------
class TestParallelDeterminism:

    def test_parallel_results_identical_to_serial(self):
        config = _quick()
        serial = run_replications(config, n_seeds=4, jobs=1)
        parallel = run_replications(config, n_seeds=4, jobs=4)
        assert parallel == serial  # full SimulationResult equality
        assert pooled_response_means(parallel) == \
            pooled_response_means(serial)
        for s, p in zip(serial, parallel):
            assert p.mean_lock_waits == s.mean_lock_waits
            assert p.seed == s.seed

    def test_batch_preserves_task_order(self):
        configs = [_quick(seed=seed) for seed in (3, 1, 2)]
        results = run_batch([SimTask(c) for c in configs], jobs=3)
        assert [r.seed for r in results] == [3, 1, 2]

    def test_closed_task_matches_direct_call(self):
        from repro.simulator.closed import run_closed_simulation
        config = _quick(n_operations=100)
        task = SimTask(config, kind="closed", mpl=5)
        [via_batch] = run_batch([task], jobs=1)
        # repr-level comparison: closed runs have arrival_rate=nan and
        # nan != nan under dataclass equality.
        assert repr(via_batch) == repr(run_closed_simulation(config, 5))

    def test_closed_task_requires_mpl(self):
        with pytest.raises(ConfigurationError):
            SimTask(_quick(), kind="closed")
        with pytest.raises(ConfigurationError):
            SimTask(_quick(), kind="bogus")


# ----------------------------------------------------------------------
# Cache keying
# ----------------------------------------------------------------------
class TestConfigKey:

    def test_stable_and_sensitive(self):
        config = _quick()
        assert config_key(config) == config_key(_quick())
        assert config_key(config) != config_key(_quick(seed=8))
        assert config_key(config) != config_key(
            _quick(arrival_rate=0.2))
        assert config_key(config) != config_key(config, kind="closed",
                                                extra={"mpl": 5})

    def test_salt_change_busts_every_key(self):
        config = _quick()
        assert config_key(config, salt="sim-v1") != \
            config_key(config, salt="sim-v2")


# ----------------------------------------------------------------------
# Cache behavior: hit / miss / invalidation / corruption
# ----------------------------------------------------------------------
class TestResultCache:

    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _quick()
        first = run_batch(replication_tasks(config, 2), cache=cache)
        assert cache.stats.misses == 2
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0

        second = run_batch(replication_tasks(config, 2), cache=cache)
        assert cache.stats.hits == 2
        assert cache.stats.stores == 2  # nothing recomputed
        assert second == first

    def test_hits_survive_a_fresh_cache_instance(self, tmp_path):
        config = _quick()
        first = run_replications(config, n_seeds=2,
                                 cache=ResultCache(tmp_path))
        reopened = ResultCache(tmp_path)
        second = run_replications(config, n_seeds=2, cache=reopened)
        assert reopened.stats.hits == 2
        assert reopened.stats.misses == 0
        assert second == first

    def test_salt_change_invalidates_entries(self, tmp_path):
        config = _quick()
        run_replications(config, n_seeds=1, cache=ResultCache(tmp_path))
        bumped = ResultCache(tmp_path, salt="sim-v2-test")
        run_replications(config, n_seeds=1, cache=bumped)
        assert bumped.stats.hits == 0
        assert bumped.stats.misses == 1
        assert bumped.stats.stores == 1

    def test_corrupt_entry_recovers_by_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _quick()
        [expected] = run_batch([SimTask(config)], cache=cache)
        key = SimTask(config).cache_key(cache)
        cache.path_for(key).write_bytes(b"\x00not a pickle")

        fresh = ResultCache(tmp_path)
        [recovered] = run_batch([SimTask(config)], cache=fresh)
        assert recovered == expected
        assert fresh.stats.errors == 1
        assert fresh.stats.misses == 1
        assert fresh.stats.stores == 1
        # The overwritten entry is readable again.
        assert ResultCache(tmp_path).get(key) == expected

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(_quick())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(key) is None
        assert cache.stats.errors == 1

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        # Regression: a crash mid-write (or torn copy) must degrade to
        # a miss.  The checksum header catches any truncation point.
        cache = ResultCache(tmp_path)
        [expected] = run_batch([SimTask(_quick())], cache=cache)
        key = SimTask(_quick()).cache_key(cache)
        path = cache.path_for(key)
        blob = path.read_bytes()
        for cut in (1, len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:cut])
            fresh = ResultCache(tmp_path)
            assert fresh.get(key) is None
            assert fresh.stats.errors == 1
        # Garbage of the right length fails the checksum too.
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(bytes(len(blob)))
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None

    def test_checksum_catches_single_bit_flip(self, tmp_path):
        cache = ResultCache(tmp_path)
        [expected] = run_batch([SimTask(_quick())], cache=cache)
        key = SimTask(_quick()).cache_key(cache)
        path = cache.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01  # bit rot in the payload tail
        path.write_bytes(bytes(blob))
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.errors == 1
        # A recompute round-trips through the checksummed format.
        [recovered] = run_batch([SimTask(_quick())], cache=fresh)
        assert recovered == expected
        assert ResultCache(tmp_path).get(key) == expected

    def test_legacy_headerless_entry_still_loads(self, tmp_path):
        # Entries written before the checksum header must remain
        # readable (no CODE_SALT bump accompanied the format change).
        cache = ResultCache(tmp_path)
        [expected] = run_batch([SimTask(_quick())], cache=cache)
        key = SimTask(_quick()).cache_key(cache)
        cache.path_for(key).write_bytes(
            pickle.dumps(expected, protocol=pickle.HIGHEST_PROTOCOL))
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == expected
        assert fresh.stats.errors == 0

    def test_clear_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_replications(_quick(), n_seeds=2, cache=cache)
        assert cache.clear() == 2
        assert cache.clear() == 0
        rerun = ResultCache(tmp_path)
        run_replications(_quick(), n_seeds=2, cache=rerun)
        assert rerun.stats.hits == 0


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
class TestExecutionContext:

    def test_default_is_serial_uncached(self):
        context = current_context()
        assert not context.parallel
        assert context.cache is None

    def test_nested_contexts_inherit_and_restore(self, tmp_path):
        cache = ResultCache(tmp_path)
        with execution(jobs=4, cache=cache):
            assert current_context().parallel
            with execution(jobs=1):
                inner = current_context()
                assert not inner.parallel
                assert inner.cache is cache  # inherited
            assert current_context().jobs == 4
        assert current_context().cache is None

    def test_batch_picks_up_ambient_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        with execution(cache=cache):
            run_batch([SimTask(_quick())])
            run_batch([SimTask(_quick())])
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            with execution(jobs=-1):
                pass  # pragma: no cover


# ----------------------------------------------------------------------
# The figure pipeline end to end (acceptance criterion)
# ----------------------------------------------------------------------
class TestFigurePipeline:

    def test_second_figure_run_is_all_cache_hits(self, tmp_path):
        # Stand-in for "btree-perf run fig09 --scale ... twice": the
        # second regeneration must be served entirely from the cache.
        from repro.experiments.registry import get_experiment
        experiment = get_experiment("ext05")
        cache = ResultCache(tmp_path)
        with execution(cache=cache):
            first = experiment.run(scale=0.01)
        computed = cache.stats.stores
        assert computed > 0
        assert cache.stats.hits == 0

        with execution(cache=cache):
            second = experiment.run(scale=0.01)
        assert cache.stats.hits == computed  # every point reused
        assert cache.stats.stores == computed  # nothing recomputed
        assert second.rows == first.rows

    def test_sweep_helpers_match_pointwise_calls(self):
        from repro.experiments.common import (
            simulated_response,
            sweep_simulated_responses,
        )
        base = _quick()
        rates = (0.1, 0.2)
        swept = sweep_simulated_responses(base, rates, scale=0.01)
        pointwise = [simulated_response(base, rate, "insert", scale=0.01)
                     for rate in rates]
        assert swept == pointwise

    def test_cli_cache_flags(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import main as cli_main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["run", "ext05", "--scale", "0.01", "--jobs", "2"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        entries = list(tmp_path.glob("*/*.pkl"))
        assert entries  # the CLI populated the cache

        assert cli_main(argv) == 0  # second run: served from cache
        assert capsys.readouterr().out == first

        assert cli_main(argv + ["--clear-cache", "--no-cache"]) == 0
        assert capsys.readouterr().out == first
        assert not list(tmp_path.glob("*/*.pkl"))  # cleared, not refilled


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------
class TestExecuteTask:

    def test_execute_task_is_picklable_and_pure(self):
        from repro.parallel import execute_task
        task = SimTask(_quick())
        clone = pickle.loads(pickle.dumps(task))
        assert execute_task(clone) == run_simulation(_quick())

    def test_config_pickle_preserves_merge_policy_identity(self):
        # Regression: configs cross process boundaries, and both the
        # tree and SimulationConfig compare merge policies by identity
        # (a worker used to raise BTreeError on the first emptied leaf).
        from repro.btree.policies import MERGE_AT_EMPTY
        clone = pickle.loads(pickle.dumps(_quick()))
        assert clone.merge_policy is MERGE_AT_EMPTY
