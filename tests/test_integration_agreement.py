"""Integration: the analytical model against the simulator.

The paper's central validation claim (Section 5.3): "the analysis and
the simulation predict the same response times."  These tests rebuild
that comparison at the paper's own scale — a ~40,000-item order-13 tree
(5 levels, root fanout ~6, disk cost 5) — with the analytical shape
measured from the actual build so shape mismatch cannot pollute the
check.  Smaller trees deliberately break the steady-state assumption
(15% growth over a run shifts the occupancy of a 7-node level), which
the paper itself flags; see EXPERIMENTS.md.
"""

import pytest

from repro.btree import build_tree, collect_statistics
from repro.model import (
    ModelConfig,
    TreeShape,
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    max_throughput,
)
from repro.model.params import CostModel, PAPER_MIX
from repro.simulator import SimulationConfig, run_simulation

N_ITEMS = 40_000
ORDER = 13


@pytest.fixture(scope="module")
def measured_config() -> ModelConfig:
    tree = build_tree(N_ITEMS, order=ORDER, seed=0)
    stats = collect_statistics(tree)
    return ModelConfig(
        mix=PAPER_MIX,
        costs=CostModel(disk_cost=5.0, in_memory_levels=2),
        shape=TreeShape.from_statistics(stats),
        order=ORDER,
    )


def _simulate(algorithm: str, rate: float, seed: int = 101,
              n_ops: int = 1_500):
    config = SimulationConfig(
        algorithm=algorithm, arrival_rate=rate, order=ORDER,
        n_items=N_ITEMS, n_operations=n_ops, warmup_operations=150,
        seed=seed)
    return run_simulation(config)


CASES = [
    # (algorithm, analyzer, rate, tolerance) — rates span low load up to
    # ~40% of each algorithm's maximum throughput.
    ("naive-lock-coupling", analyze_lock_coupling, 0.15, 0.15),
    ("naive-lock-coupling", analyze_lock_coupling, 0.35, 0.20),
    ("optimistic-descent", analyze_optimistic, 0.5, 0.20),
    ("optimistic-descent", analyze_optimistic, 1.5, 0.25),
    ("link-type", analyze_link, 2.0, 0.15),
    ("link-type", analyze_link, 10.0, 0.20),
]


@pytest.mark.parametrize("algorithm,analyzer,rate,tolerance", CASES)
def test_response_time_agreement(measured_config, algorithm, analyzer,
                                 rate, tolerance):
    prediction = analyzer(measured_config, rate)
    assert prediction.stable
    result = _simulate(algorithm, rate)
    assert not result.overflowed
    for op in ("search", "insert", "delete"):
        model_value = prediction.response(op)
        sim_value = result.mean_response[op]
        assert sim_value == pytest.approx(model_value, rel=tolerance), (
            f"{algorithm} {op} at rate {rate}: model {model_value:.2f} "
            f"vs simulated {sim_value:.2f}")


def test_root_utilization_agreement(measured_config):
    """Predicted and sampled root writer utilization track each other
    (Figure 10's two curves)."""
    rate = 0.3
    prediction = analyze_lock_coupling(measured_config, rate)
    result = _simulate("naive-lock-coupling", rate, seed=77)
    sampled = result.root_writer_utilization
    # Presence sampling slightly over-counts the aggregate-customer rho.
    assert sampled == pytest.approx(
        prediction.root_writer_utilization, abs=0.12)
    assert sampled >= prediction.root_writer_utilization * 0.7


def test_knee_location_agreement(measured_config):
    """The simulator saturates near the analytical maximum throughput:
    comfortably below it runs fine, far above it the operation
    population explodes (the paper's crash)."""
    peak = max_throughput(analyze_lock_coupling, measured_config)
    below = SimulationConfig(
        algorithm="naive-lock-coupling", arrival_rate=0.6 * peak,
        order=ORDER, n_items=N_ITEMS, n_operations=1_200,
        warmup_operations=120, seed=5, max_population=600)
    ok = run_simulation(below)
    assert not ok.overflowed
    above = below.with_rate(3.0 * peak)
    crashed = run_simulation(above)
    assert crashed.overflowed


def test_simulated_ordering_matches_model(measured_config):
    """At a rate Naive cannot sustain, Optimistic and Link still cruise
    — the simulated counterpart of Figure 12's ordering."""
    rate = 1.0  # > Naive's maximum (~0.6), far below the others' knees
    naive = _simulate("naive-lock-coupling", rate)
    optimistic = _simulate("optimistic-descent", rate)
    link = _simulate("link-type", rate)
    assert naive.overflowed or (
        naive.mean_response["insert"]
        > 2.0 * optimistic.mean_response["insert"])
    assert not optimistic.overflowed
    assert not link.overflowed
    assert link.mean_response["search"] \
        < 1.3 * optimistic.mean_response["search"]
