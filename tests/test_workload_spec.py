"""WorkloadSpec plumbing: validation, registry, cache keys, model.

The load-bearing contract: the default :class:`WorkloadSpec` (and
``workload=None``) must hash and behave exactly like the pre-workload
configuration — cache keys unchanged, no CODE_SALT bump — while any
non-default spec is content-hashed into the key like every other
config field.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.model.workload import effective_load, piecewise_response
from repro.parallel.cache import config_key
from repro.simulator.config import SimulationConfig
from repro.workload import (
    DEFAULT_WORKLOAD,
    HotspotKeysSpec,
    MMPPArrivals,
    MigratingHotspotKeysSpec,
    PoissonArrivals,
    ScheduleArrivals,
    SpikeArrivals,
    TransactionSpec,
    UniformKeysSpec,
    WorkloadSpec,
    ZipfKeysSpec,
    all_arrival_processes,
    all_key_distributions,
    effective_workload,
    get_arrival_process,
    get_key_distribution,
    mix_thresholds,
)


def _config(**overrides) -> SimulationConfig:
    defaults = dict(algorithm="link-type", n_items=1_000,
                    n_operations=100, warmup_operations=10, seed=3)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# Spec semantics
# ----------------------------------------------------------------------
class TestSpecSemantics:

    def test_default_spec_flags(self):
        spec = WorkloadSpec()
        assert spec == DEFAULT_WORKLOAD
        assert spec.is_default()
        assert spec.vector_native()
        assert spec.arrival.stationary()

    @pytest.mark.parametrize("spec,native", [
        (WorkloadSpec(arrival=MMPPArrivals()), True),
        (WorkloadSpec(arrival=ScheduleArrivals()), True),
        (WorkloadSpec(arrival=SpikeArrivals()), False),
        (WorkloadSpec(keys=HotspotKeysSpec()), True),
        (WorkloadSpec(keys=ZipfKeysSpec()), True),
        (WorkloadSpec(keys=MigratingHotspotKeysSpec()), False),
        (WorkloadSpec(transaction=TransactionSpec(size=3)), False),
    ], ids=["mmpp", "schedule", "spike", "hotspot", "zipf",
            "migrating", "txn"])
    def test_vector_native_per_component(self, spec, native):
        assert not spec.is_default()
        assert spec.vector_native() is native

    def test_mmpp_defaults_are_mean_preserving(self):
        assert MMPPArrivals().mean_factor() == pytest.approx(1.0)

    def test_spec_rejects_wrong_component_types(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival=UniformKeysSpec())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(keys=PoissonArrivals())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(transaction=3)

    def test_zipf_theta_bounds(self):
        with pytest.raises(ConfigurationError):
            ZipfKeysSpec(theta=0.0)
        with pytest.raises(ConfigurationError):
            ZipfKeysSpec(theta=1.0)

    def test_mix_thresholds_hoists_and_validates(self):
        good = SimpleNamespace(q_search=0.3, q_insert=0.5, q_delete=0.2)
        assert mix_thresholds(good) == \
            (pytest.approx(0.3), pytest.approx(0.8))
        bad = SimpleNamespace(q_search=0.9, q_insert=0.5, q_delete=0.2)
        with pytest.raises(ConfigurationError,
                           match=r"q_search=0.9.*sums to"):
            mix_thresholds(bad)


# ----------------------------------------------------------------------
# Config integration
# ----------------------------------------------------------------------
class TestConfigIntegration:

    def test_effective_workload_resolution(self):
        assert effective_workload(_config()) == DEFAULT_WORKLOAD
        explicit = WorkloadSpec(arrival=MMPPArrivals())
        assert effective_workload(_config(workload=explicit)) is explicit
        legacy = _config(key_distribution="hotspot", hot_fraction=0.1,
                         hot_probability=0.9)
        assert effective_workload(legacy) == WorkloadSpec(
            keys=HotspotKeysSpec(hot_fraction=0.1, hot_probability=0.9))

    def test_config_rejects_non_spec_workload(self):
        with pytest.raises(ConfigurationError, match="WorkloadSpec"):
            _config(workload="mmpp")

    def test_workload_and_legacy_skew_mutually_exclusive(self):
        with pytest.raises(ConfigurationError,
                           match="mutually exclusive"):
            _config(workload=WorkloadSpec(keys=HotspotKeysSpec()),
                    key_distribution="hotspot")


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
class TestCacheKeys:

    def test_default_spec_key_equals_no_spec_key(self):
        assert config_key(_config(workload=WorkloadSpec())) == \
            config_key(_config())
        assert config_key(_config(workload=DEFAULT_WORKLOAD),
                          kind="closed") == \
            config_key(_config(), kind="closed")

    def test_non_default_specs_are_content_hashed(self):
        base = config_key(_config())
        keys = {config_key(_config(workload=spec)) for spec in (
            WorkloadSpec(arrival=MMPPArrivals()),
            WorkloadSpec(arrival=MMPPArrivals(on_factor=4.0)),
            WorkloadSpec(keys=ZipfKeysSpec()),
            WorkloadSpec(transaction=TransactionSpec(size=3)),
        )}
        assert len(keys) == 4
        assert base not in keys

    def test_same_non_default_spec_hashes_stably(self):
        spec = WorkloadSpec(arrival=MMPPArrivals(),
                            keys=ZipfKeysSpec(theta=0.7))
        assert config_key(_config(workload=spec)) == \
            config_key(_config(workload=WorkloadSpec(
                arrival=MMPPArrivals(), keys=ZipfKeysSpec(theta=0.7))))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:

    def test_every_component_listed_once(self):
        arrivals = all_arrival_processes()
        keys = all_key_distributions()
        assert [c.name for c in arrivals] == \
            ["poisson", "mmpp", "schedule", "spike"]
        assert [c.name for c in keys] == \
            ["uniform", "hotspot", "zipf", "migrating"]

    def test_vector_native_flags_match_specs(self):
        assert get_arrival_process("mmpp").vector_native
        assert not get_arrival_process("spike").vector_native
        assert get_key_distribution("zipf").vector_native
        assert not get_key_distribution("migrating").vector_native

    def test_unknown_component_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="poisson"):
            get_arrival_process("fractal")
        with pytest.raises(ConfigurationError, match="uniform"):
            get_key_distribution("gaussian")


# ----------------------------------------------------------------------
# Model-layer composition
# ----------------------------------------------------------------------
class TestEffectiveLoadModel:

    def test_poisson_is_exact_and_stationary(self):
        load = effective_load(PoissonArrivals())
        assert load.stationary
        assert load.mean_factor == pytest.approx(1.0)
        assert load.peak_factor == pytest.approx(1.0)
        assert load.burstiness == pytest.approx(0.0)
        assert load.divergence is None

    def test_mmpp_summary_is_honestly_flagged(self):
        load = effective_load(MMPPArrivals())
        assert not load.stationary
        assert load.mean_factor == pytest.approx(1.0)
        assert load.peak_factor == pytest.approx(3.0)
        assert load.burstiness > 0.0
        assert load.divergence is not None
        assert "quasi-static" in load.divergence

    def test_spike_summary_is_honestly_flagged(self):
        load = effective_load(SpikeArrivals())
        assert load.divergence is not None
        assert "transient" in load.divergence

    def test_schedule_composition_is_trusted(self):
        load = effective_load(ScheduleArrivals())
        assert not load.stationary
        assert load.divergence is None

    def test_piecewise_response_weights_segments(self):
        def analyze(config, rate):
            return SimpleNamespace(response=lambda op: rate * 10.0)
        arrival = ScheduleArrivals(segments=((100.0, 0.5), (100.0, 1.5)))
        composed = piecewise_response(analyze, None, 1.0, arrival,
                                      "insert")
        assert composed == pytest.approx(0.5 * 5.0 + 0.5 * 15.0)

    def test_piecewise_response_saturated_segment_is_infinite(self):
        def analyze(config, rate):
            value = float("inf") if rate > 1.0 else rate
            return SimpleNamespace(response=lambda op: value)
        composed = piecewise_response(analyze, None, 1.0,
                                      MMPPArrivals(), "search")
        assert composed == float("inf")
