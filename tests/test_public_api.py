"""The public API surface: exports resolve and stay stable."""

import importlib

import pytest

PACKAGES = ("repro", "repro.des", "repro.btree", "repro.model",
            "repro.simulator", "repro.workload", "repro.workloads",
            "repro.experiments")


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    importlib.import_module(package_name)


@pytest.mark.parametrize("package_name",
                         ("repro", "repro.des", "repro.btree",
                          "repro.model", "repro.workload"))
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", ()):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version_present():
    import repro
    assert repro.__version__


def test_algorithm_registry_consistent():
    """The config's algorithm names, the driver's module map and the
    public ALGORITHMS tuple agree."""
    from repro.simulator import ALGORITHMS
    from repro.simulator.driver import _ALGORITHM_MODULES
    assert set(ALGORITHMS) == set(_ALGORITHM_MODULES)
    for name, module in _ALGORITHM_MODULES.items():
        for op in ("search", "insert", "delete"):
            assert callable(getattr(module, op)), f"{name} lacks {op}"


def test_console_script_target_exists():
    from repro.experiments.runner import main
    assert callable(main)


def test_compactor_max_sweeps_terminates():
    """The compactor generator honours its sweep budget (used by tests
    and by callers that want a bounded pass)."""
    import random

    from repro.btree.builder import build_tree
    from repro.des.engine import Simulator
    from repro.des.rwlock import RWLock
    from repro.model.params import CostModel
    from repro.simulator.compaction import compactor
    from repro.simulator.costs import ServiceTimeSampler
    from repro.simulator.metrics import MetricsCollector
    from repro.simulator.operations import OperationContext

    def attach(node):
        node.lock = RWLock(str(node.node_id))

    tree = build_tree(200, order=4, rng=random.Random(1),
                      on_new_node=attach)
    sim = Simulator()
    ctx = OperationContext(
        sim, tree,
        ServiceTimeSampler(CostModel(), tree, random.Random(2)),
        MetricsCollector(), random.Random(3))
    process = sim.spawn(compactor(ctx, interval=1.0, max_sweeps=3))
    sim.run()
    assert process.done
