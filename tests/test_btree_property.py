"""Property-based tests: the B+-tree against a set model.

Hypothesis drives random operation sequences against both merge policies
and checks, after every batch, that (a) every structural invariant holds
and (b) the tree's contents equal a plain Python set subjected to the
same operations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree import (
    BPlusTree,
    MERGE_AT_EMPTY,
    MERGE_AT_HALF,
    check_invariants,
)

#: Small key universe to force collisions, duplicates and deletions of
#: present keys.
KEYS = st.integers(min_value=0, max_value=200)

OPERATIONS = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "search"]), KEYS),
    min_size=1, max_size=300,
)

ORDERS = st.integers(min_value=3, max_value=9)

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _apply(tree: BPlusTree, model: set, op: str, key: int) -> None:
    if op == "insert":
        assert tree.insert(key) == (key not in model)
        model.add(key)
    elif op == "delete":
        assert tree.delete(key) == (key in model)
        model.discard(key)
    else:
        assert tree.search(key) == (key in model)


@pytest.mark.parametrize("policy", [MERGE_AT_EMPTY, MERGE_AT_HALF],
                         ids=["merge-at-empty", "merge-at-half"])
class TestAgainstSetModel:
    @_SETTINGS
    @given(order=ORDERS, ops=OPERATIONS)
    def test_contents_and_invariants(self, policy, order, ops):
        tree = BPlusTree(order=order, merge_policy=policy)
        model = set()
        for op, key in ops:
            _apply(tree, model, op, key)
        check_invariants(tree)
        assert list(tree.items()) == sorted(model)
        assert len(tree) == len(model)

    @_SETTINGS
    @given(order=ORDERS, ops=OPERATIONS)
    def test_interleaved_validation(self, policy, order, ops):
        """Invariants hold after *every* operation, not just at the end."""
        tree = BPlusTree(order=order, merge_policy=policy)
        model = set()
        for i, (op, key) in enumerate(ops):
            _apply(tree, model, op, key)
            if i % 7 == 0:
                check_invariants(tree)
        check_invariants(tree)

    @_SETTINGS
    @given(order=ORDERS, keys=st.sets(KEYS, min_size=1, max_size=150))
    def test_insert_all_then_delete_all(self, policy, order, keys):
        tree = BPlusTree(order=order, merge_policy=policy)
        for key in keys:
            tree.insert(key)
        check_invariants(tree)
        assert list(tree.items()) == sorted(keys)
        for key in sorted(keys):
            assert tree.delete(key)
        check_invariants(tree)
        assert len(tree) == 0
        assert tree.height == 1


@_SETTINGS
@given(order=ORDERS, keys=st.sets(KEYS, min_size=10, max_size=150))
def test_leaf_chain_matches_levels(order, keys):
    """The right-link chain at the leaf level enumerates exactly the
    leaves, and per-level chains are complete at all levels."""
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    chained = [key for leaf in tree.leaves() for key in leaf.keys]
    assert chained == sorted(keys)
    total_nodes = sum(
        len(list(tree.level_nodes(level)))
        for level in range(1, tree.height + 1))
    assert total_nodes >= tree.height  # at least one node per level


@_SETTINGS
@given(keys=st.sets(KEYS, min_size=4, max_size=100))
def test_half_split_preserves_contents(keys):
    """Half-splitting an overfilled leaf never loses or reorders keys."""
    tree = BPlusTree(order=4)
    leaf = tree.root
    leaf.keys = sorted(keys)
    sibling, separator = tree.half_split(leaf)
    assert leaf.keys + sibling.keys == sorted(keys)
    assert all(k < separator for k in leaf.keys)
    assert all(k >= separator for k in sibling.keys)
    assert leaf.high_key == separator
    assert leaf.right is sibling


@_SETTINGS
@given(order=ORDERS,
       keys=st.sets(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=400))
def test_search_finds_exactly_members(order, keys):
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    for key in list(keys)[:50]:
        assert tree.search(key)
    for probe in range(0, 10**6, 99_991):
        assert tree.search(probe) == (probe in keys)
