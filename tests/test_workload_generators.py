"""Fixed-seed stability and edge cases of the workload generators.

Every sampler/picker in :mod:`repro.workload` draws from its RNG in a
documented order; these tests pin each one's fixed-seed draw sequence
(so an accidental reordering shows up as a diff, not as silently
different experiments) and exercise the degenerate parameter corners
(``key_space=1``, hot-fraction extremes, zero-length schedule
segments, transaction size 1).
"""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    MMPPSampler,
    PiecewiseSampler,
    PoissonSampler,
)
from repro.workload.keys import (
    HotspotKeys,
    MigratingHotspotKeys,
    UniformKeys,
    ZipfKeys,
    scramble_key,
    zipf_value,
)
from repro.workload.spec import (
    MMPPArrivals,
    ScheduleArrivals,
    SpikeArrivals,
    TransactionSpec,
    WorkloadSpec,
)

SEED = 42


# ----------------------------------------------------------------------
# Pinned fixed-seed draw sequences
# ----------------------------------------------------------------------
class TestPinnedSequences:

    def test_poisson_matches_legacy_expovariate_stream(self):
        sampler = PoissonSampler(0.5, random.Random(SEED))
        legacy = random.Random(SEED)
        drawn = [sampler.next_interval() for _ in range(16)]
        assert drawn == [legacy.expovariate(0.5) for _ in range(16)]

    def test_mmpp_sequence_pinned(self):
        sampler = MMPPSampler(0.5, random.Random(SEED), MMPPArrivals())
        drawn = [round(sampler.next_interval(), 6) for _ in range(6)]
        assert drawn == [0.016886, 0.214416, 0.168391, 0.889062,
                        0.752782, 1.484859]

    def test_piecewise_sequence_pinned(self):
        sampler = PiecewiseSampler(0.5, random.Random(SEED),
                                   ((10.0, 2.0), (10.0, 0.5)))
        drawn = [round(sampler.next_interval(), 6) for _ in range(6)]
        assert drawn == [1.02006, 0.025329, 0.321624, 0.252586,
                        1.333593, 1.129173]

    def test_zipf_sequence_pinned(self):
        picker = ZipfKeys(1000, random.Random(SEED), theta=0.9)
        assert [picker.pick() for _ in range(8)] == \
            [136, 0, 10, 6, 243, 171, 574, 1]

    def test_scrambled_zipf_sequence_pinned(self):
        picker = ZipfKeys(1000, random.Random(SEED), theta=0.9,
                          scramble=True)
        assert [picker.pick() for _ in range(8)] == \
            [52, 0, 180, 708, 182, 683, 751, 618]

    def test_migrating_hotspot_sequence_pinned(self):
        picker = MigratingHotspotKeys(1000, random.Random(SEED),
                                      velocity=1e-3)
        times = (0.0, 100.0, 200.0, 300.0, 400.0, 500.0)
        assert [picker.pick(now) for now in times] == \
            [6, 162, 388, 489, 689, 508]

    @pytest.mark.parametrize("make", [
        lambda rng: PoissonSampler(0.3, rng),
        lambda rng: MMPPSampler(0.3, rng, MMPPArrivals()),
        lambda rng: PiecewiseSampler(0.3, rng, ((5.0, 2.0), (5.0, 0.5))),
    ], ids=["poisson", "mmpp", "piecewise"])
    def test_samplers_deterministic_under_same_seed(self, make):
        first = make(random.Random(SEED))
        second = make(random.Random(SEED))
        assert [first.next_interval() for _ in range(32)] == \
            [second.next_interval() for _ in range(32)]


# ----------------------------------------------------------------------
# Arrival-process behaviour
# ----------------------------------------------------------------------
class TestArrivalSamplers:

    def test_mmpp_long_run_rate_is_mean_preserving(self):
        # Defaults: (3.0 * 50 + 0.5 * 200) / 250 = 1.0 x base rate.
        sampler = MMPPSampler(1.0, random.Random(SEED), MMPPArrivals())
        n = 40_000
        total = sum(sampler.next_interval() for _ in range(n))
        assert n / total == pytest.approx(1.0, rel=0.05)

    def test_piecewise_zero_rate_segments_get_no_arrivals(self):
        sampler = PiecewiseSampler(1.0, random.Random(SEED),
                                   ((10.0, 2.0), (10.0, 0.0)))
        clock = 0.0
        for _ in range(200):
            clock += sampler.next_interval()
            assert clock % 20.0 < 10.0  # never inside the dead half

    def test_piecewise_cycles_past_profile_end(self):
        sampler = PiecewiseSampler(1.0, random.Random(SEED),
                                   ((1.0, 1.0),), cycle=True)
        clock = sum(sampler.next_interval() for _ in range(50))
        assert clock > 10.0  # many cycles deep, still producing

    def test_non_cycling_profile_falls_back_to_tail_rate(self):
        # Burst of 100x for 1 unit, then tail at the base rate: the
        # stream keeps flowing long after the profile is exhausted.
        sampler = PiecewiseSampler(1.0, random.Random(SEED),
                                   ((1.0, 100.0),), cycle=False,
                                   tail_factor=1.0)
        clock = 0.0
        intervals = []
        for _ in range(300):
            gap = sampler.next_interval()
            intervals.append((clock, gap))
            clock += gap
        assert clock > 50.0
        in_burst = [g for t, g in intervals if t < 1.0]
        in_tail = [g for t, g in intervals if t > 2.0]
        assert sum(in_burst) / len(in_burst) \
            < sum(in_tail) / len(in_tail)

    def test_schedule_spec_skips_zero_length_segments(self):
        spec = ScheduleArrivals(segments=((0.0, 3.0), (10.0, 1.0),
                                          (0.0, 0.5)))
        assert spec.live_segments() == ((10.0, 1.0),)
        assert spec.factor_segments() == ((1.0, 1.0),)

    def test_schedule_spec_rejects_degenerate_schedules(self):
        with pytest.raises(ConfigurationError):
            ScheduleArrivals(segments=())
        with pytest.raises(ConfigurationError):
            ScheduleArrivals(segments=((0.0, 1.0),))  # no live segment
        with pytest.raises(ConfigurationError):
            ScheduleArrivals(segments=((10.0, 0.0),))  # never arrives
        with pytest.raises(ConfigurationError):
            ScheduleArrivals(segments=((-1.0, 1.0),))

    def test_spike_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SpikeArrivals(multiplier=0.0)
        with pytest.raises(ConfigurationError):
            SpikeArrivals(duration=0.0)
        with pytest.raises(ConfigurationError):
            SpikeArrivals(start=-1.0)

    def test_mmpp_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(on_factor=-1.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(on_factor=0.0, off_factor=0.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(mean_on=0.0)


# ----------------------------------------------------------------------
# Key pickers: edge cases
# ----------------------------------------------------------------------
class TestKeyPickerEdges:

    @pytest.mark.parametrize("make", [
        lambda rng: UniformKeys(1, rng),
        lambda rng: HotspotKeys(1, rng),
        lambda rng: ZipfKeys(1, rng),
        lambda rng: MigratingHotspotKeys(1, rng),
    ], ids=["uniform", "hotspot", "zipf", "migrating"])
    def test_key_space_of_one_always_yields_zero(self, make):
        picker = make(random.Random(SEED))
        assert all(picker.pick(float(t)) == 0 for t in range(100))

    def test_hotspot_matches_legacy_draw_order(self):
        picker = HotspotKeys(1000, random.Random(SEED))
        legacy = random.Random(SEED)
        for _ in range(500):
            if legacy.random() < 0.8:
                expected = legacy.randrange(200)
            else:
                expected = 200 + legacy.randrange(800)
            assert picker.pick() == expected

    def test_hot_fraction_extremes_rejected(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                HotspotKeys(1000, random.Random(SEED), hot_fraction=bad)

    def test_hot_probability_boundaries_allowed(self):
        rng = random.Random(SEED)
        always = HotspotKeys(1000, rng, hot_probability=1.0)
        assert all(always.pick() < 200 for _ in range(200))
        never = HotspotKeys(1000, rng, hot_probability=0.0)
        assert all(never.pick() >= 200 for _ in range(200))

    def test_tiny_hot_fraction_clamps_to_one_key(self):
        picker = HotspotKeys(10, random.Random(SEED),
                             hot_fraction=1e-9, hot_probability=1.0)
        assert picker.hot_interval() == (0, 1)
        assert all(picker.pick() == 0 for _ in range(50))

    def test_zipf_concentrates_mass_on_low_keys(self):
        picker = ZipfKeys(10_000, random.Random(SEED), theta=0.9)
        draws = [picker.pick() for _ in range(5_000)]
        assert all(0 <= key < 10_000 for key in draws)
        low_decile = sum(1 for key in draws if key < 1_000)
        assert low_decile / len(draws) > 0.5

    def test_zipf_scramble_spreads_but_stays_in_range(self):
        picker = ZipfKeys(10_000, random.Random(SEED), theta=0.9,
                          scramble=True)
        draws = [picker.pick() for _ in range(5_000)]
        assert all(0 <= key < 10_000 for key in draws)
        low_decile = sum(1 for key in draws if key < 1_000)
        assert low_decile / len(draws) < 0.3  # hot mass scattered
        assert picker.hot_interval() is None

    def test_zipf_inverse_cdf_and_scramble_primitives(self):
        assert zipf_value(0.0, 1000, 0.9) == 0
        assert 0 <= zipf_value(0.999999, 1000, 0.9) < 1000
        assert zipf_value(0.5, 1, 0.9) == 0
        seen = {scramble_key(k, 1000) for k in range(1000)}
        assert all(0 <= key < 1000 for key in seen)
        assert len(seen) > 600  # near-injective spread

    def test_migrating_hot_interval_tracks_time(self):
        picker = MigratingHotspotKeys(1000, random.Random(SEED),
                                      hot_probability=1.0,
                                      velocity=1e-3)
        assert picker.hot_interval(0.0) == (0, 200)
        start, size = picker.hot_interval(500.0)
        assert (start, size) == (500, 200)
        # Every pick lands inside the (wrapping) hot window.
        for now in (0.0, 500.0, 900.0, 1700.0):
            begin, span = picker.hot_interval(now)
            key = picker.pick(now)
            assert (key - begin) % 1000 < span

    def test_migrating_with_zero_velocity_matches_static_hotspot(self):
        moving = MigratingHotspotKeys(1000, random.Random(SEED),
                                      velocity=0.0)
        static = HotspotKeys(1000, random.Random(SEED))
        assert [moving.pick(float(t)) for t in range(300)] == \
            [static.pick() for _ in range(300)]

    def test_key_space_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformKeys(0, random.Random(SEED))


# ----------------------------------------------------------------------
# Transaction spec corner
# ----------------------------------------------------------------------
class TestTransactionSpecEdges:

    def test_size_one_is_the_default_and_vector_native(self):
        spec = WorkloadSpec(transaction=TransactionSpec(size=1))
        assert spec.is_default()
        assert spec.vector_native()

    def test_size_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionSpec(size=0)

    def test_multi_op_spec_not_vector_native(self):
        spec = WorkloadSpec(transaction=TransactionSpec(size=4))
        assert not spec.is_default()
        assert not spec.vector_native()
