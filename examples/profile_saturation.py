#!/usr/bin/env python3
"""Profiling a B-tree index as it approaches saturation.

Demonstrates the observability features a practitioner needs when an
index misbehaves: latency percentiles from the run metrics, per-level
lock-wait breakdowns (which level is the bottleneck?), the event
trace (what exactly was a slow operation doing?), and a per-phase
cProfile (where does the wall-clock go — building the tree, or running
the concurrent operations?).

Run:  python examples/profile_saturation.py
"""

import cProfile
import io
import pstats
import random

from repro.btree.builder import build_tree
from repro.des import RWLock, Simulator, TraceLog
from repro.model.params import CostModel
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector
from repro.simulator.operations import OperationContext
from repro.simulator import lock_coupling


def latency_panel() -> None:
    """Mean vs tail latencies as load approaches the knee."""
    print("Naive Lock-coupling latency panel (search), ~0.61 = saturation:")
    print(f"{'rate':>6} {'mean':>8} {'p50':>8} {'p90':>8} {'p99':>8} "
          f"{'bottleneck level (W wait)':>28}")
    for rate in (0.1, 0.3, 0.5, 0.58):
        result = run_simulation(SimulationConfig(
            algorithm="naive-lock-coupling", arrival_rate=rate,
            n_items=8_000, n_operations=1_500, warmup_operations=150,
            seed=5))
        p = result.response_percentiles["search"]
        worst_level, (_r, worst_wait) = max(
            result.mean_lock_waits.items(),
            key=lambda item: item[1][1] if item[1][1] == item[1][1] else -1)
        print(f"{rate:>6} {result.mean_response['search']:>8.2f} "
              f"{p['p50']:>8.2f} {p['p90']:>8.2f} {p['p99']:>8.2f} "
              f"{'level ' + str(worst_level):>20} ({worst_wait:.2f})")


def trace_one_operation() -> None:
    """Event-trace a single insert through a contended tree."""
    print("\nEvent trace of one insert racing a burst of searches:")
    trace = TraceLog()
    sim = Simulator(trace=trace)
    rng = random.Random(1)

    def attach(node):
        node.lock = RWLock(f"L{node.level}.{node.node_id}")

    tree = build_tree(400, order=4, key_space=1_000,
                      rng=random.Random(2), on_new_node=attach)
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    ctx = OperationContext(
        sim, tree,
        ServiceTimeSampler(CostModel(disk_cost=5.0), tree,
                           random.Random(3)),
        metrics, rng)
    for i in range(6):
        sim.spawn(lock_coupling.search(ctx, rng.randrange(1_000)),
                  name=f"search-{i}", delay=0.2 * i)
    insert_proc = sim.spawn(lock_coupling.insert(ctx, 777),
                            name="insert-777", delay=0.5)
    sim.run()
    for event in trace.timeline(insert_proc.pid):
        print(f"  {event}")


def profile_phases() -> None:
    """cProfile the two phases of a run separately: tree construction
    and the concurrent-operation DES run (top 10 by cumulative time
    each).  This is how the kernel hot-path work was located — the run
    phase concentrates in ``Simulator._step`` and the lock protocol."""
    print("\nPer-phase profile (top 10 functions by cumulative time):")
    rng = random.Random(7)

    def attach(node):
        node.lock = RWLock(f"L{node.level}.{node.node_id}")

    build_profile = cProfile.Profile()
    build_profile.enable()
    tree = build_tree(4_000, order=13, key_space=1 << 20,
                      rng=random.Random(8), on_new_node=attach)
    build_profile.disable()

    sim = Simulator()
    metrics = MetricsCollector()
    metrics.measuring = True
    metrics.measure_start_time = 0.0
    ctx = OperationContext(
        sim, tree,
        ServiceTimeSampler(CostModel(disk_cost=5.0), tree,
                           random.Random(9)),
        metrics, rng)
    for i in range(300):
        key = rng.randrange(1 << 20)
        op = lock_coupling.insert(ctx, key) if i % 3 == 0 \
            else lock_coupling.search(ctx, key)
        sim.spawn(op, name=f"op-{i}", delay=0.4 * i)
    run_profile = cProfile.Profile()
    run_profile.enable()
    sim.run()
    run_profile.disable()

    for title, profile in (("build phase (4,000 inserts)", build_profile),
                           ("run phase (300 concurrent ops)", run_profile)):
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream) \
            .sort_stats("cumulative").print_stats(10)
        print(f"\n  == {title} ==")
        for line in stream.getvalue().splitlines():
            if line.strip():
                print(f"  {line}")


def main() -> None:
    latency_panel()
    trace_one_operation()
    profile_phases()
    print("\nReading: near the knee the p99 pulls away from the median "
          "first, and the per-level\nwaits point at the root (the "
          "lock-coupling bottleneck) — the trace shows each W\nlock the "
          "insert had to queue for.  The per-phase profile separates "
          "setup cost\n(tree build) from the DES run itself, where "
          "Simulator._step dominates.")


if __name__ == "__main__":
    main()
