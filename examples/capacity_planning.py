#!/usr/bin/env python3
"""Capacity planning for a transaction-processing index.

The paper's motivating scenario (Section 1): airlines, telecoms and banks
need 1000+ transactions per second, each touching 4-6 records through
indices, giving multiprogramming levels around 100 — at which point a
restrictive index serialization technique becomes the bottleneck.

This example converts a TPS target into an index arrival rate, then asks
the framework which concurrency-control algorithm can sustain it and what
response times to expect, across disk-cost scenarios (all-cached vs two
cached levels).

Run:  python examples/capacity_planning.py
"""

from repro.model import (
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    max_throughput,
    paper_default_config,
)

#: Target transactions per second and index accesses per transaction.
TARGET_TPS = 1_000
ACCESSES_PER_TXN = 5
#: One time unit = one root search; assume 50 microseconds per root
#: search, i.e. 20,000 time units per second.
ROOT_SEARCHES_PER_SECOND = 20_000

ANALYZERS = (
    ("naive-lock-coupling", analyze_lock_coupling),
    ("optimistic-descent", analyze_optimistic),
    ("link-type", analyze_link),
)


def main() -> None:
    index_ops_per_second = TARGET_TPS * ACCESSES_PER_TXN
    arrival_rate = index_ops_per_second / ROOT_SEARCHES_PER_SECOND
    print(f"target: {TARGET_TPS:,} TPS x {ACCESSES_PER_TXN} index accesses"
          f" = {index_ops_per_second:,} index ops/s")
    print(f"with {ROOT_SEARCHES_PER_SECOND:,} root-searches/s of CPU, "
          f"that is an arrival rate of {arrival_rate:.3f} ops per "
          "root-search time\n")

    for disk_cost, label in ((1.0, "fully cached index"),
                             (5.0, "two cached levels, disk cost 5"),
                             (10.0, "two cached levels, disk cost 10")):
        config = paper_default_config(disk_cost=disk_cost)
        print(f"--- {label} ---")
        for name, analyzer in ANALYZERS:
            peak = max_throughput(analyzer, config)
            headroom = peak / arrival_rate
            prediction = analyzer(config, arrival_rate)
            if prediction.stable:
                verdict = (f"OK    insert response "
                           f"{prediction.response('insert'):7.2f}  "
                           f"(headroom {headroom:5.1f}x)")
            else:
                verdict = (f"FAILS saturates at level "
                           f"{prediction.saturated_level} "
                           f"(max {peak:.3f} < needed {arrival_rate:.3f})")
            print(f"  {name:<22} {verdict}")
        print()

    print("Conclusion (matches the paper): lock-coupling techniques "
          "bottleneck on the root at\nhigh multiprogramming levels; the "
          "Link-type algorithm sustains the target with large margin.")


if __name__ == "__main__":
    main()
