#!/usr/bin/env python3
"""Choosing a B-tree node size for a concurrent index.

The paper's Section 6 design guidance: the maximum throughput of Naive
Lock-coupling is limited by the root search time, which *grows* with the
node size, so Naive wants small nodes; Optimistic Descent's writers are
the rare redo operations (rate ~ q_i Pr[F(1)] ~ 1/N), so Optimistic wants
nodes as large as possible (throughput ~ N / log^2 N).

This example sweeps node sizes for a 1M-key index with a binary-searched
root (root search time a + b log2 N) and prints the achievable effective
maximum arrival rates, reproducing the crossover that drives the design
rule.

Run:  python examples/index_sizing.py
"""

import math

from repro.model import (
    ModelConfig,
    analyze_lock_coupling,
    analyze_optimistic,
    arrival_rate_for_root_utilization,
    paper_default_config,
)
from repro.model.params import CostModel, TreeShape

N_KEYS = 1_000_000
NODE_SIZES = (13, 31, 59, 101, 201, 401)


def config_for(order: int) -> ModelConfig:
    """Configuration with a binary-search root cost a + b*log2(N)."""
    base = paper_default_config()
    search_time = 0.5 + 0.5 * math.log2(order)
    costs = CostModel(node_search_time=search_time, disk_cost=5.0,
                      in_memory_levels=2)
    return ModelConfig(mix=base.mix, costs=costs,
                       shape=TreeShape.ideal(N_KEYS, order), order=order)


def effective_max(analyzer, config: ModelConfig) -> float:
    return arrival_rate_for_root_utilization(analyzer, config, target=0.5)


def main() -> None:
    print(f"Index of {N_KEYS:,} keys, root search = 0.5 + 0.5*log2(N), "
          "disk cost 5, mix (.3,.5,.2)\n")
    print(f"{'node size':>9} {'height':>6} {'naive max rate':>15} "
          f"{'optimistic max rate':>20} {'optimistic / naive':>19}")
    best = None
    for order in NODE_SIZES:
        config = config_for(order)
        naive = effective_max(analyze_lock_coupling, config)
        optimistic = effective_max(analyze_optimistic, config)
        ratio = optimistic / naive
        if best is None or optimistic > best[1]:
            best = (order, optimistic)
        print(f"{order:>9} {config.height:>6} {naive:>15.4f} "
              f"{optimistic:>20.4f} {ratio:>18.1f}x")
    print(f"\nDesign rule reproduced: Naive Lock-coupling is insensitive "
          f"to (or hurt by) larger nodes,\nwhile Optimistic Descent keeps "
          f"gaining — best node size tried: {best[0]} "
          f"({best[1]:.2f} ops/unit).")


if __name__ == "__main__":
    main()
