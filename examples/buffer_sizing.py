#!/usr/bin/env python3
"""Sizing a buffer pool for a concurrent B-tree index.

The paper fixes "the two top levels in memory"; its conclusions promise
an LRU-buffering discussion for the full version.  This example supplies
it: sweep the buffer-pool size, compute per-level LRU hit rates, feed
the resulting fractional access-time dilations into the framework, and
watch the maximum throughput saturate — the knee lands exactly where the
top index levels fit, which is why the paper's fixed choice is the right
one.

Run:  python examples/buffer_sizing.py
"""

from repro.model import (
    analyze_lock_coupling,
    analyze_optimistic,
    max_throughput,
    paper_default_config,
)
from repro.model.buffering import (
    buffered_config,
    pages_for_top_levels,
    plan_buffer,
)

BUFFER_SIZES = (0, 2, 7, 60, 550, 5000)


def main() -> None:
    config = paper_default_config(disk_cost=10.0)
    shape = config.shape
    print(f"tree: {shape.height} levels, pages per level "
          f"{[round(shape.nodes_at(l)) for l in range(1, shape.height + 1)]} "
          f"(leaf first), raw disk cost {config.costs.disk_cost:g}\n")
    print(f"{'frames':>7} {'per-level hit rates (leaf..root)':<38} "
          f"{'naive max':>10} {'optimistic max':>15}")
    for frames in BUFFER_SIZES:
        buffered = buffered_config(config, frames)
        plan = plan_buffer(shape, frames)
        hits = "[" + ", ".join(f"{h:.2f}" for h in plan.hit_rates) + "]"
        naive = max_throughput(analyze_lock_coupling, buffered)
        optimistic = max_throughput(analyze_optimistic, buffered)
        print(f"{frames:>7} {hits:<38} {naive:>10.3f} {optimistic:>15.3f}")

    top2 = pages_for_top_levels(shape, 2)
    print(f"\nCaching just the top two levels needs ~{top2:.0f} frames and "
          "already delivers most of the\nachievable throughput; past that "
          "the buffer chases thousands of cold leaf pages for\nper-cent "
          "gains — the quantitative case for the paper's 'two levels in "
          "memory' setting.")


if __name__ == "__main__":
    main()
