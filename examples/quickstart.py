#!/usr/bin/env python3
"""Quickstart: predict and simulate concurrent B-tree performance.

Builds the paper's default configuration (a ~40,000-item B-tree of order
13, two levels cached, disk cost 5, mix 30% search / 50% insert / 20%
delete), asks the analytical model for response times and maximum
throughput of the three algorithms, and cross-checks one point against
the discrete-event simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    SimulationConfig,
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    max_throughput,
    paper_default_config,
    run_simulation,
)

ANALYZERS = {
    "naive-lock-coupling": analyze_lock_coupling,
    "optimistic-descent": analyze_optimistic,
    "link-type": analyze_link,
}


def main() -> None:
    config = paper_default_config()
    print(f"tree: height {config.height}, order {config.order}, "
          f"root fanout {config.shape.root_fanout:.1f}, disk cost "
          f"{config.costs.disk_cost:g}\n")

    print("Analytical predictions at arrival rate 0.3 ops/time-unit:")
    print(f"{'algorithm':<22} {'search':>8} {'insert':>8} {'delete':>8} "
          f"{'max throughput':>15}")
    for name, analyzer in ANALYZERS.items():
        prediction = analyzer(config, 0.3)
        peak = max_throughput(analyzer, config)
        print(f"{name:<22} {prediction.response('search'):>8.2f} "
              f"{prediction.response('insert'):>8.2f} "
              f"{prediction.response('delete'):>8.2f} {peak:>15.2f}")

    print("\nCross-check against the simulator (naive-lock-coupling, "
          "2,000 measured operations):")
    sim = run_simulation(SimulationConfig(
        algorithm="naive-lock-coupling", arrival_rate=0.3,
        n_operations=2_000, warmup_operations=200, seed=42))
    model = analyze_lock_coupling(config, 0.3)
    for op in ("search", "insert", "delete"):
        print(f"  {op:<7} model {model.response(op):6.2f}   "
              f"simulated {sim.mean_response[op]:6.2f}")
    print(f"  measured root writer utilization: "
          f"{sim.root_writer_utilization:.3f} "
          f"(model: {model.root_writer_utilization:.3f})")


if __name__ == "__main__":
    main()
