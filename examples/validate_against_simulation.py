#!/usr/bin/env python3
"""Reproduce the paper's validation methodology end to end.

For each algorithm, sweep the arrival rate, run the analytical model and
the discrete-event simulator side by side (several seeds each, as the
paper runs 5 per setting), and print the comparison table — the
programmatic equivalent of the paper's Figures 3-8 overlays.

Run:  python examples/validate_against_simulation.py [--full]
      (--full uses the paper's 10,000 measured operations; the default
       is a quicker 2,000-operation version)
"""

import sys

from repro.experiments.figures import fig03, fig04, fig05, fig06, fig07, fig08
from repro.experiments.report import print_tables


def main() -> None:
    scale = 1.0 if "--full" in sys.argv[1:] else 0.2
    print(f"running at scale={scale} "
          f"({'paper' if scale == 1.0 else 'quick'} settings)\n")
    tables = [
        figure(scale=scale, simulate=True)
        for figure in (fig03, fig04, fig05, fig06, fig07, fig08)
    ]
    print_tables(tables)
    print("Shape check: every simulated series should sit close to its "
          "analytical series at low and\nmoderate load and bend up at the "
          "same knee — 'the analysis and the simulation predict the\nsame "
          "response times' (paper Section 5.3).")


if __name__ == "__main__":
    main()
