#!/usr/bin/env python3
"""Is a separate index-locking protocol worth it? (paper Section 7)

Database recovery managers hold a transaction's exclusive locks until
commit.  Applied naively to B-tree index nodes, that retention strangles
the index.  Shasha's observation: only *leaf* locks need to be retained
for correct recovery.  This example quantifies the difference by sweeping
the remaining-transaction time T_trans and reporting each policy's
effective maximum arrival rate and the response-time penalty at a fixed
load, for the paper's D=10 configuration.

Run:  python examples/recovery_tradeoff.py
"""

import math

from repro.errors import ConvergenceError
from repro.model import (
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    analyze_optimistic_with_recovery,
    arrival_rate_for_root_utilization,
    paper_default_config,
)

POLICIES = (NO_RECOVERY, LEAF_ONLY_RECOVERY, NAIVE_RECOVERY)
T_TRANS_VALUES = (25.0, 50.0, 100.0, 200.0, 400.0)
PROBE_RATE = 0.25


def effective_max(config, policy, t_trans) -> float:
    try:
        return arrival_rate_for_root_utilization(
            analyze_optimistic_with_recovery, config, target=0.5,
            policy=policy, t_trans=t_trans)
    except ConvergenceError:
        return math.inf


def main() -> None:
    config = paper_default_config(disk_cost=10.0)
    print("Optimistic Descent under recovery lock retention "
          "(D=10, N=13, 5 levels)\n")
    print(f"{'T_trans':>8} | " + " | ".join(
        f"{policy.name:>22}" for policy in POLICIES))
    print(f"{'':>8} | " + " | ".join(
        f"{'max rate / resp@' + str(PROBE_RATE):>22}" for _ in POLICIES))
    print("-" * 86)
    for t_trans in T_TRANS_VALUES:
        cells = []
        for policy in POLICIES:
            peak = effective_max(config, policy, t_trans)
            prediction = analyze_optimistic_with_recovery(
                config, PROBE_RATE, policy=policy, t_trans=t_trans)
            response = prediction.response("insert")
            resp = f"{response:.1f}" if prediction.stable else "sat."
            cells.append(f"{peak:8.3f} / {resp:>9}")
        print(f"{t_trans:>8g} | " + " | ".join(f"{c:>22}" for c in cells))

    print("\nReading the table: leaf-only recovery tracks the no-recovery "
          "baseline closely at every\ntransaction length, while naive "
          "recovery loses most of its throughput — the paper's case\nfor "
          "using a dedicated (leaf-only) locking protocol on index nodes.")


if __name__ == "__main__":
    main()
