"""Benchmark: regenerate Figure 15 (recovery policies, N=13, 5 levels,
D=10, T_trans=100)."""

import math

from benchmarks.conftest import run_figure


def test_fig15_recovery_n13(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig15", figure_scale)
    for rate, none, leaf, naive in table.rows:
        if math.isinf(none):
            continue
        assert none <= leaf * 1.001
        if not math.isinf(naive):
            assert leaf <= naive * 1.001
    # Naive recovery saturates strictly earlier than leaf-only.
    naive_sat = sum(1 for v in table.column("naive_recovery_insert")
                    if math.isinf(v))
    leaf_sat = sum(1 for v in table.column("leaf_only_insert")
                   if math.isinf(v))
    assert naive_sat > leaf_sat
