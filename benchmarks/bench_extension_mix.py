"""Benchmark: the operation-mix sensitivity sweep (ext03)."""

from benchmarks.conftest import run_figure


def test_ext03_mix_sensitivity(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "ext03", figure_scale)
    for column in ("two_phase_max_throughput", "naive_max_throughput",
                   "optimistic_max_throughput", "link_max_throughput"):
        series = table.column(column)
        assert all(a < b for a, b in zip(series, series[1:]))
    # The ordering is mix-invariant.
    for row in table.rows:
        _qs, two_phase, naive, optimistic, link = row
        assert two_phase < naive < optimistic < link
