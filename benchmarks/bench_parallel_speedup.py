"""Smoke benchmark: serial vs parallel regeneration of one figure.

Regenerates Figure 3 twice at the configured ``--figure-scale``
(default 0.05) — once serially, once on a worker pool — asserts the two
series are identical (the parallel layer's determinism contract), and
records both wall times to ``benchmarks/results/parallel_speedup.txt``.

The parallel leg uses ``--jobs`` when given (> 1), else
``min(4, cpu count)``.  No result cache is involved: both legs compute
every point, so the recorded ratio is pure fan-out speedup.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import RESULTS_DIR

from repro.experiments.registry import get_experiment
from repro.parallel import execution


def _regenerate(scale: float, jobs: int):
    experiment = get_experiment("fig03")
    with execution(jobs=jobs, cache=None):
        start = time.perf_counter()
        table = experiment.run(scale=scale, simulate=True)
        elapsed = time.perf_counter() - start
    return table, elapsed


def test_parallel_speedup(benchmark, figure_scale, figure_jobs):
    jobs = figure_jobs if figure_jobs > 1 else min(4, os.cpu_count() or 1)

    serial_table, serial_time = _regenerate(figure_scale, jobs=1)

    def parallel_run():
        return _regenerate(figure_scale, jobs=jobs)

    parallel_table, parallel_time = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1)

    # Determinism contract: fan-out must not change a single value.
    assert parallel_table.rows == serial_table.rows

    speedup = serial_time / parallel_time if parallel_time > 0 else 1.0
    lines = [
        "parallel sweep smoke benchmark (fig03, no cache)",
        f"figure_scale     {figure_scale}",
        f"jobs             {jobs}",
        f"cpus             {os.cpu_count()}",
        f"serial_seconds   {serial_time:.3f}",
        f"parallel_seconds {parallel_time:.3f}",
        f"speedup          {speedup:.2f}x",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / "parallel_speedup.txt").write_text(text)
    print("\n" + text)
