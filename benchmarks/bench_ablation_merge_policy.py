"""Ablation: merge-at-empty vs merge-at-half restructuring rates.

Justifies the paper's Section 3.2 choice (after Johnson & Shasha's
PODS'89 result): with more inserts than deletes, merge-at-empty
restructures dramatically less often while giving up only a little
space utilization — which is why every concurrent algorithm in the
paper uses it.
"""

import random

from repro.btree import BPlusTree, MERGE_AT_EMPTY, MERGE_AT_HALF
from repro.btree.stats import collect_statistics
from repro.experiments.common import ExperimentTable

N_OPS = 30_000
ORDER = 13
INSERT_FRACTION = 5.0 / 7.0  # the paper mix's update split


def _drive(policy, seed: int = 0):
    rng = random.Random(seed)
    tree = BPlusTree(order=ORDER, merge_policy=policy)
    present = []
    for _ in range(N_OPS):
        if rng.random() < INSERT_FRACTION or not present:
            key = rng.randrange(1 << 30)
            if tree.insert(key):
                present.append(key)
        else:
            index = rng.randrange(len(present))
            key = present[index]
            present[index] = present[-1]
            present.pop()
            tree.delete(key)
    return tree


def test_ablation_merge_policy(benchmark, record_table):
    def run():
        return {policy.name: _drive(policy)
                for policy in (MERGE_AT_EMPTY, MERGE_AT_HALF)}

    trees = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "ablation_merge_policy",
        "Restructuring rate and utilization: merge-at-empty vs merge-at-half",
        "Section 3.2 ablation",
        ["policy", "merges_per_1k_ops", "splits_per_1k_ops",
         "fill_factor", "n_items"])
    rows = {}
    for name, tree in trees.items():
        stats = collect_statistics(tree)
        rows[name] = (tree.merge_count, stats.fill_factor())
        table.add(name,
                  round(1000.0 * tree.merge_count / N_OPS, 3),
                  round(1000.0 * tree.split_count / N_OPS, 3),
                  round(stats.fill_factor(), 4),
                  len(tree))
    table.note("paper claim: merge-at-empty restructures far less often "
               "for a slightly lower utilization (inserts > deletes)")
    record_table(table)

    empty_merges, empty_fill = rows["merge-at-empty"]
    half_merges, half_fill = rows["merge-at-half"]
    assert empty_merges < 0.25 * half_merges
    assert empty_fill > half_fill - 0.12
