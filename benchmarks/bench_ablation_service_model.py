"""Ablation: Theorem 3's hyperexponential lock-coupling server vs a
plain exponential approximation.

The paper argues lock-coupling gives service times "a large variance",
so they cannot be modelled as exponential (Figure 2 / Theorem 3).  This
ablation quantifies how much waiting the exponential short-cut misses,
against the simulator as ground truth near the knee.
"""

from repro.experiments.common import ExperimentTable
from repro.model import analyze_lock_coupling, paper_default_config
from repro.simulator import SimulationConfig, run_simulation

RATES = (0.2, 0.35, 0.45, 0.5)


def test_ablation_service_model(benchmark, record_table, figure_scale):
    config = paper_default_config()

    def run():
        rows = []
        base_sim = SimulationConfig(algorithm="naive-lock-coupling",
                                    arrival_rate=0.1).scaled(figure_scale)
        for rate in RATES:
            hyper = analyze_lock_coupling(config, rate)
            expo = analyze_lock_coupling(config, rate,
                                         service_model="exponential")
            sim = run_simulation(base_sim.with_rate(rate))
            rows.append((rate,
                         round(hyper.response("insert"), 3),
                         round(expo.response("insert"), 3),
                         round(sim.mean_response["insert"], 3)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "ablation_service_model",
        "Naive LC insert response: hyperexponential vs exponential "
        "service modelling",
        "Theorem 3 ablation",
        ["arrival_rate", "hyperexponential", "exponential", "simulated"])
    for row in rows:
        table.add(*row)
    table.note("the exponential short-cut under-predicts waiting near "
               "the knee; Theorem 3's variance term closes the gap")
    record_table(table)

    for rate, hyper, expo, _sim in rows:
        assert hyper >= expo  # variance only adds waiting
    # The gap matters where it counts: at the highest plotted load the
    # hyperexponential model predicts visibly more waiting.
    assert rows[-1][1] > 1.02 * rows[-1][2]
