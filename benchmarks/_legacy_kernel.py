"""The pre-optimization DES kernel, preserved as a benchmark baseline.

This is a faithful, self-contained copy of the hot path of
``repro.des`` as it stood before the allocation-free kernel overhaul
(see ``docs/performance.md``, "Kernel hot path"):

* ``Hold`` / ``Acquire`` / ``Release`` are frozen dataclasses allocated
  per yield;
* the step loop dispatches through an ``isinstance`` chain;
* every scheduled event is a zero-argument closure (``resume`` allocates
  a lambda per lock wakeup);
* ``RWLock.writer_waiting`` scans the wait queue, and the clock advance
  calls it on every request/release.

``benchmarks/bench_kernel.py`` runs the same pure lock-contention
workload through this kernel and through ``repro.des`` and records both
events/sec numbers in ``BENCH_kernel.json``, so the speedup is measured
on the same machine at the same moment rather than against a stale
number.  Nothing outside the benchmark imports this module.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Hold:
    duration: float


@dataclass(frozen=True)
class Acquire:
    lock: "LegacyRWLock"
    mode: str


@dataclass(frozen=True)
class Release:
    lock: "LegacyRWLock"


READ = "R"
WRITE = "W"


class LegacyProcess:
    __slots__ = ("generator", "done")

    def __init__(self, generator):
        self.generator = generator
        self.done = False


@dataclass
class LegacyLockRequest:
    process: LegacyProcess
    mode: str
    requested_at: float
    granted_at: float = None  # type: ignore[assignment]

    @property
    def wait(self):
        return self.granted_at - self.requested_at


class LegacySimulator:
    """The seed kernel's event loop: closure events, isinstance dispatch."""

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._sequence = 0

    @property
    def now(self):
        return self._now

    @property
    def events_executed(self):
        """Events scheduled == events executed once the heap drains."""
        return self._sequence

    def schedule(self, delay, action):
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, action))

    def spawn(self, generator):
        process = LegacyProcess(generator)
        self.schedule(0.0, lambda: self._step(process, None))
        return process

    def resume(self, process, value=None, delay=0.0):
        self.schedule(delay, lambda: self._step(process, value))

    def run(self):
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _seq, action = heappop(heap)
            self._now = time
            action()
        return self._now

    def _step(self, process, send_value):
        send = process.generator.send
        while True:
            try:
                command = send(send_value)
            except StopIteration:
                process.done = True
                return
            if isinstance(command, Hold):
                if command.duration == 0.0:
                    send_value = None
                    continue
                self.resume(process, None, delay=command.duration)
                return
            if isinstance(command, Release):
                command.lock.release(self, process)
                send_value = None
                continue
            if isinstance(command, Acquire):
                granted = command.lock.request(self, process, command.mode)
                if granted:
                    send_value = 0.0
                    continue
                return
            raise RuntimeError(f"unsupported command {command!r}")


class LegacyRWLock:
    """The seed FCFS R/W lock: queue-scan writer_waiting on every clock
    advance, per-request dataclass allocations."""

    __slots__ = ("_readers", "_writer", "_queue", "_last_change",
                 "time_writer_held", "time_writer_present", "time_held_any",
                 "grants_read", "grants_write")

    def __init__(self):
        self._readers = set()
        self._writer = None
        self._queue = deque()
        self._last_change = 0.0
        self.time_writer_held = 0.0
        self.time_writer_present = 0.0
        self.time_held_any = 0.0
        self.grants_read = 0
        self.grants_write = 0

    def writer_waiting(self):
        return any(req.mode == WRITE for req in self._queue)

    def _compatible(self, mode):
        if mode == READ:
            return self._writer is None
        return self._writer is None and not self._readers

    def _admit(self, process, mode):
        if mode == READ:
            self._readers.add(process)
            self.grants_read += 1
        else:
            self._writer = process
            self.grants_write += 1

    def request(self, sim, process, mode):
        self._advance_clocks(sim.now)
        if not self._queue and self._compatible(mode):
            self._admit(process, mode)
            return True
        self._queue.append(LegacyLockRequest(process, mode, sim.now))
        return False

    def release(self, sim, process):
        self._advance_clocks(sim.now)
        if self._writer is process:
            self._writer = None
        else:
            self._readers.remove(process)
        self._dispatch(sim)

    def _dispatch(self, sim):
        while self._queue:
            head = self._queue[0]
            if not self._compatible(head.mode):
                break
            self._queue.popleft()
            self._admit(head.process, head.mode)
            head.granted_at = sim.now
            sim.resume(head.process, head.wait)
            if head.mode == WRITE:
                break

    def _advance_clocks(self, now):
        dt = now - self._last_change
        if dt > 0.0:
            if self._writer is not None:
                self.time_writer_held += dt
            if self._writer is not None or self.writer_waiting():
                self.time_writer_present += dt
            if self._writer is not None or self._readers:
                self.time_held_any += dt
        self._last_change = now
