"""Benchmark: regenerate Figure 10 (root writer utilization, Naive LC).

The paper's observation: rho_w grows super-linearly with the arrival
rate — going from .5 to 1 takes less than a 50% rate increase.
"""

import math

from benchmarks.conftest import run_figure


def test_fig10_root_utilization(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig10", figure_scale,
                       simulate=True)
    rhos = [v for v in table.column("model_rho_w_root")
            if not math.isinf(v)]
    rates = table.column("arrival_rate")[: len(rhos)]
    assert all(a < b for a, b in zip(rhos, rhos[1:]))
    # Super-linear growth: utilization more than doubles when the rate
    # doubles (compare the first point against one at ~4x the rate).
    assert rhos[3] > 2.0 * rhos[1] * (rates[3] / rates[1]) / 2.0
