"""Benchmark: the Two-Phase Locking extension comparison (ext01) with a
simulated 2PL column — the full restrictive-to-concurrent spectrum."""

import math

from benchmarks.conftest import run_figure


def test_ext01_two_phase(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "ext01", figure_scale,
                       simulate=True)
    two_phase = table.column("two_phase_insert")
    link = table.column("link_insert")
    # 2PL saturates within the plotted range; Link never does.
    assert any(math.isinf(v) for v in two_phase)
    assert not any(math.isinf(v) for v in link)
