"""Benchmark: regenerate Figure 13 (Naive LC rules of thumb vs the full
analysis, sweeping node size for D in {1, 10})."""

from benchmarks.conftest import run_figure


def test_fig13_thumb_naive(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig13", figure_scale)
    for order, disk_cost, analytical, thumb, limit in table.rows:
        assert 0 < thumb <= limit * 1.0001
        if disk_cost == 1.0:
            # In memory the rule of thumb tracks the analysis closely.
            assert abs(thumb - analytical) / analytical < 0.35
