"""Benchmark: the LRU buffering extension sweep (ext02)."""

from benchmarks.conftest import run_figure


def test_ext02_buffering(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "ext02", figure_scale)
    naive = table.column("naive_max_throughput")
    frames = table.column("buffer_frames")
    assert all(a <= b for a, b in zip(naive, naive[1:]))
    # The knee: with raw disk cost 10, the ~7 frames caching the top two
    # levels already multiply the zero-buffer throughput several-fold,
    # and the remaining thousands of frames add less than that again.
    top2_index = next(i for i, f in enumerate(frames) if f >= 7.0)
    assert naive[top2_index] > 3.0 * naive[0]
    assert naive[-1] - naive[top2_index] < naive[top2_index] - naive[0] + 0.2
