"""Ablation: Theorem 6's FCFS R/W queue approximation vs a direct
discrete-event simulation of the queue.

The appendix analysis (Johnson, SIGMETRICS '90) is the foundation every
per-level prediction rests on; this benchmark validates it in isolation
— Poisson readers/writers against one RWLock — for several load points.
"""

import random

from repro.des import Acquire, Hold, READ, RWLock, Release, Simulator, WRITE
from repro.experiments.common import ExperimentTable
from repro.model.rwqueue import RWQueueInput, solve_rw_queue

#: (lambda_r, lambda_w, mu_r, mu_w) load points from light to heavy.
POINTS = (
    (0.3, 0.1, 1.0, 1.0),
    (0.6, 0.2, 1.0, 1.0),
    (0.9, 0.3, 1.0, 1.0),
    (0.3, 0.45, 1.0, 1.0),
)
N_CUSTOMERS = 40_000


def _simulate_queue(lambda_r, lambda_w, mu_r, mu_w, seed=7):
    rng = random.Random(seed)
    sim = Simulator()
    lock = RWLock("standalone")
    waits = {"R": [], "W": []}

    def customer(mode, hold_mean):
        wait = yield Acquire(lock, mode)
        waits[mode].append(wait)
        yield Hold(rng.expovariate(1.0 / hold_mean))
        yield Release(lock)

    t = 0.0
    total = lambda_r + lambda_w
    for _ in range(N_CUSTOMERS):
        t += rng.expovariate(total)
        if rng.random() < lambda_r / total:
            sim.spawn(customer(READ, 1.0 / mu_r), delay=t)
        else:
            sim.spawn(customer(WRITE, 1.0 / mu_w), delay=t)
    sim.run()
    lock.finalize(sim.now)
    rho_sim = lock.time_writer_present / sim.now
    mean_w_wait = sum(waits["W"]) / len(waits["W"])
    return rho_sim, mean_w_wait


def test_ablation_rwqueue(benchmark, record_table):
    def run():
        rows = []
        for lambda_r, lambda_w, mu_r, mu_w in POINTS:
            solution = solve_rw_queue(
                RWQueueInput(lambda_r, lambda_w, mu_r, mu_w))
            rho_sim, w_wait = _simulate_queue(lambda_r, lambda_w,
                                              mu_r, mu_w)
            rows.append((lambda_r, lambda_w,
                         round(solution.rho_w, 4), round(rho_sim, 4),
                         round(w_wait, 3)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "ablation_rwqueue",
        "Theorem 6 fixed point vs direct FCFS R/W queue simulation",
        "Appendix ablation",
        ["lambda_r", "lambda_w", "rho_w_model", "rho_w_simulated",
         "sim_mean_W_wait"])
    for row in rows:
        table.add(*row)
    table.note("rho_w_simulated measures writer presence (holding or "
               "queued); the approximation tracks it across loads")
    record_table(table)

    for _lr, _lw, rho_model, rho_sim, _w in rows:
        assert rho_sim == rho_model or \
            abs(rho_sim - rho_model) / rho_model < 0.35
    # Ordering across load points is preserved exactly.
    model_order = sorted(range(len(rows)), key=lambda i: rows[i][2])
    sim_order = sorted(range(len(rows)), key=lambda i: rows[i][3])
    assert model_order == sim_order
