"""Kernel performance regression benchmark → ``BENCH_kernel.json``.

Two layers of measurement:

1. **Lock-contention microbench** — a pure acquire/hold/release workload
   (no B-tree, no RNG) run through both the current ``repro.des`` kernel
   and the pre-optimization baseline preserved in
   :mod:`benchmarks._legacy_kernel`.  Both kernels execute the *same*
   logical event sequence (asserted), so events/sec is an
   apples-to-apples measure of pure kernel overhead and the recorded
   ``speedup`` is the regression gate for the hot-path work.

2. **End-to-end ops/sec per algorithm** — wall-clock operations per
   second of :func:`repro.simulator.run_simulation` at a fixed small
   scale for the three core algorithms.  These track whole-stack
   throughput (tree + locks + metrics on top of the kernel).

Results land in a versioned ``BENCH_kernel.json`` at the repo root
(schema documented in ``docs/performance.md``); CI runs this at
``--scale 0.05`` as a smoke test and uploads the artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--scale 1.0]
        [--repeat 3] [--out BENCH_kernel.json] [--min-speedup 0]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import _legacy_kernel as legacy  # noqa: E402
from repro.des.engine import Simulator  # noqa: E402
from repro.des.rwlock import RWLock  # noqa: E402
from repro.simulator import SimulationConfig, run_simulation  # noqa: E402

#: Bump when the JSON layout changes.
SCHEMA_VERSION = 1

#: Microbench shape: N_PROCS processes contend for one lock; every
#: fourth is a writer.  Hold/think times are deterministic (pure
#: function of indices) so both kernels replay the identical schedule.
N_PROCS = 32
BASE_ITERS = 4_000

ALGO_BENCHES = ("naive-lock-coupling", "optimistic-descent", "link-type")


def _hold(i: int, j: int) -> float:
    return 0.001 * ((i * 13 + j * 7) % 10 + 1)


def _think(i: int, j: int) -> float:
    return 0.0005 * ((i + 3 * j) % 7 + 1)


def _worker_new(lock: RWLock, i: int, iters: int):
    acquire = lock.acquire_write if i % 4 == 0 else lock.acquire_read
    release = lock.release_cmd
    for j in range(iters):
        yield acquire
        yield _hold(i, j)
        yield release
        yield _think(i, j)


def _worker_legacy(lock: "legacy.LegacyRWLock", i: int, iters: int):
    mode = legacy.WRITE if i % 4 == 0 else legacy.READ
    for j in range(iters):
        yield legacy.Acquire(lock, mode)
        yield legacy.Hold(_hold(i, j))
        yield legacy.Release(lock)
        yield legacy.Hold(_think(i, j))


def _run_new(iters: int):
    sim = Simulator()
    lock = RWLock("bench")
    for i in range(N_PROCS):
        sim.spawn(_worker_new(lock, i, iters))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim._sequence, wall, sim.now, lock.grants_write


def _run_legacy(iters: int):
    sim = legacy.LegacySimulator()
    lock = legacy.LegacyRWLock()
    for i in range(N_PROCS):
        sim.spawn(_worker_legacy(lock, i, iters))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_executed, wall, sim.now, lock.grants_write


def bench_lock_contention(scale: float, repeat: int) -> dict:
    """Events/sec on the pure lock workload, current vs legacy kernel."""
    iters = max(10, int(BASE_ITERS * scale))
    best_new = best_legacy = float("inf")
    events = events_legacy = 0
    for _ in range(repeat):
        n_events, wall, end_new, writes_new = _run_new(iters)
        l_events, l_wall, end_legacy, writes_legacy = _run_legacy(iters)
        # Same schedule on both kernels, or the comparison is meaningless.
        assert n_events == l_events, (n_events, l_events)
        assert end_new == end_legacy, (end_new, end_legacy)
        assert writes_new == writes_legacy, (writes_new, writes_legacy)
        events, events_legacy = n_events, l_events
        best_new = min(best_new, wall)
        best_legacy = min(best_legacy, l_wall)
    eps = events / best_new
    eps_baseline = events_legacy / best_legacy
    return {
        "name": "lock_contention_microbench",
        "kind": "kernel_events",
        "scale": scale,
        "processes": N_PROCS,
        "iterations_per_process": iters,
        "events": events,
        "wall_s": round(best_new, 6),
        "baseline_wall_s": round(best_legacy, 6),
        "events_per_sec": round(eps, 1),
        "baseline_events_per_sec": round(eps_baseline, 1),
        "speedup": round(eps / eps_baseline, 3),
    }


def bench_algorithm(algorithm: str, scale: float) -> dict:
    """Wall-clock ops/sec of one full-stack simulator run."""
    n_operations = max(50, int(4_000 * scale))
    config = SimulationConfig(
        algorithm=algorithm,
        arrival_rate=0.05,
        n_items=max(500, int(20_000 * scale)),
        n_operations=n_operations,
        warmup_operations=max(10, int(400 * scale)),
        seed=12345,
    )
    start = time.perf_counter()
    result = run_simulation(config)
    wall = time.perf_counter() - start
    return {
        "name": f"ops_{algorithm}",
        "kind": "simulator_ops",
        "algorithm": algorithm,
        "scale": scale,
        "n_operations": n_operations,
        "n_items": config.n_items,
        "measured_operations": result.measured_operations,
        "overflowed": result.overflowed,
        "wall_s": round(wall, 6),
        "ops_per_sec": round(n_operations / wall, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload multiplier (CI smoke uses 0.05)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="microbench repetitions (best-of wall time)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if the microbench speedup is "
                             "below this (0 disables the gate)")
    args = parser.parse_args(argv)

    benches = [bench_lock_contention(args.scale, args.repeat)]
    print(f"[kernel]  {benches[0]['events_per_sec']:>12,.0f} ev/s  "
          f"(baseline {benches[0]['baseline_events_per_sec']:,.0f} ev/s, "
          f"speedup {benches[0]['speedup']:.2f}x)")
    for algorithm in ALGO_BENCHES:
        bench = bench_algorithm(algorithm, args.scale)
        benches.append(bench)
        print(f"[{algorithm:>22}]  {bench['ops_per_sec']:>9,.0f} ops/s  "
              f"({bench['wall_s']:.2f}s wall)")

    payload = {
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "benches": benches,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    speedup = benches[0]["speedup"]
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
