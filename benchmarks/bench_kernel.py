"""Kernel performance regression benchmark → ``BENCH_kernel.json``.

Two layers of measurement:

1. **Lock-contention microbench** — a pure acquire/hold/release workload
   (no B-tree, no RNG) run through both the current ``repro.des`` kernel
   and the pre-optimization baseline preserved in
   :mod:`benchmarks._legacy_kernel`.  Both kernels execute the *same*
   logical event sequence (asserted), so events/sec is an
   apples-to-apples measure of pure kernel overhead and the recorded
   ``speedup`` is the regression gate for the hot-path work.

2. **Vectorized batch kernel** — the same lock-contention workload run
   through the numpy struct-of-arrays kernel (:mod:`repro.des.vector`)
   at several batch widths, against a freshly measured scalar-kernel
   oracle on the identical workload.  ``speedup_vs_scalar`` is the
   per-dispatch amortization win; lane 0 is spot-checked bit-identical
   against the oracle inside the bench itself.

3. **Vectorized B-tree descent kernel** — full search/insert
   replications (lock-coupled and optimistic descents, node occupancy,
   splits, redo descents) through :mod:`repro.des.vector_btree` at
   several batch widths *and* at the width the measured cost model
   picks (:mod:`repro.des.autotune`), against the scalar
   simulator-oracle baseline on the identical schedule.  Lane 0 is
   asserted bit-identical in-bench; the ``autotuned`` entries are the
   ``--min-vec-speedup`` gate's subject alongside the lock microbench.

4. **End-to-end ops/sec per algorithm** — wall-clock operations per
   second of :func:`repro.simulator.run_simulation` at a fixed small
   scale for the three core algorithms.  These track whole-stack
   throughput (tree + locks + metrics on top of the kernel).

Results land in a versioned ``BENCH_kernel.json`` at the repo root
(schema documented in ``docs/performance.md``); every bench entry
carries its own ``generated_at`` and ``git_rev``, so a partially
regenerated file can no longer masquerade as a single snapshot.  CI
runs this at ``--scale 0.05`` as a smoke test and uploads the
artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--scale 1.0]
        [--repeat 3] [--out BENCH_kernel.json] [--min-speedup 0]
        [--min-vec-speedup 0]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import _legacy_kernel as legacy  # noqa: E402
from repro.des.engine import Simulator  # noqa: E402
from repro.des.rwlock import RWLock  # noqa: E402
from repro.simulator import SimulationConfig, run_simulation  # noqa: E402

#: Bump when the JSON layout changes.  v2: per-bench ``generated_at``
#: + ``git_rev`` provenance and the ``kernel_events_vectorized`` kind.
SCHEMA_VERSION = 2

#: Microbench shape: N_PROCS processes contend for one lock; every
#: fourth is a writer.  Hold/think times are deterministic (pure
#: function of indices) so both kernels replay the identical schedule.
N_PROCS = 32
BASE_ITERS = 4_000

#: Vectorized-bench shape: batch widths swept, per-lane cycle count at
#: scale 1.0 and how many lanes the scalar oracle baseline times.
VEC_BATCH_SIZES = (8, 32, 128)
VEC_BASE_ITERS = 250
VEC_SCALAR_LANES = 4

#: B-tree descent bench shape: widths swept (the autotuned width is
#: benched too when it differs), per-process operation count at scale
#: 1.0, scalar-oracle baseline lanes.
BTREE_BATCH_SIZES = (32, 128, 1024)
BTREE_BASE_ITERS = 50
BTREE_SCALAR_LANES = 4

ALGO_BENCHES = ("naive-lock-coupling", "optimistic-descent", "link-type")


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _stamp(bench: dict) -> dict:
    """Per-bench provenance: when this entry was measured and at what
    revision.  ``HEAD`` is resolved here, at emit time — a module-level
    constant once froze the rev of whatever checkout first imported the
    bench, so regenerated entries kept reporting the seed commit."""
    bench["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    bench["git_rev"] = _git_rev()
    return bench


def _hold(i: int, j: int) -> float:
    return 0.001 * ((i * 13 + j * 7) % 10 + 1)


def _think(i: int, j: int) -> float:
    return 0.0005 * ((i + 3 * j) % 7 + 1)


def _worker_new(lock: RWLock, i: int, iters: int):
    acquire = lock.acquire_write if i % 4 == 0 else lock.acquire_read
    release = lock.release_cmd
    for j in range(iters):
        yield acquire
        yield _hold(i, j)
        yield release
        yield _think(i, j)


def _worker_legacy(lock: "legacy.LegacyRWLock", i: int, iters: int):
    mode = legacy.WRITE if i % 4 == 0 else legacy.READ
    for j in range(iters):
        yield legacy.Acquire(lock, mode)
        yield legacy.Hold(_hold(i, j))
        yield legacy.Release(lock)
        yield legacy.Hold(_think(i, j))


def _run_new(iters: int):
    sim = Simulator()
    lock = RWLock("bench")
    for i in range(N_PROCS):
        sim.spawn(_worker_new(lock, i, iters))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim._sequence, wall, sim.now, lock.grants_write


def _run_legacy(iters: int):
    sim = legacy.LegacySimulator()
    lock = legacy.LegacyRWLock()
    for i in range(N_PROCS):
        sim.spawn(_worker_legacy(lock, i, iters))
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_executed, wall, sim.now, lock.grants_write


def bench_lock_contention(scale: float, repeat: int) -> dict:
    """Events/sec on the pure lock workload, current vs legacy kernel."""
    iters = max(10, int(BASE_ITERS * scale))
    best_new = best_legacy = float("inf")
    events = events_legacy = 0
    for _ in range(repeat):
        n_events, wall, end_new, writes_new = _run_new(iters)
        l_events, l_wall, end_legacy, writes_legacy = _run_legacy(iters)
        # Same schedule on both kernels, or the comparison is meaningless.
        assert n_events == l_events, (n_events, l_events)
        assert end_new == end_legacy, (end_new, end_legacy)
        assert writes_new == writes_legacy, (writes_new, writes_legacy)
        events, events_legacy = n_events, l_events
        best_new = min(best_new, wall)
        best_legacy = min(best_legacy, l_wall)
    eps = events / best_new
    eps_baseline = events_legacy / best_legacy
    return {
        "name": "lock_contention_microbench",
        "kind": "kernel_events",
        "scale": scale,
        "processes": N_PROCS,
        "iterations_per_process": iters,
        "events": events,
        "wall_s": round(best_new, 6),
        "baseline_wall_s": round(best_legacy, 6),
        "events_per_sec": round(eps, 1),
        "baseline_events_per_sec": round(eps_baseline, 1),
        "speedup": round(eps / eps_baseline, 3),
    }


def bench_vectorized(scale: float, repeat: int) -> list:
    """Events/sec of the batch kernel at each width, vs the scalar
    oracle on the same workload (best-of-``repeat`` wall times)."""
    from repro.des.vector import (
        LockContentionSpec,
        run_scalar_reference,
        run_vectorized,
    )
    iters = max(10, int(VEC_BASE_ITERS * scale))
    spec = LockContentionSpec(n_procs=N_PROCS, iterations=iters)

    oracle0 = run_scalar_reference(spec, 0)  # also warms the path
    best_scalar = float("inf")
    scalar_events = 0
    for _ in range(repeat):
        start = time.perf_counter()
        stats = [run_scalar_reference(spec, lane)
                 for lane in range(VEC_SCALAR_LANES)]
        wall = time.perf_counter() - start
        scalar_events = sum(s.events for s in stats)
        best_scalar = min(best_scalar, wall)
    scalar_eps = scalar_events / best_scalar

    benches = []
    for batch in VEC_BATCH_SIZES:
        best = float("inf")
        events = 0
        run_vectorized(spec, batch)  # warm numpy dispatch paths
        for _ in range(repeat):
            start = time.perf_counter()
            stats = run_vectorized(spec, batch)
            wall = time.perf_counter() - start
            events = int(stats.total_events)
            best = min(best, wall)
        lane0 = stats.lane(0)
        # Same schedule as the scalar kernel, or the numbers lie.
        assert lane0.events == oracle0.events, (lane0, oracle0)
        assert lane0.end_time == oracle0.end_time, (lane0, oracle0)
        eps = events / best
        benches.append({
            "name": f"kernel_events_vectorized_b{batch}",
            "kind": "kernel_events_vectorized",
            "scale": scale,
            "processes": N_PROCS,
            "iterations_per_process": iters,
            "batch": batch,
            "events": events,
            "wall_s": round(best, 6),
            "events_per_sec": round(eps, 1),
            "scalar_events_per_sec": round(scalar_eps, 1),
            "speedup_vs_scalar": round(eps / scalar_eps, 3),
        })
    return benches


def bench_btree_vectorized(scale: float, repeat: int) -> list:
    """Events/sec of the vectorized B-tree descent kernel per protocol,
    at the swept widths plus the autotuned width, vs the scalar
    simulator-oracle baseline on the identical schedule.

    Schedule-table generation is excluded from every timing (identical
    work on both sides); the baseline replays the oracle lanes
    sequentially, which matches the lane-multiplexed scalar path to
    within its geometric frontier amortization (see
    ``docs/performance.md``).
    """
    from repro.des.autotune import calibrate, choose_width
    from repro.des.vector_btree import (
        PROTOCOLS,
        BTreeDescentSpec,
        assert_btree_equivalent,
        run_btree_vectorized,
        run_scalar_btree_reference,
    )
    iterations = max(4, int(BTREE_BASE_ITERS * scale))
    # One calibration covers both protocols; the chosen width is the
    # conservative cross-protocol pick — exactly what run_batch's
    # batch="auto" would use.
    calibration = calibrate(BTreeDescentSpec(iterations=iterations))
    auto_width = choose_width(calibration, max(BTREE_BATCH_SIZES))
    benches = []
    for protocol in PROTOCOLS:
        spec = BTreeDescentSpec(protocol=protocol, iterations=iterations)
        widths = sorted(set(BTREE_BATCH_SIZES) | {auto_width})

        scalar_tables = spec.tables(BTREE_SCALAR_LANES)
        oracle = [run_scalar_btree_reference(spec, lane,
                                             tables=scalar_tables)
                  for lane in range(BTREE_SCALAR_LANES)]  # warms the path
        best_scalar = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            oracle = [run_scalar_btree_reference(spec, lane,
                                                 tables=scalar_tables)
                      for lane in range(BTREE_SCALAR_LANES)]
            best_scalar = min(best_scalar, time.perf_counter() - start)
        scalar_eps = sum(s.events for s in oracle) / best_scalar

        for width in widths:
            tables = spec.tables(width)
            run_btree_vectorized(spec, width, tables=tables)  # warm
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                stats = run_btree_vectorized(spec, width, tables=tables)
                best = min(best, time.perf_counter() - start)
            # Same schedule as the scalar oracle, or the numbers lie.
            assert_btree_equivalent(stats, oracle[:1], lanes=[0])
            eps = stats.total_events / best
            benches.append({
                "name": f"kernel_events_btree_{protocol}_b{width}",
                "kind": "kernel_events_btree_vectorized",
                "protocol": protocol,
                "scale": scale,
                "processes": spec.n_procs,
                "iterations_per_process": iterations,
                "batch": width,
                "autotuned": width == auto_width,
                "events": stats.total_events,
                "dispatches": stats.dispatches,
                "mean_live_lanes": round(stats.mean_live_lanes, 2),
                "wall_s": round(best, 6),
                "events_per_sec": round(eps, 1),
                "scalar_events_per_sec": round(scalar_eps, 1),
                "speedup_vs_scalar": round(eps / scalar_eps, 3),
                "calibration": {
                    "overhead_per_dispatch":
                        calibration.entries[protocol].overhead_per_dispatch,
                    "cost_per_lane_dispatch":
                        calibration.entries[protocol].cost_per_lane_dispatch,
                },
            })
    return benches


def bench_algorithm(algorithm: str, scale: float) -> dict:
    """Wall-clock ops/sec of one full-stack simulator run."""
    n_operations = max(50, int(4_000 * scale))
    config = SimulationConfig(
        algorithm=algorithm,
        arrival_rate=0.05,
        n_items=max(500, int(20_000 * scale)),
        n_operations=n_operations,
        warmup_operations=max(10, int(400 * scale)),
        seed=12345,
    )
    start = time.perf_counter()
    result = run_simulation(config)
    wall = time.perf_counter() - start
    return {
        "name": f"ops_{algorithm}",
        "kind": "simulator_ops",
        "algorithm": algorithm,
        "scale": scale,
        "n_operations": n_operations,
        "n_items": config.n_items,
        "measured_operations": result.measured_operations,
        "overflowed": result.overflowed,
        "wall_s": round(wall, 6),
        "ops_per_sec": round(n_operations / wall, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload multiplier (CI smoke uses 0.05)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="microbench repetitions (best-of wall time)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit non-zero if the microbench speedup is "
                             "below this (0 disables the gate)")
    parser.add_argument("--min-vec-speedup", type=float, default=0.0,
                        help="exit non-zero if the best vectorized "
                             "speedup over the scalar kernel is below "
                             "this (0 disables the gate)")
    args = parser.parse_args(argv)

    benches = [_stamp(bench_lock_contention(args.scale, args.repeat))]
    print(f"[kernel]  {benches[0]['events_per_sec']:>12,.0f} ev/s  "
          f"(baseline {benches[0]['baseline_events_per_sec']:,.0f} ev/s, "
          f"speedup {benches[0]['speedup']:.2f}x)")
    vec_benches = [_stamp(bench) for bench
                   in bench_vectorized(args.scale, args.repeat)]
    for bench in vec_benches:
        print(f"[vector b={bench['batch']:>4}]  "
              f"{bench['events_per_sec']:>12,.0f} ev/s  "
              f"(scalar {bench['scalar_events_per_sec']:,.0f} ev/s, "
              f"speedup {bench['speedup_vs_scalar']:.2f}x)")
    benches.extend(vec_benches)
    btree_benches = [_stamp(bench) for bench
                     in bench_btree_vectorized(args.scale, args.repeat)]
    for bench in btree_benches:
        tag = " auto" if bench["autotuned"] else ""
        print(f"[btree {bench['protocol'][:4]} b={bench['batch']:>4}{tag:>5}]"
              f"  {bench['events_per_sec']:>12,.0f} ev/s  "
              f"(scalar {bench['scalar_events_per_sec']:,.0f} ev/s, "
              f"speedup {bench['speedup_vs_scalar']:.2f}x)")
    benches.extend(btree_benches)
    for algorithm in ALGO_BENCHES:
        bench = _stamp(bench_algorithm(algorithm, args.scale))
        benches.append(bench)
        print(f"[{algorithm:>22}]  {bench['ops_per_sec']:>9,.0f} ops/s  "
              f"({bench['wall_s']:.2f}s wall)")

    payload = {
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "benches": benches,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    speedup = benches[0]["speedup"]
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    best_vec = max(b["speedup_vs_scalar"] for b in vec_benches)
    if args.min_vec_speedup and best_vec < args.min_vec_speedup:
        print(f"FAIL: vectorized speedup {best_vec:.2f}x < required "
              f"{args.min_vec_speedup:.2f}x", file=sys.stderr)
        return 1
    # The same bar applies to the B-tree descent kernel — at the width
    # the autotuner actually picks, for every protocol, not just the
    # friendliest one.
    worst_auto = min(b["speedup_vs_scalar"] for b in btree_benches
                     if b["autotuned"])
    if args.min_vec_speedup and worst_auto < args.min_vec_speedup:
        print(f"FAIL: autotuned B-tree descent speedup {worst_auto:.2f}x "
              f"< required {args.min_vec_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
