"""Benchmark: regenerate Figure 16 (recovery policies, N=59, 4 levels,
D=10, T_trans=100).

With the larger node size Pr[F(1)] shrinks, so leaf-only recovery gets
even closer to no-recovery while naive recovery still suffers.
"""

import math

from benchmarks.conftest import run_figure


def test_fig16_recovery_n59(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig16", figure_scale)
    for rate, none, leaf, naive in table.rows:
        if math.isinf(none):
            continue
        assert none <= leaf * 1.001
        if not math.isinf(naive):
            assert leaf <= naive * 1.001
    finite = [(leaf - none) / none
              for _r, none, leaf, _n in table.rows
              if not math.isinf(none) and not math.isinf(leaf)]
    # Leaf-only's overhead stays small across the plotted range.
    assert all(gap < 0.35 for gap in finite)
