"""Benchmark: the hotspot skew sweep (ext05)."""

import math

from benchmarks.conftest import run_figure


def test_ext05_hotspot(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "ext05", figure_scale)
    naive = table.column("naive_insert")
    link = table.column("link_insert")
    finite_naive = [v for v in naive if not math.isinf(v)]
    # Skew hurts lock-coupling...
    assert max(finite_naive) > 1.2 * finite_naive[0] \
        or math.isinf(naive[-1])
    # ... while the link algorithm stays essentially flat.
    assert max(link) < 1.4 * min(link)
