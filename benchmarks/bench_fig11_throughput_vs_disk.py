"""Benchmark: regenerate Figure 11 (Naive LC max throughput vs disk cost)."""

from benchmarks.conftest import run_figure


def test_fig11_throughput_vs_disk(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig11", figure_scale)
    throughputs = table.column("max_throughput")
    assert all(a > b for a, b in zip(throughputs, throughputs[1:]))
    # D=20 costs more than half the D=1 throughput (paper: the cost of
    # locking on-disk nodes is significant).
    assert throughputs[-1] < 0.5 * throughputs[0]
