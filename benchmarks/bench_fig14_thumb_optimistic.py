"""Benchmark: regenerate Figure 14 (Optimistic Descent rules of thumb
vs the full analysis) — the achievable rate grows ~ N/log^2 N."""

from benchmarks.conftest import run_figure


def test_fig14_thumb_optimistic(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig14", figure_scale)
    by_d = {}
    for order, disk_cost, analytical, thumb, limit in table.rows:
        assert thumb <= limit * 1.0001
        by_d.setdefault(disk_cost, []).append(analytical)
    for series in by_d.values():
        assert series[-1] > 2.0 * series[0]  # grows with node size
