"""Benchmark: the closed-system multiprogramming sweep (ext04) — the
paper's Section 1 motivating scenario run directly."""

from benchmarks.conftest import run_figure


def test_ext04_closed_system(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "ext04", figure_scale)
    naive_throughput = table.column("naive_throughput")
    link_throughput = table.column("link_throughput")
    mpls = table.column("mpl")
    # Naive plateaus; link keeps scaling with the population.
    top = mpls.index(max(mpls))
    mid = mpls.index(25)
    assert naive_throughput[top] < 1.4 * naive_throughput[mid]
    assert link_throughput[top] > 2.0 * link_throughput[mid]
    # At the motivating MPL (~100), link-type wins by a wide margin.
    assert link_throughput[top] > 3.0 * naive_throughput[top]
