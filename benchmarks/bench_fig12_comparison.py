"""Benchmark: regenerate Figure 12 (insert response comparison of the
three algorithms) — the paper's headline ordering
Link-type > Optimistic Descent > Naive Lock-coupling."""

import math

from benchmarks.conftest import run_figure


def test_fig12_comparison(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig12", figure_scale)
    naive = table.column("naive_insert")
    optimistic = table.column("optimistic_insert")
    link = table.column("link_insert")
    # Naive saturates within the plotted range; Link never does.
    assert any(math.isinf(v) for v in naive)
    assert not any(math.isinf(v) for v in link)
    # Where all are finite, the ordering holds.
    for n, o, l in zip(naive, optimistic, link):
        if not math.isinf(n):
            assert n >= o * 0.98 >= l * 0.9
