"""Benchmark: regenerate Figure 9 (link crossings vs arrival rate).

The paper's point: crossings are so rare that their feedback on arrival
rates can be neglected in the Link-type analysis.
"""

from benchmarks.conftest import run_figure


def test_fig09_link_crossings(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig09", figure_scale,
                       simulate=True)
    sim_per_1k = table.column("sim_crossings_per_1k_ops")
    model_per_1k = table.column("model_crossings_per_1k_ops")
    # Negligible-effect claim: at most ~1 crossing per 100 operations at
    # any sustainable load, and the model estimate has the simulated
    # order of magnitude.
    assert all(v < 15.0 for v in sim_per_1k if v == v)
    assert all(v < 15.0 for v in model_per_1k)
    assert model_per_1k[-1] > model_per_1k[0]  # scales with load
