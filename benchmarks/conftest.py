"""Shared benchmark plumbing.

Every benchmark regenerates one paper figure (or one ablation) and
writes its series to ``benchmarks/results/<id>.txt`` so the run leaves a
reviewable artefact; the benchmark timing itself measures the cost of
regenerating the figure.

``--figure-scale`` controls simulation effort (default 0.05: ~500
measured operations per point, one seed — enough to see the shape; use
1.0 for the paper's full 10,000 x 5 seeds).  ``--jobs N`` runs each
figure's independent simulation runs on ``N`` worker processes (see
:mod:`repro.parallel`); the regenerated series are identical, only the
wall time changes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentTable
from repro.experiments.report import format_table
from repro.parallel import execution

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--figure-scale", type=float, default=0.05,
        help="simulation effort scale for figure benchmarks "
             "(1.0 = paper scale)")
    parser.addoption(
        "--jobs", type=int, default=1,
        help="worker processes for each figure's simulation runs "
             "(default 1: serial)")


@pytest.fixture
def figure_scale(request) -> float:
    return request.config.getoption("--figure-scale")


@pytest.fixture
def figure_jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture(autouse=True)
def _figure_execution(figure_jobs):
    """Route every benchmark's simulation batches through the requested
    worker pool (no result cache: benchmarks time real regeneration)."""
    with execution(jobs=figure_jobs, cache=None):
        yield


@pytest.fixture
def record_table():
    """Persist a table under benchmarks/results and echo it."""

    def _record(table: ExperimentTable) -> ExperimentTable:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_table(table)
        (RESULTS_DIR / f"{table.experiment_id}.txt").write_text(text)
        print("\n" + text)
        return table

    return _record


def run_figure(benchmark, record_table, experiment_id: str, scale: float,
               simulate: bool | None = None) -> ExperimentTable:
    """Benchmark one figure regeneration and record the series."""
    from repro.experiments.registry import get_experiment
    experiment = get_experiment(experiment_id)

    def regenerate():
        return experiment.run(scale=scale, simulate=simulate)

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    return record_table(table)
