"""Benchmark: regenerate the paper's Figure 3 (Naive Lock-coupling insert response vs arrival rate).

Analytical series plus the validating simulation at the configured
``--figure-scale`` (default 0.05; 1.0 reproduces the paper's 10,000
operations over 5 seeds).
"""

import math

from benchmarks.conftest import run_figure


def test_fig03_naive_insert(benchmark, record_table, figure_scale):
    table = run_figure(benchmark, record_table, "fig03", figure_scale,
                       simulate=True)
    # Shape check: the analytical response curve rises with load and
    # stays finite until the knee.
    model = [v for v in table.column("model_insert_response") if not math.isinf(v)]
    assert len(model) >= 3
    assert model[-1] > model[0]
