"""Ambient execution settings for the sweep layer.

Experiment drivers sit several call levels below the CLI (``runner`` →
``figures`` → ``common`` → ``run_batch``), and threading ``jobs=`` and
``cache=`` through every figure signature would churn the whole
call graph.  Instead the CLI (or any caller) installs an
:class:`ExecutionContext` with the :func:`execution` context manager and
every ``run_batch`` call below it picks the settings up as defaults;
explicit ``jobs=`` / ``cache=`` arguments always win.

The default context is serial with no cache, so library callers that
never touch this module keep today's behavior exactly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from repro.errors import ConfigurationError
from repro.parallel.cache import ResultCache
from repro.resilience.policy import ResilienceOptions

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET = object()


@dataclass(frozen=True)
class ExecutionContext:
    """How simulation batches should execute.

    ``jobs``: worker processes for independent runs; ``None``, 0 or 1
    all mean serial in-process execution.  ``cache``: on-disk result
    cache, or ``None`` to always recompute.  ``progress``: callback
    invoked with every completed
    :class:`~repro.simulator.metrics.SimulationResult` (e.g. an
    :class:`~repro.obs.progress.ProgressPrinter`), or ``None`` for
    silent runs.
    """

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    progress: Optional[Callable] = None
    #: Failure policy for batches below this context (retries, task
    #: timeouts, checkpointing — see :mod:`repro.resilience`); ``None``
    #: keeps the historical fail-fast behavior.
    resilience: Optional[ResilienceOptions] = None
    #: Replication batch width: group up to this many consecutive
    #: batch-eligible tasks per scheduled unit and advance them through
    #: the lane-multiplexed driver (:mod:`repro.simulator.batch`).
    #: ``None``, 0 or 1 all mean one task per unit (the scalar path);
    #: ``"auto"`` defers to the persisted cost-model calibration
    #: (:mod:`repro.des.autotune`) at batch-execution time.
    batch: Union[int, str, None] = None

    @property
    def parallel(self) -> bool:
        return self.jobs is not None and self.jobs > 1


_stack = [ExecutionContext()]


def current_context() -> ExecutionContext:
    """The innermost installed context (serial/no-cache by default)."""
    return _stack[-1]


@contextmanager
def execution(jobs: Optional[int] = _UNSET,
              cache: Optional[ResultCache] = _UNSET,
              progress: Optional[Callable] = _UNSET,
              resilience: Optional[ResilienceOptions] = _UNSET,
              batch: Union[int, str, None] = _UNSET,
              ) -> Iterator[ExecutionContext]:
    """Install an execution context for the enclosed block.

    Omitted fields inherit from the enclosing context, so e.g.
    ``execution(jobs=4)`` keeps whatever cache is already installed.
    """
    outer = current_context()
    context = ExecutionContext(
        jobs=outer.jobs if jobs is _UNSET else jobs,
        cache=outer.cache if cache is _UNSET else cache,
        progress=outer.progress if progress is _UNSET else progress,
        resilience=outer.resilience if resilience is _UNSET else resilience,
        batch=outer.batch if batch is _UNSET else batch,
    )
    if context.jobs is not None and context.jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {context.jobs}")
    if context.batch is not None:
        if isinstance(context.batch, str):
            if context.batch != "auto":
                raise ConfigurationError(
                    f"batch must be an integer >= 0 or 'auto', got "
                    f"{context.batch!r}")
        elif context.batch < 0:
            raise ConfigurationError(
                f"batch must be >= 0, got {context.batch}")
    _stack.append(context)
    try:
        yield context
    finally:
        _stack.pop()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: the argument, else the ambient context."""
    if jobs is None:
        jobs = current_context().jobs
    if jobs is None:
        return 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return max(jobs, 1)


def resolve_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Effective cache: the argument, else the ambient context's.

    To force cache-less execution under a caching context, install an
    inner ``execution(cache=None)`` block.
    """
    return cache if cache is not None else current_context().cache


def resolve_progress(progress: Optional[Callable]) -> Optional[Callable]:
    """Effective progress callback: the argument, else the ambient
    context's (``execution(progress=None)`` silences an outer one)."""
    return progress if progress is not None else current_context().progress


def resolve_resilience(resilience: Optional[ResilienceOptions]
                       ) -> Optional[ResilienceOptions]:
    """Effective failure policy: the argument, else the ambient
    context's (``execution(resilience=None)`` restores fail-fast)."""
    return resilience if resilience is not None \
        else current_context().resilience


def resolve_batch(batch: Union[int, str, None]) -> Union[int, str]:
    """Effective replication batch width: the argument, else the
    ambient context's; ``None``/0/1 all resolve to 1 (scalar).

    ``"auto"`` passes through — the batch executor turns it into a
    width via :func:`repro.des.autotune.resolve_auto_width` once it
    knows the task count and cache.
    """
    if batch is None:
        batch = current_context().batch
    if batch is None:
        return 1
    if isinstance(batch, str):
        if batch != "auto":
            raise ConfigurationError(
                f"batch must be an integer >= 0 or 'auto', got {batch!r}")
        return "auto"
    if batch < 0:
        raise ConfigurationError(f"batch must be >= 0, got {batch}")
    return max(batch, 1)
