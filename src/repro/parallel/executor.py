"""Fan-out execution of independent simulation runs.

A figure sweep is a grid of independent ``(config, seed)`` points —
``run_simulation`` shares no state between runs and derives every RNG
stream from ``config.seed`` — so the grid can execute in any order, on
any number of worker processes, and still produce bit-identical
:class:`~repro.simulator.metrics.SimulationResult`\\ s.  :func:`run_batch`
is the single choke point all sweeps go through:

1. look every task up in the (optional) on-disk result cache;
2. run the misses — inline when serial, else on a
   ``ProcessPoolExecutor`` via the top-level picklable :func:`execute_task`;
3. store fresh results back and return them **in task order**.

Determinism contract: for a fixed task list, the returned list is
identical whatever ``jobs`` is and whatever mixture of cache hits and
recomputes served it.

With a :class:`~repro.resilience.ResilienceOptions` installed (argument
or ambient :func:`~repro.parallel.context.execution` context), the
batch additionally survives hostile conditions: per-task exceptions and
``BrokenProcessPool`` trigger bounded retries with exponential backoff,
exhausted tasks are quarantined (a ``None`` slot in the returned list)
instead of aborting the sweep, stalled tasks are preempted by a
parent-side wall deadline, budget-truncated runs come back as partial
saturation-flagged results, and a checkpoint journal lets an
interrupted sweep resume.  :func:`run_batch_report` exposes the full
:class:`~repro.resilience.BatchReport`.  The fault-free path through a
resilient batch produces the same results as the plain one.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.parallel.cache import CODE_SALT, ResultCache, config_key
from repro.parallel.context import (
    resolve_batch,
    resolve_cache,
    resolve_jobs,
    resolve_progress,
    resolve_resilience,
)
from repro.resilience.budget import TaskBudget, TruncatedResult
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    apply_worker_faults,
    corrupt_cache_entry,
    plan_from_env,
)
from repro.resilience.manifest import SweepJournal
from repro.resilience.policy import ResilienceOptions
from repro.resilience.report import (
    ERROR_TIMEOUT,
    ERROR_WORKER_DIED,
    BatchReport,
    FailureRecord,
    TruncationRecord,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import RunTelemetry, TelemetryOptions

#: Task kinds understood by :func:`execute_task`.
KIND_OPEN = "open"
KIND_CLOSED = "closed"

#: Bound on how long pool teardown may block (joining dead workers).
_TEARDOWN_GRACE = 5.0


@dataclass(frozen=True)
class SimTask:
    """One schedulable simulation run.

    ``kind`` selects the simulator entry point: "open" (Poisson
    arrivals, the paper's setting) or "closed" (fixed multiprogramming
    level ``mpl``, optional exponential ``think_time``).

    ``telemetry`` (a picklable
    :class:`~repro.obs.telemetry.TelemetryOptions`) asks the run to
    also record full run telemetry.  Telemetry runs bypass the result
    cache — the time series are the artifact, and a memoized result
    has none — and are supported for open tasks only.

    ``budget`` (a :class:`~repro.resilience.TaskBudget`) bounds the run
    by executed events and/or wall clock; a tripped budget yields a
    :class:`~repro.resilience.TruncatedResult` whose partial metrics
    are flagged as saturation-suspected.  Budgets do not enter the
    cache key — they cannot alter a run that completes within them,
    and truncated results are never cached.
    """

    config: SimulationConfig
    kind: str = KIND_OPEN
    mpl: Optional[int] = None
    think_time: float = 0.0
    telemetry: Optional["TelemetryOptions"] = None
    budget: Optional[TaskBudget] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_OPEN, KIND_CLOSED):
            raise ConfigurationError(
                f"unknown task kind {self.kind!r}; expected "
                f"{KIND_OPEN!r} or {KIND_CLOSED!r}")
        if self.kind == KIND_CLOSED and (self.mpl is None or self.mpl < 1):
            raise ConfigurationError(
                f"closed tasks need a multiprogramming level >= 1, "
                f"got {self.mpl!r}")
        if self.telemetry is not None and self.kind != KIND_OPEN:
            raise ConfigurationError(
                "telemetry collection is supported for open tasks only")
        if self.budget is not None and not isinstance(self.budget,
                                                      TaskBudget):
            raise ConfigurationError(
                f"budget must be a TaskBudget, got "
                f"{type(self.budget).__name__}")

    def cache_key(self, cache: ResultCache) -> str:
        return task_key(self, salt=cache.salt)


def task_key(task: SimTask, salt: str = CODE_SALT) -> str:
    """The task's content key — shared by the result cache and the
    checkpoint journal, so both identify a point the same way."""
    extra = {} if task.kind == KIND_OPEN else \
        {"mpl": task.mpl, "think_time": task.think_time}
    return config_key(task.config, kind=task.kind, extra=extra, salt=salt)


def replication_tasks(config: SimulationConfig,
                      n_seeds: int) -> List[SimTask]:
    """The paper's replication scheme: seeds ``seed .. seed+n_seeds-1``."""
    return [SimTask(config.with_seed(config.seed + offset))
            for offset in range(n_seeds)]


def execute_task(task: SimTask) -> Any:
    """Run one task to completion (top-level, hence picklable: this is
    the function worker processes import and call).

    Returns the task's :class:`SimulationResult` — or a
    :class:`~repro.resilience.TruncatedResult` when the task's budget
    tripped, or, when the task carries telemetry options, the full
    :class:`~repro.obs.telemetry.RunTelemetry` (whose ``result`` field
    is the run's result, truncated or not)."""
    # Imported here, not at module top, to keep the worker import light
    # and to avoid a cycle (driver -> parallel -> driver).
    if task.kind == KIND_CLOSED:
        from repro.simulator.closed import run_closed_simulation
        return run_closed_simulation(task.config, task.mpl,
                                     think_time=task.think_time,
                                     budget=task.budget)
    from repro.simulator.driver import run_simulation
    if task.telemetry is not None:
        from repro.obs.telemetry import TelemetryRecorder
        recorder = TelemetryRecorder(task.telemetry)
        run_simulation(task.config, telemetry=recorder, budget=task.budget)
        return recorder.telemetry
    return run_simulation(task.config, budget=task.budget)


def execute_batch_group(tasks: Sequence[SimTask],
                        ) -> List[SimulationResult]:
    """Run a group of batch-eligible tasks through the lane-multiplexed
    batch driver (top-level, hence picklable — pool workers call this
    one group at a time).  Results come back in task order, each
    bit-identical to :func:`execute_task` on that task alone."""
    # Lazy import for the same cycle/weight reasons as execute_task.
    from repro.simulator.batch import run_replication_batch
    return run_replication_batch([task.config for task in tasks])


def _batch_eligible(task: SimTask) -> bool:
    """The fallback contract from :mod:`repro.simulator.batch`: only
    plain open-system runs — no telemetry, no budget — on a
    vector-capable algorithm may join a batch group; everything else
    stays on the scalar path."""
    if task.kind != KIND_OPEN or task.telemetry is not None \
            or task.budget is not None:
        return False
    from repro.simulator.batch import batch_capable
    return batch_capable(task.config)


def _plan_units(tasks: Sequence[SimTask], pending: Sequence[int],
                width: int) -> List[List[int]]:
    """Partition ``pending`` into schedulable units: runs of
    consecutive batch-eligible tasks are chunked to at most ``width``
    indices per unit, everything else stays a singleton.  Task order is
    preserved within and across units, so caching, progress and the
    returned-results order are exactly the scalar path's."""
    if width <= 1:
        return [[index] for index in pending]
    units: List[List[int]] = []
    group: List[int] = []
    for index in pending:
        if _batch_eligible(tasks[index]):
            group.append(index)
            if len(group) == width:
                units.append(group)
                group = []
        else:
            if group:
                units.append(group)
                group = []
            units.append([index])
    if group:
        units.append(group)
    return units


def _execute_guarded(task: SimTask, index: int,
                     fault_specs: Tuple[FaultSpec, ...],
                     beacon_dir: Optional[str]) -> Any:
    """Worker entry point for resilient batches.

    Drops a beacon file (``running-<index>`` containing the worker
    pid) before executing and removes it on any *Python-level* return,
    so a beacon that survives marks a task whose worker process died
    mid-flight — the parent uses beacons plus worker exit codes to
    charge a pool breakage to the task that caused it rather than to
    every task that happened to be in flight.
    """
    beacon = None
    if beacon_dir:
        beacon = os.path.join(beacon_dir, f"running-{index}")
        try:
            with open(beacon, "w", encoding="ascii") as handle:
                handle.write(str(os.getpid()))
        except OSError:
            beacon = None
    try:
        apply_worker_faults(fault_specs)
        return execute_task(task)
    finally:
        if beacon is not None:
            try:
                os.remove(beacon)
            except OSError:
                pass


def run_batch(tasks: Sequence[SimTask],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[SimulationResult], None]] = None,
              telemetry_sink: Optional[Callable[[int, "RunTelemetry"], None]]
              = None,
              resilience: Optional[ResilienceOptions] = None,
              batch: "Optional[int | str]" = None,
              ) -> List[Optional[SimulationResult]]:
    """Execute ``tasks`` and return their results in task order.

    ``jobs``/``cache``/``progress``/``resilience``/``batch`` default to
    the ambient :class:`~repro.parallel.context.ExecutionContext`
    (serial, no cache, silent, fail-fast, scalar).  ``jobs <= 1`` runs
    everything inline in this process — byte-for-byte today's serial
    behavior; ``jobs > 1`` fans cache misses out over that many worker
    processes.  ``progress`` is called once per result; in parallel
    mode the call order follows completion order, not task order.

    ``batch > 1`` groups runs of consecutive batch-eligible cache
    misses (plain open-system tasks on vector-capable algorithms — see
    :mod:`repro.simulator.batch`) into lane-multiplexed units of up to
    that many replications; ineligible tasks interleave as singletons
    on the scalar path.  ``batch="auto"`` resolves the width from the
    persisted cost-model calibration
    (:func:`repro.des.autotune.resolve_auto_width`, probing on first
    use).  Results, cache keys and the returned order are
    identical either way — batching only changes scheduling.  Resilient
    batches (a failure policy installed) ignore ``batch`` and stay
    per-task: retry/timeout/quarantine accounting charges individual
    tasks, which a fused multi-task unit would muddle.

    Tasks carrying telemetry options always execute (never served from
    or stored into the cache); their
    :class:`~repro.obs.telemetry.RunTelemetry` is delivered through
    ``telemetry_sink(task_index, telemetry)`` while the returned list
    still holds plain results at every position.

    Without a failure policy, the first task exception propagates (the
    historical contract).  With one — installed explicitly, through the
    ambient context, or implicitly by a ``$REPRO_FAULTS`` plan — the
    batch runs resiliently: failed tasks are retried then quarantined
    (``None`` in the returned list) and the sweep always terminates;
    use :func:`run_batch_report` to also get the failure manifest.
    """
    resolved = resolve_resilience(resilience)
    if resolved is None and plan_from_env() is not None:
        # A fault plan in the environment (the CI smoke harness) gets
        # the default failure policy, else injected faults would simply
        # crash the sweep they are meant to exercise.
        resolved = ResilienceOptions()
    if resolved is not None:
        return _ResilientBatch(list(tasks), resolve_jobs(jobs),
                               resolve_cache(cache),
                               resolve_progress(progress),
                               telemetry_sink, resolved).run().results

    tasks = list(tasks)
    n_jobs = resolve_jobs(jobs)
    n_batch = resolve_batch(batch)
    cache = resolve_cache(cache)
    progress = resolve_progress(progress)
    if n_batch == "auto":
        from repro.des.autotune import resolve_auto_width
        n_batch = resolve_auto_width(len(tasks), cache)

    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(tasks)

    if cache is not None:
        for index, task in enumerate(tasks):
            if task.telemetry is not None:
                pending.append(index)
                continue
            key = task.cache_key(cache)
            keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                if progress is not None:
                    progress(hit)
            else:
                pending.append(index)
    else:
        pending = list(range(len(tasks)))

    if not pending:
        return results

    def record(index: int, outcome) -> None:
        if tasks[index].telemetry is not None:
            result = outcome.result
            if telemetry_sink is not None:
                telemetry_sink(index, outcome)
        elif type(outcome) is TruncatedResult:
            # Partial metrics from a tripped budget: usable, never
            # memoized as the point's true result.
            result = outcome.result
        else:
            result = outcome
            if cache is not None:
                cache.put(keys[index], result)
        results[index] = result
        if progress is not None:
            progress(result)

    units = _plan_units(tasks, pending, n_batch)

    if n_jobs <= 1 or len(units) == 1:
        for unit in units:
            if len(unit) == 1:
                record(unit[0], execute_task(tasks[unit[0]]))
            else:
                for index, outcome in zip(
                        unit, execute_batch_group(
                            [tasks[i] for i in unit])):
                    record(index, outcome)
        return results

    workers = min(n_jobs, len(units))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: Dict[Any, List[int]] = {}
        for unit in units:
            if len(unit) == 1:
                future = pool.submit(execute_task, tasks[unit[0]])
            else:
                future = pool.submit(execute_batch_group,
                                     [tasks[i] for i in unit])
            futures[future] = unit
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding,
                                     return_when=FIRST_COMPLETED)
            for future in done:
                unit = futures[future]
                outcome = future.result()
                if len(unit) == 1:
                    record(unit[0], outcome)
                else:
                    for index, result in zip(unit, outcome):
                        record(index, result)
    return results


def run_batch_report(tasks: Sequence[SimTask],
                     jobs: Optional[int] = None,
                     cache: Optional[ResultCache] = None,
                     progress: Optional[Callable[[SimulationResult], None]]
                     = None,
                     telemetry_sink: Optional[
                         Callable[[int, "RunTelemetry"], None]] = None,
                     resilience: Optional[ResilienceOptions] = None,
                     ) -> BatchReport:
    """:func:`run_batch` with the full :class:`~repro.resilience.\
BatchReport` (results, failure manifest, truncations, event totals).

    Always runs resiliently; ``resilience`` defaults to the ambient
    context's options, else to ``ResilienceOptions()``.
    """
    resolved = resolve_resilience(resilience) or ResilienceOptions()
    return _ResilientBatch(list(tasks), resolve_jobs(jobs),
                           resolve_cache(cache), resolve_progress(progress),
                           telemetry_sink, resolved).run()


class _ResilientBatch:
    """One resilient ``run_batch`` execution (single-use)."""

    def __init__(self, tasks: List[SimTask], n_jobs: int,
                 cache: Optional[ResultCache],
                 progress: Optional[Callable],
                 telemetry_sink: Optional[Callable],
                 options: ResilienceOptions) -> None:
        self.tasks = tasks
        self.n_jobs = n_jobs
        self.cache = cache
        self.progress = progress
        self.telemetry_sink = telemetry_sink
        self.options = options
        faults = options.faults if options.faults is not None \
            else plan_from_env()
        self.faults = faults if faults is not None else FaultPlan()
        if options.instruments is not None:
            self.inst = options.instruments
        else:
            from repro.obs.instruments import NULL_INSTRUMENTS
            self.inst = NULL_INSTRUMENTS
        salt = cache.salt if cache is not None else CODE_SALT
        self.keys: List[Optional[str]] = [
            None if task.telemetry is not None else task_key(task, salt=salt)
            for task in tasks]
        n = len(tasks)
        self.results: List[Optional[SimulationResult]] = [None] * n
        self.completed = [False] * n
        #: Failed attempts charged so far, per task.
        self.failures = [0] * n
        #: Earliest monotonic time a retry may be resubmitted.
        self.eligible_at: Dict[int, float] = {}
        self.report = BatchReport(results=self.results)
        self.journal: Optional[SweepJournal] = None
        self._beacon_dir: Optional[str] = None
        #: pid -> Process, accumulated across a pool's life so exit
        #: codes stay readable after the executor reaps its workers.
        self._procs: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def run(self) -> BatchReport:
        if self.options.checkpoint is not None:
            self.journal = SweepJournal(self.options.checkpoint, self.keys,
                                        resume=self.options.resume)
            self.report.checkpoint_path = str(self.journal.path)
        try:
            self._resume_from_journal()
            pending = self._serve_from_cache(
                [i for i in range(len(self.tasks)) if not self.completed[i]])
            if pending:
                if self.n_jobs <= 1:
                    self._run_inline(pending)
                else:
                    self._run_pool(pending)
            self.report.failures.sort(key=lambda record: record.index)
            if self.journal is not None:
                self.journal.close(summary={
                    "succeeded": self.report.succeeded,
                    "quarantined": self.report.quarantined_indices,
                    "retries": self.report.retries,
                    "timeouts": self.report.timeouts,
                    "pool_rebuilds": self.report.pool_rebuilds,
                    "truncated": [t.index for t in self.report.truncations],
                })
        finally:
            if self.journal is not None:
                self.journal.close()
        return self.report

    def _resume_from_journal(self) -> None:
        if self.journal is None:
            return
        for index, result in sorted(self.journal.completed.items()):
            if self.tasks[index].telemetry is not None:
                continue  # telemetry artifacts are never journaled
            self.results[index] = result
            self.completed[index] = True
            self.report.resumed += 1
            self.inst.counter("resilience.resumed").inc()
            if self.progress is not None:
                self.progress(result)

    def _serve_from_cache(self, pending: List[int]) -> List[int]:
        if self.cache is None:
            return pending
        missed: List[int] = []
        for index in pending:
            if self.tasks[index].telemetry is not None:
                missed.append(index)
                continue
            key = self.keys[index]
            for spec in self.faults.cache_faults(index):
                if corrupt_cache_entry(self.cache, key):
                    self._event("cache-corruption-injected", index=index)
            errors_before = self.cache.stats.errors
            hit = self.cache.get(key)
            if self.cache.stats.errors > errors_before:
                self.report.cache_corruptions += 1
                self.inst.counter("resilience.cache_corrupt").inc()
                self._event("cache-entry-corrupt", index=index)
            if hit is None:
                missed.append(index)
            else:
                self._record_success(index, hit, store=False)
        return missed

    # ------------------------------------------------------------------
    # Inline (jobs <= 1)
    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[int]) -> None:
        for index in pending:
            while True:
                attempt = self.failures[index]
                specs = self.faults.worker_faults(index, attempt)
                try:
                    apply_worker_faults(specs)
                    outcome = execute_task(self._prepared(index))
                except Exception as error:
                    if self._charge(index, type(error).__name__,
                                    str(error)):
                        time.sleep(self._remaining_backoff(index))
                        continue
                    break
                self._record_success(index, outcome)
                break

    # ------------------------------------------------------------------
    # Process pool (jobs >= 2)
    # ------------------------------------------------------------------
    def _run_pool(self, pending: List[int]) -> None:
        queue: deque = deque(pending)
        self._beacon_dir = tempfile.mkdtemp(prefix="repro-sweep-")
        try:
            while queue:
                if self._pool_round(queue):
                    self.report.pool_rebuilds += 1
                    self.inst.counter("resilience.pool_rebuilds").inc()
                    self._event("pool-rebuild")
        finally:
            shutil.rmtree(self._beacon_dir, ignore_errors=True)
            self._beacon_dir = None

    def _pool_round(self, queue: deque) -> bool:
        """Run one pool until the queue drains or the pool must be
        rebuilt (worker death / expired deadline).  Returns True when a
        rebuild is needed; unfinished tasks are already requeued."""
        workers = min(self.n_jobs, max(len(queue), 1))
        pool = ProcessPoolExecutor(max_workers=workers)
        self._procs = {}
        futures: Dict[Any, int] = {}
        running_since: Dict[int, float] = {}
        torn_down = False
        try:
            while queue or futures:
                self._submit_eligible(pool, queue, futures)
                self._procs.update(getattr(pool, "_processes", None) or {})
                if not futures:
                    # Everything left is backing off; nap until the
                    # soonest task becomes eligible again.
                    now = time.monotonic()
                    soonest = min((self.eligible_at.get(i, now)
                                   for i in queue), default=now)
                    time.sleep(min(max(soonest - now, 0.0),
                                   self.options.poll_interval * 10))
                    continue
                poll = self.options.poll_interval \
                    if (self.options.task_timeout is not None or queue) \
                    else None
                done, _ = wait(set(futures), timeout=poll,
                               return_when=FIRST_COMPLETED)
                for future, index in futures.items():
                    if future not in done and index not in running_since \
                            and future.running():
                        running_since[index] = time.monotonic()
                broken = False
                for future in done:
                    index = futures.pop(future)
                    running_since.pop(index, None)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        futures[future] = index
                        broken = True
                        break
                    except Exception as error:
                        if self._charge(index, type(error).__name__,
                                        str(error)):
                            queue.append(index)
                    else:
                        self._record_success(index, outcome)
                if broken:
                    self._handle_broken(pool, futures, queue)
                    torn_down = True
                    return True
                if self._expire_deadlines(pool, futures, running_since,
                                          queue):
                    torn_down = True
                    return True
            return False
        finally:
            if not torn_down:
                pool.shutdown(wait=True, cancel_futures=True)

    def _submit_eligible(self, pool, queue: deque,
                         futures: Dict[Any, int]) -> None:
        now = time.monotonic()
        for _ in range(len(queue)):
            index = queue.popleft()
            if self.eligible_at.get(index, 0.0) > now:
                queue.append(index)  # still backing off; rotate
                continue
            specs = self.faults.worker_faults(index, self.failures[index])
            future = pool.submit(_execute_guarded, self._prepared(index),
                                 index, specs, self._beacon_dir)
            futures[future] = index

    def _expire_deadlines(self, pool, futures: Dict[Any, int],
                          running_since: Dict[int, float],
                          queue: deque) -> bool:
        """Charge tasks running past ``task_timeout``; on any expiry the
        pool (which cannot preempt a worker) is torn down and rebuilt,
        requeueing the innocent in-flight tasks uncharged."""
        timeout = self.options.task_timeout
        if timeout is None:
            return False
        now = time.monotonic()
        expired = {index for index, started in running_since.items()
                   if now - started >= timeout}
        if not expired:
            return False
        for index in sorted(expired):
            self.report.timeouts += 1
            self.inst.counter("resilience.timeouts").inc()
            self._event("timeout", index=index,
                        attempt=self.failures[index])
            if self._charge(index, ERROR_TIMEOUT,
                            f"ran past the {timeout:g}s task deadline"):
                queue.append(index)
        for future, index in futures.items():
            future.cancel()
            if index not in expired:
                queue.append(index)
        self._teardown(pool)
        return True

    def _handle_broken(self, pool, futures: Dict[Any, int],
                       queue: deque) -> None:
        """A worker died.  Identify the task(s) it was running via the
        beacons + abnormal exit codes, charge only those, and requeue
        every other in-flight task uncharged."""
        self._procs.update(getattr(pool, "_processes", None) or {})
        self._teardown(pool, terminate=False)
        abnormal = self._abnormal_pids()
        started = self._read_beacons()
        outstanding = set(futures.values())
        culprits = {index for index, pid in started.items()
                    if pid in abnormal and index in outstanding}
        if not culprits:
            # Degraded attribution: charge whatever had started; as a
            # last resort, everything in flight (guarantees progress).
            culprits = {index for index in started
                        if index in outstanding} or set(outstanding)
        self._clear_beacons()
        for index in sorted(outstanding):
            if index in culprits:
                self._event("worker-died", index=index,
                            attempt=self.failures[index])
                if self._charge(index, ERROR_WORKER_DIED,
                                "worker process died while running "
                                "this task (process pool broken)"):
                    queue.append(index)
            else:
                queue.append(index)

    # ------------------------------------------------------------------
    # Pool teardown helpers
    # ------------------------------------------------------------------
    def _teardown(self, pool, terminate: bool = True) -> None:
        procs = dict(self._procs)
        procs.update(getattr(pool, "_processes", None) or {})
        self._procs = procs
        if terminate:
            for proc in procs.values():
                try:
                    proc.terminate()
                except Exception:  # already dead / already reaped
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        deadline = time.monotonic() + _TEARDOWN_GRACE
        for proc in procs.values():
            try:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:  # pragma: no cover - defensive
                pass

    def _abnormal_pids(self) -> Set[int]:
        """Workers that died on their own (not the executor's SIGTERM)."""
        abnormal: Set[int] = set()
        sigterm = -int(getattr(signal, "SIGTERM", 15))
        for pid, proc in self._procs.items():
            code = getattr(proc, "exitcode", None)
            if code is not None and code not in (0, sigterm):
                abnormal.add(pid)
        return abnormal

    def _read_beacons(self) -> Dict[int, int]:
        """Surviving beacons: task index -> worker pid."""
        started: Dict[int, int] = {}
        if not self._beacon_dir:
            return started
        try:
            names = os.listdir(self._beacon_dir)
        except OSError:
            return started
        for name in names:
            if not name.startswith("running-"):
                continue
            try:
                index = int(name.split("-", 1)[1])
                pid = int(Path(self._beacon_dir, name).read_text("ascii"))
            except (ValueError, OSError):
                continue
            started[index] = pid
        return started

    def _clear_beacons(self) -> None:
        if not self._beacon_dir:
            return
        try:
            for name in os.listdir(self._beacon_dir):
                try:
                    os.remove(os.path.join(self._beacon_dir, name))
                except OSError:
                    pass
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _prepared(self, index: int) -> SimTask:
        task = self.tasks[index]
        if task.budget is None and self.options.budget is not None:
            return replace(task, budget=self.options.budget)
        return task

    def _remaining_backoff(self, index: int) -> float:
        return max(0.0, self.eligible_at.get(index, 0.0) - time.monotonic())

    def _charge(self, index: int, error: str, message: str) -> bool:
        """Record one failed attempt; True when the task may retry."""
        self.failures[index] += 1
        attempts = self.failures[index]
        policy = self.options.retry
        if attempts > policy.max_retries:
            record = FailureRecord(
                index=index, key=self.keys[index], error=error,
                message=message, attempts=attempts)
            self.report.failures.append(record)
            self.inst.counter("resilience.quarantined").inc()
            if self.journal is not None:
                self.journal.record_quarantined(record)
            return False
        delay = policy.delay_for(attempts,
                                 token=self.keys[index] or f"task-{index}")
        self.eligible_at[index] = time.monotonic() + delay
        self.report.retries += 1
        self.inst.counter("resilience.retries").inc()
        self._event("retry", index=index, attempt=attempts, error=error,
                    delay=round(delay, 4))
        return True

    def _record_success(self, index: int, outcome: Any,
                        store: bool = True) -> None:
        truncation: Optional[TruncationRecord] = None
        if self.tasks[index].telemetry is not None:
            result = outcome.result
            if self.telemetry_sink is not None:
                self.telemetry_sink(index, outcome)
        elif type(outcome) is TruncatedResult:
            truncation = TruncationRecord(
                index=index, key=self.keys[index], reason=outcome.reason,
                events_executed=outcome.events_executed,
                wall_seconds=outcome.wall_seconds)
            self.report.truncations.append(truncation)
            self.inst.counter("resilience.truncated").inc()
            result = outcome.result  # partial metrics; never cached
        else:
            result = outcome
            if store and self.cache is not None:
                self.cache.put(self.keys[index], result)
        if self.journal is not None and self.keys[index] is not None:
            self.journal.record_completed(index, self.failures[index] + 1,
                                          result, truncation=truncation)
        self.results[index] = result
        self.completed[index] = True
        if self.progress is not None:
            self.progress(result)

    def _event(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal.record_event(event, **fields)
