"""Fan-out execution of independent simulation runs.

A figure sweep is a grid of independent ``(config, seed)`` points —
``run_simulation`` shares no state between runs and derives every RNG
stream from ``config.seed`` — so the grid can execute in any order, on
any number of worker processes, and still produce bit-identical
:class:`~repro.simulator.metrics.SimulationResult`\\ s.  :func:`run_batch`
is the single choke point all sweeps go through:

1. look every task up in the (optional) on-disk result cache;
2. run the misses — inline when serial, else on a
   ``ProcessPoolExecutor`` via the top-level picklable :func:`execute_task`;
3. store fresh results back and return them **in task order**.

Determinism contract: for a fixed task list, the returned list is
identical whatever ``jobs`` is and whatever mixture of cache hits and
recomputes served it.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.parallel.cache import ResultCache
from repro.parallel.context import resolve_cache, resolve_jobs, resolve_progress
from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import RunTelemetry, TelemetryOptions

#: Task kinds understood by :func:`execute_task`.
KIND_OPEN = "open"
KIND_CLOSED = "closed"


@dataclass(frozen=True)
class SimTask:
    """One schedulable simulation run.

    ``kind`` selects the simulator entry point: "open" (Poisson
    arrivals, the paper's setting) or "closed" (fixed multiprogramming
    level ``mpl``, optional exponential ``think_time``).

    ``telemetry`` (a picklable
    :class:`~repro.obs.telemetry.TelemetryOptions`) asks the run to
    also record full run telemetry.  Telemetry runs bypass the result
    cache — the time series are the artifact, and a memoized result
    has none — and are supported for open tasks only.
    """

    config: SimulationConfig
    kind: str = KIND_OPEN
    mpl: Optional[int] = None
    think_time: float = 0.0
    telemetry: Optional["TelemetryOptions"] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_OPEN, KIND_CLOSED):
            raise ConfigurationError(
                f"unknown task kind {self.kind!r}; expected "
                f"{KIND_OPEN!r} or {KIND_CLOSED!r}")
        if self.kind == KIND_CLOSED and (self.mpl is None or self.mpl < 1):
            raise ConfigurationError(
                f"closed tasks need a multiprogramming level >= 1, "
                f"got {self.mpl!r}")
        if self.telemetry is not None and self.kind != KIND_OPEN:
            raise ConfigurationError(
                "telemetry collection is supported for open tasks only")

    def cache_key(self, cache: ResultCache) -> str:
        extra = {} if self.kind == KIND_OPEN else \
            {"mpl": self.mpl, "think_time": self.think_time}
        return cache.key_for(self.config, kind=self.kind, extra=extra)


def replication_tasks(config: SimulationConfig,
                      n_seeds: int) -> List[SimTask]:
    """The paper's replication scheme: seeds ``seed .. seed+n_seeds-1``."""
    return [SimTask(config.with_seed(config.seed + offset))
            for offset in range(n_seeds)]


def execute_task(task: SimTask) -> Any:
    """Run one task to completion (top-level, hence picklable: this is
    the function worker processes import and call).

    Returns the task's :class:`SimulationResult` — or, when the task
    carries telemetry options, the full
    :class:`~repro.obs.telemetry.RunTelemetry` (whose ``result`` field
    is that same result)."""
    # Imported here, not at module top, to keep the worker import light
    # and to avoid a cycle (driver -> parallel -> driver).
    if task.kind == KIND_CLOSED:
        from repro.simulator.closed import run_closed_simulation
        return run_closed_simulation(task.config, task.mpl,
                                     think_time=task.think_time)
    from repro.simulator.driver import run_simulation
    if task.telemetry is not None:
        from repro.obs.telemetry import TelemetryRecorder
        recorder = TelemetryRecorder(task.telemetry)
        run_simulation(task.config, telemetry=recorder)
        return recorder.telemetry
    return run_simulation(task.config)


def run_batch(tasks: Sequence[SimTask],
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[SimulationResult], None]] = None,
              telemetry_sink: Optional[Callable[[int, "RunTelemetry"], None]]
              = None,
              ) -> List[SimulationResult]:
    """Execute ``tasks`` and return their results in task order.

    ``jobs``/``cache``/``progress`` default to the ambient
    :class:`~repro.parallel.context.ExecutionContext` (serial, no
    cache, silent).  ``jobs <= 1`` runs everything inline in this
    process — byte-for-byte today's serial behavior; ``jobs > 1`` fans
    cache misses out over that many worker processes.  ``progress`` is
    called once per result; in parallel mode the call order follows
    completion order, not task order.

    Tasks carrying telemetry options always execute (never served from
    or stored into the cache); their
    :class:`~repro.obs.telemetry.RunTelemetry` is delivered through
    ``telemetry_sink(task_index, telemetry)`` while the returned list
    still holds plain results at every position.
    """
    tasks = list(tasks)
    n_jobs = resolve_jobs(jobs)
    cache = resolve_cache(cache)
    progress = resolve_progress(progress)

    results: List[Optional[SimulationResult]] = [None] * len(tasks)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(tasks)

    if cache is not None:
        for index, task in enumerate(tasks):
            if task.telemetry is not None:
                pending.append(index)
                continue
            key = task.cache_key(cache)
            keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                if progress is not None:
                    progress(hit)
            else:
                pending.append(index)
    else:
        pending = list(range(len(tasks)))

    if not pending:
        return results  # type: ignore[return-value]

    def record(index: int, outcome) -> None:
        if tasks[index].telemetry is not None:
            result = outcome.result
            if telemetry_sink is not None:
                telemetry_sink(index, outcome)
        else:
            result = outcome
            if cache is not None:
                cache.put(keys[index], result)
        results[index] = result
        if progress is not None:
            progress(result)

    if n_jobs <= 1 or len(pending) == 1:
        for index in pending:
            record(index, execute_task(tasks[index]))
        return results  # type: ignore[return-value]

    workers = min(n_jobs, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(execute_task, tasks[index]): index
                   for index in pending}
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding,
                                     return_when=FIRST_COMPLETED)
            for future in done:
                record(futures[future], future.result())
    return results  # type: ignore[return-value]
