"""On-disk memoization of completed simulation runs.

``run_simulation(config)`` is a pure function of its
:class:`~repro.simulator.config.SimulationConfig` (every RNG stream is
derived from ``config.seed``), so its :class:`SimulationResult` can be
memoized on disk and reused across processes and invocations.  A cache
entry is keyed by a stable content hash of the full configuration plus:

* a *kind* tag ("open" or "closed" — the two simulator entry points),
* any extra run parameters outside the config (the closed system's
  multiprogramming level and think time),
* a **code-version salt** (:data:`CODE_SALT`), bumped whenever a change
  to the simulator alters results, which atomically invalidates every
  stale entry.

Layout on disk (see ``docs/performance.md``)::

    <cache dir>/
        <key[:2]>/<key>.pkl     # pickled SimulationResult

where ``<cache dir>`` is ``$REPRO_CACHE_DIR`` when set, else
``$XDG_CACHE_HOME/repro`` (default ``~/.cache/repro``).  Entries are
written atomically (temp file + rename) so a crashed run never leaves a
torn pickle; unreadable entries are treated as misses, deleted, and
recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import SimulationResult

#: Code-version salt folded into every cache key.  Bump it whenever a
#: simulator change alters results for the same configuration; every
#: previously cached entry then misses and is recomputed.
#: sim-v2: percentile reservoir seeds now derive from the run seed.
CODE_SALT = "sim-v2"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical(value: Any) -> Any:
    """Reduce a config value to JSON-serializable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {name: _canonical(v)
                  for name, v in (
                      (f.name, getattr(value, f.name))
                      for f in dataclasses.fields(value))}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} "
                    f"for cache keying: {value!r}")


def config_key(config: SimulationConfig, *, kind: str = "open",
               extra: Optional[dict] = None,
               salt: str = CODE_SALT) -> str:
    """Stable content hash identifying one simulation run.

    The same configuration always hashes to the same key, across
    processes and Python invocations (no reliance on ``hash()`` or
    pickle byte stability); changing ``salt`` changes every key.
    """
    payload = {
        "salt": salt,
        "kind": kind,
        "extra": _canonical(extra or {}),
        "config": _canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed but could not be read (corrupt/truncated);
    #: they are deleted and counted as misses too.
    errors: int = 0


class ResultCache:
    """Directory-backed store of pickled :class:`SimulationResult`\\ s."""

    def __init__(self, directory: Optional[os.PathLike] = None,
                 salt: str = CODE_SALT) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.salt = salt
        self.stats = CacheStats()

    def key_for(self, config: SimulationConfig, *, kind: str = "open",
                extra: Optional[dict] = None) -> str:
        return config_key(config, kind=kind, extra=extra, salt=self.salt)

    def path_for(self, key: str) -> Path:
        # Two-character fan-out keeps any one directory small even for
        # very large sweep grids.
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on a miss.

        A corrupt or unreadable entry is removed and reported as a miss
        (the caller recomputes and overwrites it).
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, SimulationResult):
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (tmp + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*/*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for bucket in self.directory.iterdir():
                if bucket.is_dir():
                    shutil.rmtree(bucket, ignore_errors=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({str(self.directory)!r}, salt={self.salt!r}, "
                f"stats={self.stats})")
