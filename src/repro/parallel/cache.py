"""On-disk memoization of completed simulation runs.

``run_simulation(config)`` is a pure function of its
:class:`~repro.simulator.config.SimulationConfig` (every RNG stream is
derived from ``config.seed``), so its :class:`SimulationResult` can be
memoized on disk and reused across processes and invocations.  A cache
entry is keyed by a stable content hash of the full configuration plus:

* a *kind* tag ("open" or "closed" — the two simulator entry points),
* any extra run parameters outside the config (the closed system's
  multiprogramming level and think time),
* a **code-version salt** (:data:`CODE_SALT`), bumped whenever a change
  to the simulator alters results, which atomically invalidates every
  stale entry.

Layout on disk (see ``docs/performance.md``)::

    <cache dir>/
        <key[:2]>/<key>.pkl     # pickled SimulationResult

where ``<cache dir>`` is ``$REPRO_CACHE_DIR`` when set, else
``$XDG_CACHE_HOME/repro`` (default ``~/.cache/repro``).  Entries are
written atomically (temp file + rename) so a crashed run never leaves a
torn pickle, and each entry carries a SHA-256 payload checksum
(:data:`ENTRY_MAGIC` header) so *any* on-disk corruption — truncation,
bit rot, a concurrent writer torn mid-entry — degrades to a cache miss
instead of feeding a damaged result into a sweep.  Unreadable or
unverifiable entries are deleted and recomputed; entries from the older
headerless format still load when their pickle is intact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import SimulationResult

#: Code-version salt folded into every cache key.  Bump it whenever a
#: simulator change alters results for the same configuration; every
#: previously cached entry then misses and is recomputed.
#: sim-v2: percentile reservoir seeds now derive from the run seed.
CODE_SALT = "sim-v2"

#: Header magic of the checksummed entry format:
#: ``ENTRY_MAGIC + sha256(payload) + payload``.
ENTRY_MAGIC = b"RPCK1\n"
_DIGEST_SIZE = hashlib.sha256().digest_size


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical(value: Any) -> Any:
    """Reduce a config value to JSON-serializable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {name: _canonical(v)
                  for name, v in (
                      (f.name, getattr(value, f.name))
                      for f in dataclasses.fields(value))}
        return {"__type__": type(value).__name__, **fields}
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} "
                    f"for cache keying: {value!r}")


def _is_default_workload(workload: Any) -> bool:
    """True when ``workload`` is the default spec (legacy behaviour)."""
    from repro.workload.spec import DEFAULT_WORKLOAD
    return workload == DEFAULT_WORKLOAD


def config_key(config: SimulationConfig, *, kind: str = "open",
               extra: Optional[dict] = None,
               salt: str = CODE_SALT) -> str:
    """Stable content hash identifying one simulation run.

    The same configuration always hashes to the same key, across
    processes and Python invocations (no reliance on ``hash()`` or
    pickle byte stability); changing ``salt`` changes every key.

    A config whose ``workload`` is absent *or equal to the default
    spec* hashes exactly as it did before the field existed (both
    reproduce the legacy behaviour bit-identically), so pre-existing
    cache entries stay valid without a CODE_SALT bump; any non-default
    :class:`~repro.workload.spec.WorkloadSpec` is content-hashed into
    the key like every other field.
    """
    config_payload = _canonical(config)
    if isinstance(config_payload, dict):
        workload = getattr(config, "workload", None)
        if workload is None or _is_default_workload(workload):
            config_payload.pop("workload", None)
    payload = {
        "salt": salt,
        "kind": kind,
        "extra": _canonical(extra or {}),
        "config": config_payload,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed but could not be read (corrupt/truncated);
    #: they are deleted and counted as misses too.
    errors: int = 0


class ResultCache:
    """Directory-backed store of pickled :class:`SimulationResult`\\ s."""

    def __init__(self, directory: Optional[os.PathLike] = None,
                 salt: str = CODE_SALT) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.salt = salt
        self.stats = CacheStats()

    def key_for(self, config: SimulationConfig, *, kind: str = "open",
                extra: Optional[dict] = None) -> str:
        return config_key(config, kind=kind, extra=extra, salt=self.salt)

    def path_for(self, key: str) -> Path:
        # Two-character fan-out keeps any one directory small even for
        # very large sweep grids.
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on a miss.

        A corrupt, truncated, or checksum-failing entry is removed and
        reported as a miss (the caller recomputes and overwrites it) —
        corruption must never crash a sweep or leak a damaged result.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            return self._reject(path)
        try:
            result = self._decode(blob)
        except Exception:
            # Anything: torn pickle, checksum mismatch, hostile bytes.
            return self._reject(path)
        if not isinstance(result, SimulationResult):
            return self._reject(path)
        self.stats.hits += 1
        return result

    def _decode(self, blob: bytes) -> Any:
        """Verify and unpickle one entry body.

        Checksummed entries must verify exactly; headerless blobs are
        treated as the pre-checksum format and loaded directly (their
        own pickle framing still catches truncation).
        """
        if blob.startswith(ENTRY_MAGIC):
            header_end = len(ENTRY_MAGIC) + _DIGEST_SIZE
            digest = blob[len(ENTRY_MAGIC):header_end]
            payload = blob[header_end:]
            if hashlib.sha256(payload).digest() != digest:
                raise ValueError("cache entry checksum mismatch")
            return pickle.loads(payload)
        return pickle.loads(blob)

    def _reject(self, path: Path) -> None:
        """Count and delete an unusable entry; always a miss."""
        self.stats.errors += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` atomically (tmp + rename),
        with the payload checksum prepended."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(ENTRY_MAGIC)
                handle.write(hashlib.sha256(payload).digest())
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*/*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for bucket in self.directory.iterdir():
                if bucket.is_dir():
                    shutil.rmtree(bucket, ignore_errors=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({str(self.directory)!r}, salt={self.salt!r}, "
                f"stats={self.stats})")
