"""Parallel sweep execution with on-disk result caching.

Every simulation run in this repository is a pure function of its
:class:`~repro.simulator.config.SimulationConfig` (plus, for closed
runs, the multiprogramming level), which buys two things at once:

* **fan-out** — a figure's whole ``(rate, seed)`` grid can run on a
  process pool (:func:`run_batch`, ``jobs=N``) with bit-identical
  results to the serial path;
* **memoization** — completed results persist in an on-disk cache
  (:class:`ResultCache`; ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``),
  so regenerating a figure at the same scale skips every
  already-computed point.

The :func:`execution` context manager installs ambient ``jobs``/
``cache``/``resilience``/``batch`` defaults so the CLI can switch the
entire experiment layer with one ``with`` block; see
``docs/performance.md`` and ``docs/robustness.md``.  ``batch=N``
additionally groups eligible replications into lane-multiplexed units
(:mod:`repro.simulator.batch`) — same results and cache keys, fewer
schedulable units.  With a
:class:`~repro.resilience.ResilienceOptions` installed, batches retry,
quarantine and checkpoint instead of aborting on the first failure;
:func:`run_batch_report` returns the full
:class:`~repro.resilience.BatchReport`.
"""

from repro.parallel.cache import (
    CODE_SALT,
    CacheStats,
    ResultCache,
    config_key,
    default_cache_dir,
)
from repro.parallel.context import (
    ExecutionContext,
    current_context,
    execution,
)
from repro.parallel.executor import (
    SimTask,
    execute_batch_group,
    execute_task,
    replication_tasks,
    run_batch,
    run_batch_report,
    task_key,
)

__all__ = [
    "CODE_SALT",
    "CacheStats",
    "ExecutionContext",
    "ResultCache",
    "SimTask",
    "config_key",
    "current_context",
    "default_cache_dir",
    "execute_batch_group",
    "execute_task",
    "execution",
    "replication_tasks",
    "run_batch",
    "run_batch_report",
    "task_key",
]
