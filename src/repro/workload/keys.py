"""Key-selection distributions (absorbing ``repro.workloads.keyspace``).

The paper draws keys uniformly; :class:`HotspotKeys` adds the classic
80/20 skew, :class:`ZipfKeys` a power-law skew, and
:class:`MigratingHotspotKeys` a hot range whose center drifts over
simulated time.  Pickers accept the current simulated time in
``pick(now)`` — the stationary distributions ignore it, so legacy
``pick()`` call sites keep working and the default workload's draw
sequence is unchanged.

``hot_interval(now)`` exposes the current hot key range (when the
distribution has one) so the driver's telemetry can report the
hot-key share of the measured traffic.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["KeyPicker", "UniformKeys", "HotspotKeys", "ZipfKeys",
           "MigratingHotspotKeys", "zipf_value", "scramble_key"]

#: Multiplier of the Fibonacci-hash key scramble (2**64 / phi, odd).
_SCRAMBLE_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def scramble_key(key: int, key_space: int) -> int:
    """Deterministic permutation-ish spread of ``key`` over the space.

    Fibonacci hashing: multiply in 64-bit space, then scale the high
    bits back down.  Bijective over 2**64; over an arbitrary
    ``key_space`` it is a near-uniform spread, which is all the
    scrambled-Zipf workload needs.
    """
    hashed = (key * _SCRAMBLE_MULTIPLIER) & _MASK64
    return (hashed * key_space) >> 64


def zipf_value(u: float, key_space: int, theta: float) -> int:
    """Map a uniform ``u`` in [0, 1) to a Zipf-skewed key in
    ``[0, key_space)`` via the bounded-Pareto inverse CDF
    (density proportional to ``x**-theta`` on ``[1, key_space]``)."""
    if key_space == 1:
        return 0
    power = 1.0 - theta
    x = ((key_space ** power - 1.0) * u + 1.0) ** (1.0 / power)
    key = int(x) - 1
    return key if key < key_space else key_space - 1


class KeyPicker:
    """Interface: draw integer keys from a universe of size
    ``key_space``, optionally as a function of simulated time."""

    def __init__(self, key_space: int, rng: random.Random) -> None:
        if key_space < 1:
            raise ConfigurationError(
                f"key space must be >= 1, got {key_space}")
        self.key_space = key_space
        self.rng = rng

    def pick(self, now: float = 0.0) -> int:
        raise NotImplementedError

    def hot_interval(self, now: float = 0.0
                     ) -> Optional[Tuple[int, int]]:
        """The current hot range as ``(start, size)`` (wrapping modulo
        the key space), or None when the distribution has no hot set."""
        return None


class UniformKeys(KeyPicker):
    """Uniform keys over [0, key_space) — the paper's workload."""

    def pick(self, now: float = 0.0) -> int:
        return self.rng.randrange(self.key_space)


class HotspotKeys(KeyPicker):
    """A fraction of accesses concentrates on a fraction of the keyspace.

    With the defaults, 80% of the picks land in the first 20% of the key
    range (a contiguous hot subtree).
    """

    def __init__(self, key_space: int, rng: random.Random,
                 hot_fraction: float = 0.2,
                 hot_probability: float = 0.8) -> None:
        super().__init__(key_space, rng)
        if not 0.0 < hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1)")
        if not 0.0 <= hot_probability <= 1.0:
            raise ConfigurationError("hot_probability must be in [0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self._hot_size = max(1, int(key_space * hot_fraction))

    def pick(self, now: float = 0.0) -> int:
        if self.rng.random() < self.hot_probability:
            return self.rng.randrange(self._hot_size)
        if self._hot_size >= self.key_space:
            # Degenerate universe (key_space == 1): the whole space is
            # hot; a "cold" draw still has to stay inside it.
            return self.rng.randrange(self.key_space)
        return self._hot_size + self.rng.randrange(
            max(1, self.key_space - self._hot_size))

    def hot_interval(self, now: float = 0.0) -> Tuple[int, int]:
        return 0, self._hot_size


class ZipfKeys(KeyPicker):
    """Zipf-like power-law skew via the continuous bounded-Pareto
    inverse CDF — one uniform draw per key, no per-key tables, so it
    scales to the default 2**30 key universe.

    The hot mass sits on the low keys (a contiguous hot subtree);
    ``scramble=True`` spreads it across the space with a Fibonacci
    hash instead.
    """

    def __init__(self, key_space: int, rng: random.Random,
                 theta: float = 0.9, scramble: bool = False) -> None:
        super().__init__(key_space, rng)
        if not 0.0 < theta < 1.0:
            raise ConfigurationError("zipf theta must be in (0, 1)")
        self.theta = theta
        self.scramble = scramble

    def pick(self, now: float = 0.0) -> int:
        key = zipf_value(self.rng.random(), self.key_space, self.theta)
        if self.scramble:
            return scramble_key(key, self.key_space)
        return key

    def hot_interval(self, now: float = 0.0
                     ) -> Optional[Tuple[int, int]]:
        if self.scramble:
            return None  # the hot mass is scattered, not an interval
        # The smallest prefix holding ~80% of the mass: invert the CDF
        # at 0.8.
        return 0, max(1, zipf_value(0.8, self.key_space, self.theta) + 1)


class MigratingHotspotKeys(KeyPicker):
    """A hotspot whose center drifts across the keyspace over time.

    At simulated time ``t`` the hot range starts at
    ``(center_start + velocity * t) % 1.0`` of the key space and spans
    ``hot_fraction`` of it (wrapping).  Draw order matches
    :class:`HotspotKeys` — one uniform for the hot/cold decision, one
    ``randrange`` for the offset — so fixed-seed streams stay pinned.
    """

    def __init__(self, key_space: int, rng: random.Random,
                 hot_fraction: float = 0.2,
                 hot_probability: float = 0.8,
                 center_start: float = 0.0,
                 velocity: float = 1e-3) -> None:
        super().__init__(key_space, rng)
        if not 0.0 < hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1)")
        if not 0.0 <= hot_probability <= 1.0:
            raise ConfigurationError("hot_probability must be in [0, 1]")
        if not 0.0 <= center_start < 1.0:
            raise ConfigurationError("center_start must be in [0, 1)")
        if not math.isfinite(velocity):
            raise ConfigurationError("velocity must be finite")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.center_start = center_start
        self.velocity = velocity
        self._hot_size = max(1, int(key_space * hot_fraction))

    def _hot_start(self, now: float) -> int:
        position = (self.center_start + self.velocity * now) % 1.0
        return int(position * self.key_space) % self.key_space

    def pick(self, now: float = 0.0) -> int:
        start = self._hot_start(now)
        if self.rng.random() < self.hot_probability:
            return (start + self.rng.randrange(self._hot_size)) \
                % self.key_space
        cold = self.key_space - self._hot_size
        if cold <= 0:
            return self.rng.randrange(self.key_space)
        return (start + self._hot_size + self.rng.randrange(cold)) \
            % self.key_space

    def hot_interval(self, now: float = 0.0) -> Tuple[int, int]:
        return self._hot_start(now), self._hot_size
