"""Pre-drawn per-lane streams for the vectorized kernels.

The struct-of-arrays kernels (:mod:`repro.des.vector` and
:mod:`repro.des.vector_btree`) consume *schedule tables* — per-lane
arrays of think times and key draws — and so do their scalar oracles.
That symmetry means a workload only has to shape the *tables*: both
kernels then execute the shaped schedule bit-identically, and the
equivalence guarantees of PR 6/8 carry over to every vector-native
workload for free.

This module maps a :class:`~repro.workload.spec.WorkloadSpec` onto
those tables:

* **Key distributions** transform the kernel's uniform key draws in
  place (:func:`transform_key_uniforms`) — uniform is the identity,
  hotspot and Zipf are closed-form monotone maps.  The migrating
  hotspot depends on simulated time, which is unknown at pre-draw
  time, so it is *not* vector-native.
* **Arrival processes** scale the think-time draws by per-operation
  rate factors sampled from the process's stationary state mixture
  (:func:`arrival_think_factors`) — an ON-state operation thinks
  ``1/on_factor`` as long, and so on.  The transient flash-crowd
  spike has no stationary mixture and is not vector-native.
* **Transactions** change the lock *schedule* itself (envelopes hold
  locks across operations), which the array-shaped descent state does
  not model — ``size > 1`` always takes the scalar path.

``WorkloadSpec().vector_native()`` gates all of this; for the default
spec the shaped tables are bit-identical to the specs' own
``tables()`` / ``durations()`` output (identity transform, factor 1).
The replication *batch* driver (:mod:`repro.simulator.batch`) is
workload-agnostic either way — it frontier-multiplexes full scalar
simulators, so non-vector-native workloads still batch correctly, just
without vector arithmetic underneath.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.spec import (
    ArrivalSpec,
    HotspotKeysSpec,
    KeySpec,
    UniformKeysSpec,
    WorkloadSpec,
    ZipfKeysSpec,
)

__all__ = [
    "supports_pre_draw",
    "transform_key_uniforms",
    "arrival_think_factors",
    "workload_btree_tables",
    "workload_lock_durations",
]

#: Fibonacci-hash multiplier (kept in sync with
#: :func:`repro.workload.keys.scramble_key`).
_SCRAMBLE_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def supports_pre_draw(workload: WorkloadSpec) -> bool:
    """True when every component of ``workload`` can be represented as
    pre-drawn per-lane streams (see the module docstring)."""
    return workload.vector_native()


def transform_key_uniforms(keys: KeySpec, u: np.ndarray) -> np.ndarray:
    """Map uniform key draws ``u`` in [0, 1) through ``keys``.

    Returns an array of the same shape, still in [0, 1): the kernels
    scale by their per-level fanouts themselves.  Raises
    :class:`~repro.errors.ConfigurationError` for distributions that
    are not vector-native (callers fall back to scalar lanes).
    """
    if isinstance(keys, UniformKeysSpec):
        return u
    if isinstance(keys, HotspotKeysSpec):
        p, f = keys.hot_probability, keys.hot_fraction
        hot = u < p
        out = np.empty_like(u)
        # Hot draws compress into [0, f); cold draws spread over [f, 1).
        out[hot] = u[hot] / p * f if p > 0 else 0.0
        cold = ~hot
        out[cold] = f + (u[cold] - p) / (1.0 - p) * (1.0 - f)
        return out
    if isinstance(keys, ZipfKeysSpec):
        # The continuous bounded-Pareto inverse CDF on [1, N], scaled
        # back to [0, 1); N is a nominal resolution — the kernels remap
        # to their own fanouts, so only the shape matters.
        n = 1 << 20
        power = 1.0 - keys.theta
        x = ((n ** power - 1.0) * u + 1.0) ** (1.0 / power)
        out = (x - 1.0) / n
        if keys.scramble:
            hashed = (out * n).astype(np.uint64) * _SCRAMBLE_MULTIPLIER
            out = (hashed % np.uint64(n)).astype(np.float64) / n
        return np.minimum(out, np.nextafter(1.0, 0.0))
    raise ConfigurationError(
        f"key distribution {type(keys).__name__} is not vector-native; "
        "use the scalar batch path")


def arrival_think_factors(arrival: ArrivalSpec, rng: np.random.Generator,
                          shape) -> np.ndarray:
    """Per-operation rate factors drawn from the process's stationary
    segment mixture (think times divide by these)."""
    segments = arrival.factor_segments()
    if not arrival.vector_native:
        raise ConfigurationError(
            f"arrival process {type(arrival).__name__} is not "
            "vector-native; use the scalar batch path")
    if len(segments) == 1:
        return np.full(shape, segments[0][1])
    weights = np.array([w for w, _ in segments])
    factors = np.array([f for _, f in segments])
    picks = rng.choice(len(segments), size=shape,
                       p=weights / weights.sum())
    return factors[picks]


def workload_btree_tables(spec, n_lanes: int, workload: WorkloadSpec):
    """Workload-shaped :class:`~repro.des.vector_btree.BTreeTables`.

    Mirrors ``BTreeDescentSpec.tables`` draw order (key, think,
    service, modify, split — per lane, ``default_rng(seed + lane)``)
    and then shapes keys and think times; the arrival factors are drawn
    *after* the base tables so the shared prefix stays lane-stable.
    For the default workload the result is bit-identical to
    ``spec.tables(n_lanes)``.
    """
    from repro.des.vector_btree import BTreeTables

    if not supports_pre_draw(workload):
        raise ConfigurationError(
            "workload is not vector-native; use the scalar batch path")
    P, J, H = spec.n_procs, spec.iterations, spec.n_levels
    think = np.empty((n_lanes, P, J))
    svc = np.empty((n_lanes, P, J, 2, H))
    mod = np.empty((n_lanes, P, J, 2))
    split = np.empty((n_lanes, P, J))
    path = np.empty((n_lanes, P, J, H), dtype=np.int64)
    offsets = spec.node_offsets()
    for lane in range(n_lanes):
        rng = np.random.default_rng(spec.seed + lane)
        key = transform_key_uniforms(workload.keys, rng.random((P, J)))
        think[lane] = rng.uniform(spec.think_low, spec.think_high, (P, J))
        svc[lane] = rng.uniform(spec.svc_low, spec.svc_high, (P, J, 2, H))
        mod[lane] = rng.uniform(spec.mod_low, spec.mod_high, (P, J, 2))
        split[lane] = rng.uniform(spec.split_low, spec.split_high, (P, J))
        think[lane] /= arrival_think_factors(workload.arrival, rng,
                                             (P, J))
        for d in range(H):
            path[lane, :, :, d] = offsets[d] \
                + (key * spec.levels[d]).astype(np.int64)
    return BTreeTables(think=think, svc=svc, mod=mod, split=split,
                       path=path)


def workload_lock_durations(spec, n_lanes: int, workload: WorkloadSpec):
    """Workload-shaped ``(hold, think)`` tables for the single-lock
    contention kernel (mirrors ``LockContentionSpec.durations``)."""
    if not supports_pre_draw(workload):
        raise ConfigurationError(
            "workload is not vector-native; use the scalar batch path")
    shape = (spec.n_procs, spec.iterations)
    hold = np.empty((n_lanes,) + shape)
    think = np.empty((n_lanes,) + shape)
    for lane in range(n_lanes):
        rng = np.random.default_rng(spec.seed + lane)
        hold[lane] = rng.uniform(spec.hold_low, spec.hold_high, shape)
        think[lane] = rng.uniform(spec.think_low, spec.think_high, shape)
        think[lane] /= arrival_think_factors(workload.arrival, rng,
                                             shape)
    return hold, think
