"""Named operation mixes and mix sampling (absorbed from
``repro.workloads.mixes``).

The mix triple (q_s, q_i, q_d) is the single workload knob of the
paper's framework.  ``PAPER_MIX`` is the Section 5.3 setting; the
others are common transaction-processing profiles used by the examples
and the sensitivity benchmarks.
"""

from __future__ import annotations

import random

from repro.model.params import OperationMix
from repro.model.params import PAPER_MIX  # re-exported

#: Index-heavy OLTP: mostly lookups, few updates.
READ_HEAVY = OperationMix(q_search=0.8, q_insert=0.15, q_delete=0.05)

#: Ingest-heavy workload: updates dominate.
UPDATE_HEAVY = OperationMix(q_search=0.1, q_insert=0.6, q_delete=0.3)

#: Pure ingest (append-style loading).
INSERT_ONLY = OperationMix(q_search=0.0, q_insert=1.0, q_delete=0.0)

#: Operation labels in drawing order.
_OPERATIONS = ("search", "insert", "delete")


def draw_operation(mix: OperationMix, rng: random.Random) -> str:
    """Sample an operation type ("search" / "insert" / "delete")."""
    u = rng.random()
    if u < mix.q_search:
        return "search"
    if u < mix.q_search + mix.q_insert:
        return "insert"
    return "delete"


__all__ = ["INSERT_ONLY", "PAPER_MIX", "READ_HEAVY", "UPDATE_HEAVY",
           "draw_operation"]
