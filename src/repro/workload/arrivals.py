"""Runtime arrival-process samplers.

A sampler turns an :class:`~repro.workload.spec.ArrivalSpec` plus a
base rate and a ``random.Random`` stream into a sequence of
interarrival intervals.  Samplers are *stateful* and track their own
elapsed time: the driver's arrivals process yields exactly the
intervals it draws, so a sampler's internal clock equals simulated
time without threading ``sim.now`` through the hot loop.

Every sampler draws from its RNG in a fixed, documented order, so a
fixed seed pins the whole stream (the stability tests in
``tests/test_workload_generators.py`` pin each one's draw sequence).
:class:`PoissonSampler` performs the identical
``rng.expovariate(rate)`` call the legacy driver made, keeping the
default workload bit-identical.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, Tuple

__all__ = ["PoissonSampler", "MMPPSampler", "PiecewiseSampler"]


class PoissonSampler:
    """Stationary Poisson arrivals at ``rate`` — one ``expovariate``
    per interval, exactly the legacy draw."""

    __slots__ = ("rng", "rate")

    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rng = rng
        self.rate = rate

    def next_interval(self) -> float:
        return self.rng.expovariate(self.rate)


class MMPPSampler:
    """Two-state ON/OFF Markov-modulated Poisson sampler.

    Within a state the stream is Poisson at that state's rate, so the
    sampler redraws a fresh exponential after each state switch — exact
    by memorylessness, one hazard race per candidate arrival.  Draw
    order per ``next_interval``: zero or more (sojourn, gap) pairs as
    states are crossed, ending with the gap that lands inside the
    current sojourn.
    """

    __slots__ = ("rng", "_rates", "_means", "_on", "_until")

    def __init__(self, rate: float, rng: random.Random, spec) -> None:
        self.rng = rng
        self._rates = (rate * spec.on_factor, rate * spec.off_factor)
        self._means = (spec.mean_on, spec.mean_off)
        self._on = True
        self._until = rng.expovariate(1.0 / spec.mean_on)

    def next_interval(self) -> float:
        waited = 0.0
        while True:
            state = 0 if self._on else 1
            state_rate = self._rates[state]
            gap = self.rng.expovariate(state_rate) if state_rate > 0.0 \
                else math.inf
            if gap <= self._until:
                self._until -= gap
                return waited + gap
            waited += self._until
            self._on = not self._on
            mean = self._means[0 if self._on else 1]
            self._until = self.rng.expovariate(1.0 / mean)


class PiecewiseSampler:
    """Arrivals under a piecewise-constant rate profile, by inversion.

    One unit-mean exponential hazard target per interval, integrated
    exactly through the (duration, factor) segments — no thinning, no
    rejected draws.  ``cycle=True`` repeats the profile forever (the
    diurnal schedule); ``cycle=False`` runs the profile once and then
    continues at ``tail_factor`` x the base rate forever (the
    flash-crowd spike).
    """

    __slots__ = ("rng", "_segments", "_cycle", "_tail_rate", "_index",
                 "_into")

    def __init__(self, rate: float, rng: random.Random,
                 segments: Sequence[Tuple[float, float]], *,
                 cycle: bool = True, tail_factor: float = 1.0) -> None:
        self.rng = rng
        self._segments = tuple((duration, rate * factor)
                               for duration, factor in segments
                               if duration > 0.0)
        self._cycle = cycle
        self._tail_rate = rate * tail_factor
        self._index = 0
        self._into = 0.0  # elapsed time within the current segment

    def next_interval(self) -> float:
        target = self.rng.expovariate(1.0)
        waited = 0.0
        while self._index < len(self._segments):
            duration, seg_rate = self._segments[self._index]
            remaining = duration - self._into
            if seg_rate > 0.0 and target <= seg_rate * remaining:
                dt = target / seg_rate
                self._into += dt
                return waited + dt
            target -= seg_rate * remaining
            waited += remaining
            self._into = 0.0
            self._index += 1
            if self._cycle and self._index == len(self._segments):
                self._index = 0
        # Non-cycling profile exhausted: constant tail rate.
        return waited + target / self._tail_rate
