"""Binding a workload spec to one run's RNG streams.

:class:`WorkloadRuntime` is the object the simulation drivers hold: it
resolves a config's effective :class:`~repro.workload.spec.WorkloadSpec`
(explicit field, legacy ``key_distribution`` fields, or the default),
validates the operation mix once, and exposes the per-run samplers.
For the default spec every draw it makes is the identical call on the
identical stream the legacy driver made, which is what keeps the
fixed-seed golden fingerprints byte-identical.
"""

from __future__ import annotations

import random

from repro.workload.spec import (
    WorkloadSpec,
    effective_workload,
    mix_thresholds,
)

__all__ = ["WorkloadRuntime"]

#: Operation labels in threshold order (mirrors the simulator's
#: OP_SEARCH / OP_INSERT / OP_DELETE constants without importing them;
#: the simulator asserts the correspondence).
_SEARCH, _INSERT, _DELETE = "search", "insert", "delete"


class WorkloadRuntime:
    """One run's workload machinery: key picker, mix thresholds,
    arrival-sampler factory and transaction size."""

    __slots__ = ("spec", "picker", "transaction_size", "_t_search",
                 "_t_update")

    def __init__(self, config, rng_keys: random.Random) -> None:
        spec = effective_workload(config)
        self.spec: WorkloadSpec = spec
        self.picker = spec.keys.build(config.key_space, rng_keys)
        self.transaction_size = spec.transaction.size
        # Hoisted out of the per-arrival loop: thresholds computed (and
        # the mix validated, with a structured error naming it) once.
        self._t_search, self._t_update = mix_thresholds(config.mix)

    def arrival_sampler(self, rate: float, rng: random.Random):
        """The arrival sampler for this workload at base ``rate``."""
        return self.spec.arrival.build(rate, rng)

    def draw_operation(self, rng: random.Random) -> str:
        """One mix draw — same stream, same comparison order as the
        legacy ``_draw_operation``, against precomputed thresholds."""
        u = rng.random()
        if u < self._t_search:
            return _SEARCH
        if u < self._t_update:
            return _INSERT
        return _DELETE
