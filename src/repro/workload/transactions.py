"""Multi-operation transaction envelopes.

A transaction bundles ``k`` consecutive B-tree operations under
per-key *transaction locks* held from before the first member until
after the last — the lock-held-across-operations regime of Thomasian's
high-data-contention analysis (PAPERS.md, arXiv 2404.02276).

Design constraints, and how the envelope meets them:

* **No deadlock.**  Transaction locks live in a dedicated
  :class:`TransactionLockTable` of per-key FCFS R/W locks, *disjoint*
  from the B-tree's node latches.  An envelope acquires every member
  key's lock up front in **sorted key order** (a total order, so no
  acquisition cycles between envelopes) and only then runs its member
  operations; node latches are never held while waiting on a
  transaction lock, and transaction locks are never requested while a
  node latch is held.
* **Determinism.**  The member (operation, key) list is drawn at
  envelope spawn time from the same RNG streams, in the same order, an
  independent operation sequence would have used — so a transactional
  run is a pure function of the config's seed, like every other run.
* **Isolation semantics.**  Reads (searches) take shared locks,
  updates exclusive ones; a key both read and updated by one envelope
  is locked exclusively.  This is lock-based isolation at transaction
  granularity — the B-tree latches below continue to guarantee
  structural consistency exactly as before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.des.rwlock import RWLock

__all__ = ["TransactionLockTable", "transaction_envelope"]

#: Operation label whose members take shared (read) transaction locks.
_READ_OP = "search"


class TransactionLockTable:
    """Lazy per-key FCFS R/W transaction locks.

    Locks are created on first touch and kept for the run (the
    footprint is bounded by the number of distinct keys transactions
    touch, far below the key universe for any realistic run length).
    The table is deliberately observer-free: transaction-lock waits are
    contention *above* the tree and must not pollute the per-level
    latch-wait statistics.
    """

    __slots__ = ("_locks",)

    def __init__(self) -> None:
        self._locks: Dict[int, RWLock] = {}

    def __len__(self) -> int:
        return len(self._locks)

    def lock_for(self, key: int) -> RWLock:
        lock = self._locks.get(key)
        if lock is None:
            lock = RWLock(name=f"txn{key}")
            self._locks[key] = lock
        return lock


def transaction_envelope(module, ctx, members: List[Tuple[str, int]],
                         table: TransactionLockTable,
                         on_commit: Optional[Callable[[float], None]]
                         = None):
    """Generator process: run ``members`` under held transaction locks.

    ``members`` is the pre-drawn ``(op_name, key)`` list; ``module`` is
    the algorithm's ops module (each ``getattr(module, op)`` a
    generator factory).  Lock modes are computed per distinct key
    (exclusive dominates), acquired in sorted key order, and released
    only at commit; ``on_commit`` receives the simulated time the full
    lock set was held (last grant to commit), feeding the
    ``workload.txn_hold`` telemetry timer.
    """
    modes: Dict[int, bool] = {}  # key -> exclusive?
    for op_name, key in members:
        exclusive = op_name != _READ_OP
        if exclusive or key not in modes:
            modes[key] = exclusive or modes.get(key, False)
    ordered = sorted(modes)
    for key in ordered:
        lock = table.lock_for(key)
        yield lock.acquire_write if modes[key] else lock.acquire_read
    locked_at = ctx.sim.now
    for op_name, key in members:
        yield from getattr(module, op_name)(ctx, key)
    for key in ordered:
        yield table.lock_for(key).release_cmd
    if on_commit is not None:
        on_commit(ctx.sim.now - locked_at)
