"""Declarative workload specifications.

A :class:`WorkloadSpec` is a frozen, picklable, content-hashable
description of *who arrives when and asks for what*: an
:class:`ArrivalSpec` (the arrival process), a :class:`KeySpec` (the key
distribution) and a :class:`TransactionSpec` (how many consecutive
operations one arrival bundles under held transaction locks).  Specs
carry no RNG state — the drivers build runtime samplers from them (see
:mod:`repro.workload.arrivals`, :mod:`repro.workload.keys` and
:mod:`repro.workload.runtime`), so the same spec replayed under the
same seed draws the identical stream.

Arrival-process rates are expressed as dimensionless *factors* applied
to ``SimulationConfig.arrival_rate``: the config's rate stays the
single load knob a sweep varies, and a spec describes the *shape* of
the traffic around it (``PoissonArrivals()`` is factor 1 everywhere —
today's stationary stream).

``DEFAULT_WORKLOAD`` (`WorkloadSpec()` with every default) reproduces
the legacy behaviour bit-identically and is excluded from cache keys,
so pre-existing cached results stay valid (no CODE_SALT bump).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalSpec",
    "PoissonArrivals",
    "MMPPArrivals",
    "ScheduleArrivals",
    "SpikeArrivals",
    "KeySpec",
    "UniformKeysSpec",
    "HotspotKeysSpec",
    "ZipfKeysSpec",
    "MigratingHotspotKeysSpec",
    "TransactionSpec",
    "WorkloadSpec",
    "DEFAULT_WORKLOAD",
    "mix_thresholds",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


# ---------------------------------------------------------------------------
# Arrival processes


@dataclass(frozen=True)
class ArrivalSpec:
    """Base of the arrival-process specs.

    ``kind`` names the process in the registry / CLI listing;
    ``vector_native`` marks whether the vectorized kernels can consume
    a pre-drawn stream of this process (:mod:`repro.workload.streams`)
    or the batch path falls back to per-lane scalar simulation.
    """

    kind: ClassVar[str] = "arrival"
    vector_native: ClassVar[bool] = False

    def build(self, rate: float, rng):
        """A runtime sampler for this process at base ``rate``."""
        raise NotImplementedError

    def factor_segments(self) -> Tuple[Tuple[float, float], ...]:
        """``(weight, factor)`` pairs describing the process as a
        piecewise-stationary mixture (weights sum to 1).  The model
        layer composes per-segment M/G/1 responses over these."""
        raise NotImplementedError

    def mean_factor(self) -> float:
        """Time-averaged rate factor of the process."""
        return sum(w * f for w, f in self.factor_segments())

    def stationary(self) -> bool:
        """True when the process is a plain Poisson stream (the regime
        the paper's Theorems 1-6 assume)."""
        return len(self.factor_segments()) == 1


@dataclass(frozen=True)
class PoissonArrivals(ArrivalSpec):
    """Stationary Poisson arrivals — the paper's (and the legacy
    driver's) process, at exactly ``config.arrival_rate``."""

    kind: ClassVar[str] = "poisson"
    vector_native: ClassVar[bool] = True

    def build(self, rate: float, rng):
        from repro.workload.arrivals import PoissonSampler
        return PoissonSampler(rate, rng)

    def factor_segments(self) -> Tuple[Tuple[float, float], ...]:
        return ((1.0, 1.0),)


@dataclass(frozen=True)
class MMPPArrivals(ArrivalSpec):
    """Two-state Markov-modulated Poisson process (ON/OFF bursts).

    The stream alternates between an ON state (rate ``on_factor`` x
    the base rate, mean sojourn ``mean_on``) and an OFF state
    (``off_factor`` x base, mean sojourn ``mean_off``); sojourns are
    exponential.  The defaults are mean-preserving: the time-averaged
    factor is 1.0, so an MMPP sweep stresses *burstiness* at the same
    offered load as the stationary baseline.
    """

    kind: ClassVar[str] = "mmpp"
    vector_native: ClassVar[bool] = True

    on_factor: float = 3.0
    off_factor: float = 0.5
    mean_on: float = 50.0
    mean_off: float = 200.0

    def __post_init__(self) -> None:
        _require(self.on_factor >= 0.0 and self.off_factor >= 0.0,
                 "MMPP rate factors must be >= 0")
        _require(self.on_factor > 0.0 or self.off_factor > 0.0,
                 "MMPP needs a positive rate in at least one state")
        _require(self.mean_on > 0.0 and self.mean_off > 0.0,
                 "MMPP mean sojourn times must be positive")

    def build(self, rate: float, rng):
        from repro.workload.arrivals import MMPPSampler
        return MMPPSampler(rate, rng, self)

    def factor_segments(self) -> Tuple[Tuple[float, float], ...]:
        total = self.mean_on + self.mean_off
        return ((self.mean_on / total, self.on_factor),
                (self.mean_off / total, self.off_factor))


@dataclass(frozen=True)
class ScheduleArrivals(ArrivalSpec):
    """Piecewise-constant (diurnal) rate schedule, cycling forever.

    ``segments`` is a tuple of ``(duration, factor)`` pairs in
    simulated time.  Zero-duration segments are permitted and skipped
    (convenient when a schedule is generated programmatically).
    """

    kind: ClassVar[str] = "schedule"
    vector_native: ClassVar[bool] = True

    segments: Tuple[Tuple[float, float], ...] = (
        (200.0, 0.5), (200.0, 1.5))

    def __post_init__(self) -> None:
        _require(len(self.segments) > 0, "schedule needs >= 1 segment")
        for duration, factor in self.segments:
            _require(duration >= 0.0 and math.isfinite(duration),
                     f"segment duration must be finite and >= 0, "
                     f"got {duration}")
            _require(factor >= 0.0 and math.isfinite(factor),
                     f"segment rate factor must be finite and >= 0, "
                     f"got {factor}")
        live = [(d, f) for d, f in self.segments if d > 0.0]
        _require(bool(live), "schedule needs a positive-duration segment")
        _require(any(f > 0.0 for _, f in live),
                 "schedule needs a positive rate in some segment")

    def live_segments(self) -> Tuple[Tuple[float, float], ...]:
        """The segments with positive duration, in order."""
        return tuple((d, f) for d, f in self.segments if d > 0.0)

    def build(self, rate: float, rng):
        from repro.workload.arrivals import PiecewiseSampler
        return PiecewiseSampler(rate, rng, self.live_segments(),
                                cycle=True)

    def factor_segments(self) -> Tuple[Tuple[float, float], ...]:
        live = self.live_segments()
        total = sum(d for d, _ in live)
        return tuple((d / total, f) for d, f in live)


@dataclass(frozen=True)
class SpikeArrivals(ArrivalSpec):
    """Flash-crowd spike: base-rate Poisson with one transient burst of
    ``multiplier`` x the base rate during ``[start, start + duration)``.

    Transient by construction (never repeats), so a pre-drawn
    stationary stream cannot represent it — the batch/vector path falls
    back to scalar lanes for this process.
    """

    kind: ClassVar[str] = "spike"
    vector_native: ClassVar[bool] = False

    multiplier: float = 8.0
    start: float = 200.0
    duration: float = 100.0

    def __post_init__(self) -> None:
        _require(self.multiplier > 0.0 and math.isfinite(self.multiplier),
                 "spike multiplier must be positive and finite")
        _require(self.start >= 0.0, "spike start must be >= 0")
        _require(self.duration > 0.0 and math.isfinite(self.duration),
                 "spike duration must be positive and finite")

    def build(self, rate: float, rng):
        from repro.workload.arrivals import PiecewiseSampler
        head = []
        if self.start > 0.0:
            head.append((self.start, 1.0))
        head.append((self.duration, self.multiplier))
        return PiecewiseSampler(rate, rng, tuple(head), cycle=False,
                                tail_factor=1.0)

    def factor_segments(self) -> Tuple[Tuple[float, float], ...]:
        # The spike is transient; weight it over one "incident window"
        # of 10x its duration around the burst, the scale on which its
        # queueing impact is felt.
        return ((0.9, 1.0), (0.1, self.multiplier))


# ---------------------------------------------------------------------------
# Key distributions


@dataclass(frozen=True)
class KeySpec:
    """Base of the key-distribution specs."""

    kind: ClassVar[str] = "keys"
    vector_native: ClassVar[bool] = False

    def build(self, key_space: int, rng):
        """A runtime :class:`~repro.workload.keys.KeyPicker`."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformKeysSpec(KeySpec):
    """Uniform keys over ``[0, key_space)`` — the paper's workload."""

    kind: ClassVar[str] = "uniform"
    vector_native: ClassVar[bool] = True

    def build(self, key_space: int, rng):
        from repro.workload.keys import UniformKeys
        return UniformKeys(key_space, rng)


@dataclass(frozen=True)
class HotspotKeysSpec(KeySpec):
    """Static hotspot: ``hot_probability`` of the accesses target the
    first ``hot_fraction`` of the key space (default 80/20)."""

    kind: ClassVar[str] = "hotspot"
    vector_native: ClassVar[bool] = True

    hot_fraction: float = 0.2
    hot_probability: float = 0.8

    def __post_init__(self) -> None:
        _require(0.0 < self.hot_fraction < 1.0,
                 "hot_fraction must be in (0, 1)")
        _require(0.0 <= self.hot_probability <= 1.0,
                 "hot_probability must be in [0, 1]")

    def build(self, key_space: int, rng):
        from repro.workload.keys import HotspotKeys
        return HotspotKeys(key_space, rng,
                           hot_fraction=self.hot_fraction,
                           hot_probability=self.hot_probability)


@dataclass(frozen=True)
class ZipfKeysSpec(KeySpec):
    """Zipf-like skew via the continuous bounded-Pareto inverse CDF
    (density proportional to ``x**-theta`` over the key space).

    ``theta`` in ``(0, 1)`` controls the skew (0 -> uniform, 0.99 ->
    YCSB-style heavy skew).  By default the hot mass sits on the low
    keys (a contiguous hot subtree, comparable to the hotspot picker);
    ``scramble=True`` applies a Fibonacci-hash permutation so the hot
    keys scatter across the whole space instead.
    """

    kind: ClassVar[str] = "zipf"
    vector_native: ClassVar[bool] = True

    theta: float = 0.9
    scramble: bool = False

    def __post_init__(self) -> None:
        _require(0.0 < self.theta < 1.0, "zipf theta must be in (0, 1)")

    def build(self, key_space: int, rng):
        from repro.workload.keys import ZipfKeys
        return ZipfKeys(key_space, rng, theta=self.theta,
                        scramble=self.scramble)


@dataclass(frozen=True)
class MigratingHotspotKeysSpec(KeySpec):
    """A hotspot whose center drifts over *simulated time*.

    The hot range starts at fraction ``center_start`` of the key space
    and moves by ``velocity`` key-space fractions per simulated time
    unit (wrapping modulo the space), modelling attention shifting
    across the keyspace.  Time-dependent, so pre-drawn vector streams
    cannot represent it — the batch/vector path falls back to scalar.
    """

    kind: ClassVar[str] = "migrating"
    vector_native: ClassVar[bool] = False

    hot_fraction: float = 0.2
    hot_probability: float = 0.8
    center_start: float = 0.0
    velocity: float = 1e-3

    def __post_init__(self) -> None:
        _require(0.0 < self.hot_fraction < 1.0,
                 "hot_fraction must be in (0, 1)")
        _require(0.0 <= self.hot_probability <= 1.0,
                 "hot_probability must be in [0, 1]")
        _require(0.0 <= self.center_start < 1.0,
                 "center_start must be in [0, 1)")
        _require(math.isfinite(self.velocity),
                 "velocity must be finite")

    def build(self, key_space: int, rng):
        from repro.workload.keys import MigratingHotspotKeys
        return MigratingHotspotKeys(
            key_space, rng, hot_fraction=self.hot_fraction,
            hot_probability=self.hot_probability,
            center_start=self.center_start, velocity=self.velocity)


# ---------------------------------------------------------------------------
# Transactions


@dataclass(frozen=True)
class TransactionSpec:
    """Multi-operation transaction envelope.

    ``size`` consecutive operations execute under one envelope that
    acquires per-key transaction locks (reads share, updates exclude)
    for *all* member keys up front — in sorted key order, so envelopes
    never deadlock — and holds them until the last member completes.
    ``size=1`` is the legacy behaviour: independent operations, no
    transaction locks, bit-identical to the pre-workload driver.
    """

    size: int = 1

    def __post_init__(self) -> None:
        _require(self.size >= 1, "transaction size must be >= 1")


# ---------------------------------------------------------------------------
# The composite spec


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload: arrival process + key distribution + transactions.

    Frozen and content-hashable: a non-default spec set on
    :class:`~repro.simulator.config.SimulationConfig` is folded into
    the on-disk result-cache key, while the default spec (and
    ``workload=None``) hashes exactly as before the field existed.
    """

    arrival: ArrivalSpec = field(default_factory=PoissonArrivals)
    keys: KeySpec = field(default_factory=UniformKeysSpec)
    transaction: TransactionSpec = field(default_factory=TransactionSpec)

    def __post_init__(self) -> None:
        _require(isinstance(self.arrival, ArrivalSpec),
                 f"arrival must be an ArrivalSpec, "
                 f"got {type(self.arrival).__name__}")
        _require(isinstance(self.keys, KeySpec),
                 f"keys must be a KeySpec, got {type(self.keys).__name__}")
        _require(isinstance(self.transaction, TransactionSpec),
                 f"transaction must be a TransactionSpec, "
                 f"got {type(self.transaction).__name__}")

    def is_default(self) -> bool:
        """True when this spec reproduces the legacy driver exactly
        (and is therefore omitted from cache keys)."""
        return self == DEFAULT_WORKLOAD

    def vector_native(self) -> bool:
        """True when the vectorized kernels can consume pre-drawn
        streams of this workload (see :mod:`repro.workload.streams`)."""
        return (self.arrival.vector_native and self.keys.vector_native
                and self.transaction.size == 1)


#: The spec equal to "no spec": stationary Poisson, uniform keys,
#: single-operation transactions.
DEFAULT_WORKLOAD = WorkloadSpec()


def mix_thresholds(mix) -> Tuple[float, float]:
    """The cumulative draw thresholds ``(q_s, q_s + q_i)`` of an
    operation mix, validated once per run.

    The drivers hoist this out of their per-arrival loops: an invalid
    mix (probabilities not summing to 1 — possible when a mix object
    was built around :class:`~repro.model.params.OperationMix`'s own
    validation) raises a structured
    :class:`~repro.errors.ConfigurationError` naming the offending mix
    up front instead of silently skewing draws deep in the arrival
    loop.
    """
    q_search, q_insert, q_delete = \
        mix.q_search, mix.q_insert, mix.q_delete
    total = q_search + q_insert + q_delete
    if not (min(q_search, q_insert, q_delete) >= 0.0
            and math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9)):
        raise ConfigurationError(
            f"operation mix (q_search={q_search}, q_insert={q_insert}, "
            f"q_delete={q_delete}) sums to {total}, not 1")
    return q_search, q_search + q_insert


def effective_workload(config) -> Optional[WorkloadSpec]:
    """The :class:`WorkloadSpec` a simulation config asks for.

    ``config.workload`` when set; otherwise a spec derived from the
    legacy ``key_distribution`` fields (``"hotspot"`` maps to
    :class:`HotspotKeysSpec` with the config's parameters, anything
    else to the default spec).
    """
    workload = getattr(config, "workload", None)
    if workload is not None:
        return workload
    if getattr(config, "key_distribution", "uniform") == "hotspot":
        return WorkloadSpec(keys=HotspotKeysSpec(
            hot_fraction=config.hot_fraction,
            hot_probability=config.hot_probability))
    return DEFAULT_WORKLOAD
