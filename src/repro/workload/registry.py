"""Registry of the built-in arrival processes and key distributions.

Mirrors the :mod:`repro.algorithms` registry pattern: one canonical
listing that the CLI (``btree-perf list-workloads``), the docs and the
tests enumerate, so a new distribution registers itself here and shows
up everywhere.  Each entry records whether the vectorized batch path
consumes pre-drawn streams of the component natively
(:mod:`repro.workload.streams`) or replication batches fall back to
per-lane scalar simulation (results are bit-identical either way —
the flag is a performance property, not a correctness one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

from repro.errors import ConfigurationError
from repro.workload.spec import (
    ArrivalSpec,
    HotspotKeysSpec,
    KeySpec,
    MMPPArrivals,
    MigratingHotspotKeysSpec,
    PoissonArrivals,
    ScheduleArrivals,
    SpikeArrivals,
    UniformKeysSpec,
    ZipfKeysSpec,
)

__all__ = ["WorkloadComponent", "all_arrival_processes",
           "all_key_distributions", "get_arrival_process",
           "get_key_distribution"]


@dataclass(frozen=True)
class WorkloadComponent:
    """One registered arrival process or key distribution."""

    #: ``"arrival"`` or ``"keys"``.
    category: str
    #: Registry name (the spec class's ``kind``).
    name: str
    spec_type: Type
    #: One-line description for the CLI listing.
    label: str

    @property
    def vector_native(self) -> bool:
        return bool(self.spec_type.vector_native)


_ARRIVALS: Tuple[WorkloadComponent, ...] = (
    WorkloadComponent("arrival", PoissonArrivals.kind, PoissonArrivals,
                      "stationary Poisson (the paper's stream)"),
    WorkloadComponent("arrival", MMPPArrivals.kind, MMPPArrivals,
                      "ON/OFF bursty (2-state MMPP, mean-preserving)"),
    WorkloadComponent("arrival", ScheduleArrivals.kind, ScheduleArrivals,
                      "piecewise diurnal rate schedule (cycling)"),
    WorkloadComponent("arrival", SpikeArrivals.kind, SpikeArrivals,
                      "flash-crowd spike (transient burst)"),
)

_KEYS: Tuple[WorkloadComponent, ...] = (
    WorkloadComponent("keys", UniformKeysSpec.kind, UniformKeysSpec,
                      "uniform over the key space"),
    WorkloadComponent("keys", HotspotKeysSpec.kind, HotspotKeysSpec,
                      "static 80/20-style hot range"),
    WorkloadComponent("keys", ZipfKeysSpec.kind, ZipfKeysSpec,
                      "Zipf power-law skew (optionally scrambled)"),
    WorkloadComponent("keys", MigratingHotspotKeysSpec.kind,
                      MigratingHotspotKeysSpec,
                      "hot range drifting over simulated time"),
)


def all_arrival_processes() -> Tuple[WorkloadComponent, ...]:
    """Every registered arrival process, in registry order."""
    return _ARRIVALS


def all_key_distributions() -> Tuple[WorkloadComponent, ...]:
    """Every registered key distribution, in registry order."""
    return _KEYS


def _lookup(entries: Tuple[WorkloadComponent, ...], name: str,
            what: str) -> WorkloadComponent:
    for entry in entries:
        if entry.name == name:
            return entry
    known = ", ".join(sorted(e.name for e in entries))
    raise ConfigurationError(
        f"unknown {what} {name!r}; known: {known}")


def get_arrival_process(name: str) -> WorkloadComponent:
    return _lookup(_ARRIVALS, name, "arrival process")


def get_key_distribution(name: str) -> WorkloadComponent:
    return _lookup(_KEYS, name, "key distribution")


def _check(entries: Tuple[WorkloadComponent, ...],
           base: Type) -> None:
    seen = set()
    for entry in entries:
        if entry.name in seen:
            raise ConfigurationError(
                f"workload component {entry.name!r} registered twice")
        seen.add(entry.name)
        if not issubclass(entry.spec_type, base):
            raise ConfigurationError(
                f"{entry.name!r} does not subclass {base.__name__}")


_check(_ARRIVALS, ArrivalSpec)
_check(_KEYS, KeySpec)
