"""The pluggable workload subsystem (supersedes ``repro.workloads``).

A workload is declared as a frozen :class:`WorkloadSpec` — arrival
process x key distribution x transaction envelope — set on
:class:`~repro.simulator.config.SimulationConfig` and content-hashed
into result-cache keys.  The default spec reproduces the legacy
stationary-Poisson/uniform behaviour bit-identically.

See ``docs/workloads.md`` for the spec format, the built-in traces and
how to add a distribution; ``btree-perf list-workloads`` prints the
registry.
"""

from repro.workload.keys import (
    HotspotKeys,
    KeyPicker,
    MigratingHotspotKeys,
    UniformKeys,
    ZipfKeys,
)
from repro.workload.mixes import (
    INSERT_ONLY,
    PAPER_MIX,
    READ_HEAVY,
    UPDATE_HEAVY,
    draw_operation,
)
from repro.workload.registry import (
    WorkloadComponent,
    all_arrival_processes,
    all_key_distributions,
    get_arrival_process,
    get_key_distribution,
)
from repro.workload.runtime import WorkloadRuntime
from repro.workload.spec import (
    DEFAULT_WORKLOAD,
    ArrivalSpec,
    HotspotKeysSpec,
    KeySpec,
    MMPPArrivals,
    MigratingHotspotKeysSpec,
    PoissonArrivals,
    ScheduleArrivals,
    SpikeArrivals,
    TransactionSpec,
    UniformKeysSpec,
    WorkloadSpec,
    ZipfKeysSpec,
    effective_workload,
    mix_thresholds,
)
from repro.workload.transactions import (
    TransactionLockTable,
    transaction_envelope,
)

__all__ = [
    "ArrivalSpec",
    "DEFAULT_WORKLOAD",
    "HotspotKeys",
    "HotspotKeysSpec",
    "INSERT_ONLY",
    "KeyPicker",
    "KeySpec",
    "MMPPArrivals",
    "MigratingHotspotKeys",
    "MigratingHotspotKeysSpec",
    "PAPER_MIX",
    "PoissonArrivals",
    "READ_HEAVY",
    "ScheduleArrivals",
    "SpikeArrivals",
    "TransactionLockTable",
    "TransactionSpec",
    "UPDATE_HEAVY",
    "UniformKeys",
    "UniformKeysSpec",
    "WorkloadComponent",
    "WorkloadRuntime",
    "WorkloadSpec",
    "ZipfKeys",
    "ZipfKeysSpec",
    "all_arrival_processes",
    "all_key_distributions",
    "draw_operation",
    "effective_workload",
    "get_arrival_process",
    "get_key_distribution",
    "mix_thresholds",
    "transaction_envelope",
]
