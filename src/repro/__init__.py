"""repro: performance analysis of concurrent B-tree algorithms.

A faithful reproduction of Johnson & Shasha, "A Framework for the
Performance Analysis of Concurrent B-tree Algorithms" (PODS 1990):

* :mod:`repro.model` — the analytical framework (queueing models of
  Naive Lock-coupling, Optimistic Descent and the Link-type algorithm,
  rules of thumb, recovery extensions);
* :mod:`repro.simulator` — the validating concurrent B-tree simulator;
* :mod:`repro.btree` — the B+-tree substrate (merge-at-empty /
  merge-at-half, right links);
* :mod:`repro.des` — the discrete-event simulation kernel;
* :mod:`repro.experiments` — drivers regenerating every figure of the
  paper's evaluation.

Quickstart::

    from repro import paper_default_config, analyze_lock_coupling
    prediction = analyze_lock_coupling(paper_default_config(), 0.2)
    print(prediction.response("insert"))
"""

from repro.model import (
    AlgorithmPrediction,
    CostModel,
    LEAF_ONLY_RECOVERY,
    ModelConfig,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    OccupancyModel,
    OperationMix,
    TreeShape,
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    analyze_optimistic_with_recovery,
    analyze_two_phase,
    arrival_rate_for_root_utilization,
    max_throughput,
    paper_default_config,
    rule_of_thumb_1,
    rule_of_thumb_2,
    rule_of_thumb_3,
    rule_of_thumb_4,
)
from repro.btree import BPlusTree, build_tree
from repro.simulator import SimulationConfig, run_replications, run_simulation

__version__ = "1.0.0"

__all__ = [
    "AlgorithmPrediction",
    "BPlusTree",
    "CostModel",
    "LEAF_ONLY_RECOVERY",
    "ModelConfig",
    "NAIVE_RECOVERY",
    "NO_RECOVERY",
    "OccupancyModel",
    "OperationMix",
    "SimulationConfig",
    "TreeShape",
    "__version__",
    "analyze_link",
    "analyze_lock_coupling",
    "analyze_optimistic",
    "analyze_optimistic_with_recovery",
    "analyze_two_phase",
    "arrival_rate_for_root_utilization",
    "build_tree",
    "max_throughput",
    "paper_default_config",
    "rule_of_thumb_1",
    "rule_of_thumb_2",
    "rule_of_thumb_3",
    "rule_of_thumb_4",
    "run_replications",
    "run_simulation",
]
