"""Deterministic fault injection for the resilience test harness.

A :class:`FaultPlan` is a picklable set of :class:`FaultSpec`\\ s that
name *where* (a task index in the batch, or a solver) and *when* (which
retry attempts) a failure fires.  The plan travels to worker processes
inside the submitted call, so it works under any multiprocessing start
method, and it round-trips through the ``REPRO_FAULTS`` environment
variable so the CI smoke job can drive a stock ``btree-perf`` sweep
through the same failures.

Fault kinds
-----------

``kill-worker``
    The worker process hosting the task exits hard (``os._exit``),
    which breaks the whole ``ProcessPoolExecutor`` — the harshest
    failure the executor must absorb.  Inline (``jobs<=1``) runs raise
    :class:`~repro.errors.InjectedFaultError` instead, so the calling
    process survives.
``stall-task``
    The worker sleeps ``seconds`` before running the task, simulating a
    hang the in-simulation budget cannot see; only the executor's
    parent-side ``task_timeout`` can clear it.
``corrupt-cache-entry``
    The task's on-disk cache entry is overwritten with a payload whose
    checksum cannot verify, exercising the corrupt-entry-degrades-to-
    miss path inside a real sweep.
``inject-nan``
    The next ``count`` fixed-point evaluations in
    :func:`repro.model.rwqueue.solve_rw_queue` return NaN, exercising
    the solver's divergence guards (installed per-process via
    :func:`nan_faults`).

All faults are deterministic: they key off task index and attempt
number, never off timing or randomness.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError, InjectedFaultError

#: Fault kinds (the ISSUE's harness vocabulary).
KILL_WORKER = "kill-worker"
STALL_TASK = "stall-task"
CORRUPT_CACHE = "corrupt-cache-entry"
INJECT_NAN = "inject-nan"

_KINDS = (KILL_WORKER, STALL_TASK, CORRUPT_CACHE, INJECT_NAN)

#: Environment variable carrying an encoded plan into CLI runs.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status of a worker killed by the harness (diagnostic only).
KILL_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic failure.

    ``attempts`` lists the retry-attempt numbers (0 = first try) on
    which the fault fires; ``None`` means every attempt — the shape of
    a *persistent* fault that retries cannot clear, where the default
    ``(0,)`` models a *transient* one.
    """

    kind: str
    task_index: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = (0,)
    #: Stall duration (``stall-task`` only).
    seconds: float = 30.0
    #: How many evaluations to poison (``inject-nan`` only; -1 = all).
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(_KINDS)}")
        if self.kind in (KILL_WORKER, STALL_TASK, CORRUPT_CACHE) \
                and self.task_index is None:
            raise ConfigurationError(
                f"{self.kind} faults need a task_index")
        if self.seconds < 0:
            raise ConfigurationError(
                f"stall seconds must be >= 0, got {self.seconds}")

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts

    def encode(self) -> str:
        """``kind@index#attempts~seconds`` (omitting defaulted parts)."""
        parts = [self.kind]
        if self.task_index is not None:
            parts.append(f"@{self.task_index}")
        if self.attempts is None:
            parts.append("#*")
        elif self.attempts != (0,):
            parts.append("#" + "+".join(str(a) for a in self.attempts))
        if self.kind == STALL_TASK and self.seconds != 30.0:
            parts.append(f"~{self.seconds:g}")
        if self.kind == INJECT_NAN and self.count != 1:
            parts.append(f"x{self.count}")
        return "".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable collection of :class:`FaultSpec`\\ s."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def worker_faults(self, index: int, attempt: int) -> Tuple[FaultSpec, ...]:
        """Kill/stall faults that fire for task ``index`` at ``attempt``."""
        return tuple(s for s in self.specs
                     if s.kind in (KILL_WORKER, STALL_TASK)
                     and s.task_index == index and s.fires_on(attempt))

    def cache_faults(self, index: int) -> Tuple[FaultSpec, ...]:
        """Cache-corruption faults targeting task ``index``."""
        return tuple(s for s in self.specs
                     if s.kind == CORRUPT_CACHE and s.task_index == index)

    def nan_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == INJECT_NAN)

    def encode(self) -> str:
        """Round-trippable text form for :data:`FAULTS_ENV`."""
        return ";".join(spec.encode() for spec in self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`encode`; raises
        :class:`~repro.errors.ConfigurationError` on malformed specs."""
        specs = []
        for chunk in filter(None, (p.strip() for p in text.split(";"))):
            specs.append(_parse_spec(chunk))
        return cls(specs=tuple(specs))


def _parse_spec(chunk: str) -> FaultSpec:
    original = chunk
    count = 1
    if "x" in chunk:
        chunk, _, count_text = chunk.rpartition("x")
        count = _parse_int(count_text, original, "count")
    seconds = 30.0
    if "~" in chunk:
        chunk, _, seconds_text = chunk.partition("~")
        try:
            seconds = float(seconds_text)
        except ValueError:
            raise ConfigurationError(
                f"bad stall duration in fault spec {original!r}") from None
    attempts: Optional[Tuple[int, ...]] = (0,)
    if "#" in chunk:
        chunk, _, attempts_text = chunk.partition("#")
        if attempts_text == "*":
            attempts = None
        else:
            attempts = tuple(_parse_int(a, original, "attempt")
                             for a in attempts_text.split("+"))
    index: Optional[int] = None
    if "@" in chunk:
        chunk, _, index_text = chunk.partition("@")
        index = _parse_int(index_text, original, "task index")
    return FaultSpec(kind=chunk, task_index=index, attempts=attempts,
                     seconds=seconds, count=count)


def _parse_int(text: str, original: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"bad {what} in fault spec {original!r}") from None


def plan_from_env() -> Optional[FaultPlan]:
    """The plan encoded in ``$REPRO_FAULTS``, or None when unset/empty."""
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    return FaultPlan.parse(text)


# ----------------------------------------------------------------------
# Worker-side application (kill / stall)
# ----------------------------------------------------------------------
def apply_worker_faults(specs: Tuple[FaultSpec, ...]) -> None:
    """Fire ``specs`` inside the process about to run the task.

    Stalls run before kills so a combined spec list stalls-then-dies.
    In a worker process a kill is a real ``os._exit`` (the parent sees
    ``BrokenProcessPool``); inline it raises
    :class:`~repro.errors.InjectedFaultError` instead.
    """
    for spec in specs:
        if spec.kind == STALL_TASK and spec.seconds > 0:
            time.sleep(spec.seconds)
    for spec in specs:
        if spec.kind == KILL_WORKER:
            if multiprocessing.parent_process() is not None:
                os._exit(KILL_EXIT_CODE)
            raise InjectedFaultError(
                f"kill-worker fault fired inline for task "
                f"{spec.task_index}")


# ----------------------------------------------------------------------
# Cache corruption
# ----------------------------------------------------------------------
def corrupt_cache_entry(cache, key: str) -> bool:
    """Overwrite ``key``'s stored payload so its checksum cannot verify.

    Keeps the entry's header magic intact so the *checksum*, not the
    format sniffing, is what catches it.  Returns False when the entry
    does not exist (nothing to corrupt).
    """
    path = cache.path_for(key)
    try:
        blob = path.read_bytes()
    except OSError:
        return False
    if not blob:
        return False
    # Flip the final payload byte; header (if any) stays valid.
    path.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    return True


# ----------------------------------------------------------------------
# Solver NaN injection
# ----------------------------------------------------------------------
#: Remaining NaN evaluations to poison in this process; -1 = unlimited.
#: Plain module state: the solvers check ``_nan_remaining`` with one
#: integer compare, so the fault-free path costs nothing measurable.
_nan_remaining = 0


def consume_nan_fault() -> bool:
    """True when the calling solver evaluation should return NaN."""
    global _nan_remaining
    if _nan_remaining == 0:
        return False
    if _nan_remaining > 0:
        _nan_remaining -= 1
    return True


@contextmanager
def nan_faults(count: int = 1) -> Iterator[None]:
    """Poison the next ``count`` solver evaluations (-1 = all) in this
    process; restores the previous state on exit."""
    global _nan_remaining
    previous = _nan_remaining
    _nan_remaining = count
    try:
        yield
    finally:
        _nan_remaining = previous


def install_nan_faults(plan: Optional[FaultPlan]) -> None:
    """Arm the plan's ``inject-nan`` specs in this process (used by the
    executor before running model-side work; tests prefer the
    :func:`nan_faults` context manager)."""
    global _nan_remaining
    if plan is None:
        _nan_remaining = 0
        return
    specs = plan.nan_faults()
    if not specs:
        _nan_remaining = 0
    elif any(s.count < 0 for s in specs):
        _nan_remaining = -1
    else:
        _nan_remaining = sum(s.count for s in specs)
