"""Deterministic fault injection for the resilience test harness.

A :class:`FaultPlan` is a picklable set of :class:`FaultSpec`\\ s that
name *where* (a task index in the batch, or a solver) and *when* (which
retry attempts) a failure fires.  The plan travels to worker processes
inside the submitted call, so it works under any multiprocessing start
method, and it round-trips through the ``REPRO_FAULTS`` environment
variable so the CI smoke job can drive a stock ``btree-perf`` sweep
through the same failures.

Fault kinds
-----------

``kill-worker``
    The worker process hosting the task exits hard (``os._exit``),
    which breaks the whole ``ProcessPoolExecutor`` — the harshest
    failure the executor must absorb.  Inline (``jobs<=1``) runs raise
    :class:`~repro.errors.InjectedFaultError` instead, so the calling
    process survives.
``stall-task``
    The worker sleeps ``seconds`` before running the task, simulating a
    hang the in-simulation budget cannot see; only the executor's
    parent-side ``task_timeout`` can clear it.
``corrupt-cache-entry``
    The task's on-disk cache entry is overwritten with a payload whose
    checksum cannot verify, exercising the corrupt-entry-degrades-to-
    miss path inside a real sweep.
``inject-nan``
    The next ``count`` fixed-point evaluations in
    :func:`repro.model.rwqueue.solve_rw_queue` return NaN, exercising
    the solver's divergence guards (installed per-process via
    :func:`nan_faults`).

Simulation-time fault kinds
---------------------------

The kinds above strike the *sweep harness* (worker processes, cache
files, solvers).  The cluster tier (:mod:`repro.cluster`) adds faults
that strike the *simulated system* at simulated times — ``task_index``
names the target **shard** and ``at``/``duration`` open a window on the
simulation clock:

``shard-crash``
    The whole shard (primary and replicas) is down during
    ``[at, at + duration)``; in-flight and arriving operations fail
    (or retry, under a retry policy).  After recovery the shard
    replays its backlog: service times are inflated by ``factor``
    for a catch-up window of the same length (the Section 7 recovery
    analogy — writes behave like lock-retaining recovery writes).
``slow-shard``
    Brownout of the shard's *primary* server: its service times are
    dilated by ``factor`` during the window (replicas keep serving
    reads at nominal speed, which is what makes hedged reads win).
``replica-lag``
    The shard's replica servers serve reads ``factor`` times slower
    during the window (stale/lagging followers).

All faults are deterministic: they key off task index / shard, attempt
number and simulated time, never off wall-clock timing or randomness.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError, InjectedFaultError

#: Fault kinds (the ISSUE's harness vocabulary).
KILL_WORKER = "kill-worker"
STALL_TASK = "stall-task"
CORRUPT_CACHE = "corrupt-cache-entry"
INJECT_NAN = "inject-nan"
#: Simulation-time fault kinds (the cluster tier's chaos vocabulary).
SHARD_CRASH = "shard-crash"
SLOW_SHARD = "slow-shard"
REPLICA_LAG = "replica-lag"

#: Kinds that strike the simulated cluster rather than the harness.
SIMULATION_KINDS = (SHARD_CRASH, SLOW_SHARD, REPLICA_LAG)

_KINDS = (KILL_WORKER, STALL_TASK, CORRUPT_CACHE, INJECT_NAN) \
    + SIMULATION_KINDS

#: Defaults for the optional encoded fields (omitted when defaulted).
_DEFAULT_SECONDS = 30.0
_DEFAULT_AT = 0.0
_DEFAULT_DURATION = 100.0
_DEFAULT_FACTOR = 2.0

#: Environment variable carrying an encoded plan into CLI runs.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status of a worker killed by the harness (diagnostic only).
KILL_EXIT_CODE = 87


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic failure.

    ``attempts`` lists the retry-attempt numbers (0 = first try) on
    which the fault fires; ``None`` means every attempt — the shape of
    a *persistent* fault that retries cannot clear, where the default
    ``(0,)`` models a *transient* one.  For the simulation-time kinds
    (:data:`SIMULATION_KINDS`) ``task_index`` names the target *shard*
    and ``at``/``duration`` bound the fault window on the simulation
    clock; attempts do not apply.
    """

    kind: str
    task_index: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = (0,)
    #: Stall duration (``stall-task`` only).
    seconds: float = _DEFAULT_SECONDS
    #: How many evaluations to poison (``inject-nan`` only; -1 = all).
    count: int = 1
    #: Simulated start time of the fault window (simulation kinds).
    at: float = _DEFAULT_AT
    #: Simulated length of the fault window (simulation kinds).
    duration: float = _DEFAULT_DURATION
    #: Service-time multiplier: brownout / replica-lag dilation, or the
    #: post-crash catch-up replay inflation (simulation kinds).
    factor: float = _DEFAULT_FACTOR

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(_KINDS)}")
        if self.kind in (KILL_WORKER, STALL_TASK, CORRUPT_CACHE) \
                and self.task_index is None:
            raise ConfigurationError(
                f"{self.kind} faults need a task_index")
        if self.kind in SIMULATION_KINDS and self.task_index is None:
            raise ConfigurationError(
                f"{self.kind} faults need a task_index naming the shard")
        if self.seconds < 0:
            raise ConfigurationError(
                f"stall seconds must be >= 0, got {self.seconds}")
        if self.at < 0:
            raise ConfigurationError(
                f"fault start time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"fault duration must be > 0, got {self.duration}")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"fault factor is a dilation >= 1, got {self.factor}")

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts

    @property
    def shard(self) -> int:
        """Target shard of a simulation-time fault (= ``task_index``)."""
        if self.kind not in SIMULATION_KINDS or self.task_index is None:
            raise ConfigurationError(
                f"{self.kind} faults do not target a shard")
        return self.task_index

    @property
    def window_end(self) -> float:
        """End of the fault window: ``at + duration``."""
        return self.at + self.duration

    def active_at(self, time: float) -> bool:
        """True while a simulation-time fault window covers ``time``."""
        return self.at <= time < self.window_end

    def encode(self) -> str:
        """``kind@index#attempts~seconds!at%factor`` (omitting defaulted
        parts).  ``~`` carries the fault's window length: the stall
        seconds for ``stall-task``, the window duration for the
        simulation kinds."""
        parts = [self.kind]
        if self.task_index is not None:
            parts.append(f"@{self.task_index}")
        if self.attempts is None:
            parts.append("#*")
        elif self.attempts != (0,):
            parts.append("#" + "+".join(str(a) for a in self.attempts))
        if self.kind == STALL_TASK and self.seconds != _DEFAULT_SECONDS:
            parts.append(f"~{self.seconds:g}")
        if self.kind in SIMULATION_KINDS:
            if self.duration != _DEFAULT_DURATION:
                parts.append(f"~{self.duration:g}")
            if self.at != _DEFAULT_AT:
                parts.append(f"!{self.at:g}")
            if self.factor != _DEFAULT_FACTOR:
                parts.append(f"%{self.factor:g}")
        if self.kind == INJECT_NAN and self.count != 1:
            parts.append(f"x{self.count}")
        return "".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable collection of :class:`FaultSpec`\\ s."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def worker_faults(self, index: int, attempt: int) -> Tuple[FaultSpec, ...]:
        """Kill/stall faults that fire for task ``index`` at ``attempt``."""
        return tuple(s for s in self.specs
                     if s.kind in (KILL_WORKER, STALL_TASK)
                     and s.task_index == index and s.fires_on(attempt))

    def cache_faults(self, index: int) -> Tuple[FaultSpec, ...]:
        """Cache-corruption faults targeting task ``index``."""
        return tuple(s for s in self.specs
                     if s.kind == CORRUPT_CACHE and s.task_index == index)

    def nan_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == INJECT_NAN)

    def simulation_faults(self, kind: Optional[str] = None,
                          shard: Optional[int] = None,
                          ) -> Tuple[FaultSpec, ...]:
        """Simulation-time faults, sorted by window start.

        Optionally filtered to one ``kind`` and/or one target ``shard``;
        the cluster simulator consumes these (:mod:`repro.cluster`).
        """
        specs = [s for s in self.specs if s.kind in SIMULATION_KINDS
                 and (kind is None or s.kind == kind)
                 and (shard is None or s.task_index == shard)]
        specs.sort(key=lambda s: (s.at, s.task_index or 0))
        return tuple(specs)

    def encode(self) -> str:
        """Round-trippable text form for :data:`FAULTS_ENV`."""
        return ";".join(spec.encode() for spec in self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`encode`; raises
        :class:`~repro.errors.ConfigurationError` on malformed specs."""
        specs = []
        for chunk in filter(None, (p.strip() for p in text.split(";"))):
            specs.append(_parse_spec(chunk))
        return cls(specs=tuple(specs))


def _parse_spec(chunk: str) -> FaultSpec:
    # Markers are stripped in reverse order of FaultSpec.encode so each
    # partition's tail is exactly one field's text.
    original = chunk
    count = 1
    if "x" in chunk:
        chunk, _, count_text = chunk.rpartition("x")
        count = _parse_int(count_text, original, "count")
    factor = _DEFAULT_FACTOR
    if "%" in chunk:
        chunk, _, factor_text = chunk.partition("%")
        factor = _parse_float(factor_text, original, "factor")
    at = _DEFAULT_AT
    if "!" in chunk:
        chunk, _, at_text = chunk.partition("!")
        at = _parse_float(at_text, original, "start time")
    window = None
    if "~" in chunk:
        chunk, _, window_text = chunk.partition("~")
        window = _parse_float(window_text, original, "duration")
    attempts: Optional[Tuple[int, ...]] = (0,)
    if "#" in chunk:
        chunk, _, attempts_text = chunk.partition("#")
        if attempts_text == "*":
            attempts = None
        else:
            attempts = tuple(_parse_int(a, original, "attempt")
                             for a in attempts_text.split("+"))
    index: Optional[int] = None
    if "@" in chunk:
        chunk, _, index_text = chunk.partition("@")
        index = _parse_int(index_text, original, "task index")
    # ``~`` carries seconds for stall-task, the window duration for the
    # simulation-time kinds (the kind is only known now).
    seconds = _DEFAULT_SECONDS
    duration = _DEFAULT_DURATION
    if window is not None:
        if chunk in SIMULATION_KINDS:
            duration = window
        else:
            seconds = window
    return FaultSpec(kind=chunk, task_index=index, attempts=attempts,
                     seconds=seconds, count=count, at=at,
                     duration=duration, factor=factor)


def _parse_int(text: str, original: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"bad {what} in fault spec {original!r}") from None


def _parse_float(text: str, original: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"bad {what} in fault spec {original!r}") from None


def plan_from_env() -> Optional[FaultPlan]:
    """The plan encoded in ``$REPRO_FAULTS``, or None when unset/empty."""
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    return FaultPlan.parse(text)


# ----------------------------------------------------------------------
# Worker-side application (kill / stall)
# ----------------------------------------------------------------------
def apply_worker_faults(specs: Tuple[FaultSpec, ...]) -> None:
    """Fire ``specs`` inside the process about to run the task.

    Stalls run before kills so a combined spec list stalls-then-dies.
    In a worker process a kill is a real ``os._exit`` (the parent sees
    ``BrokenProcessPool``); inline it raises
    :class:`~repro.errors.InjectedFaultError` instead.
    """
    for spec in specs:
        if spec.kind == STALL_TASK and spec.seconds > 0:
            time.sleep(spec.seconds)
    for spec in specs:
        if spec.kind == KILL_WORKER:
            if multiprocessing.parent_process() is not None:
                os._exit(KILL_EXIT_CODE)
            raise InjectedFaultError(
                f"kill-worker fault fired inline for task "
                f"{spec.task_index}")


# ----------------------------------------------------------------------
# Cache corruption
# ----------------------------------------------------------------------
def corrupt_cache_entry(cache, key: str) -> bool:
    """Overwrite ``key``'s stored payload so its checksum cannot verify.

    Keeps the entry's header magic intact so the *checksum*, not the
    format sniffing, is what catches it.  Returns False when the entry
    does not exist (nothing to corrupt).
    """
    path = cache.path_for(key)
    try:
        blob = path.read_bytes()
    except OSError:
        return False
    if not blob:
        return False
    # Flip the final payload byte; header (if any) stays valid.
    path.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    return True


# ----------------------------------------------------------------------
# Solver NaN injection
# ----------------------------------------------------------------------
#: Remaining NaN evaluations to poison in this process; -1 = unlimited.
#: Plain module state: the solvers check ``_nan_remaining`` with one
#: integer compare, so the fault-free path costs nothing measurable.
_nan_remaining = 0


def consume_nan_fault() -> bool:
    """True when the calling solver evaluation should return NaN."""
    global _nan_remaining
    if _nan_remaining == 0:
        return False
    if _nan_remaining > 0:
        _nan_remaining -= 1
    return True


@contextmanager
def nan_faults(count: int = 1) -> Iterator[None]:
    """Poison the next ``count`` solver evaluations (-1 = all) in this
    process; restores the previous state on exit."""
    global _nan_remaining
    previous = _nan_remaining
    _nan_remaining = count
    try:
        yield
    finally:
        _nan_remaining = previous


def install_nan_faults(plan: Optional[FaultPlan]) -> None:
    """Arm the plan's ``inject-nan`` specs in this process (used by the
    executor before running model-side work; tests prefer the
    :func:`nan_faults` context manager)."""
    global _nan_remaining
    if plan is None:
        _nan_remaining = 0
        return
    specs = plan.nan_faults()
    if not specs:
        _nan_remaining = 0
    elif any(s.count < 0 for s in specs):
        _nan_remaining = -1
    else:
        _nan_remaining = sum(s.count for s in specs)
