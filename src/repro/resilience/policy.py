"""Failure policy for resilient sweep execution.

:class:`RetryPolicy` bounds how often a failed task is retried and how
long to back off between attempts (exponential with deterministic
jitter — the jitter derives from the task identity and attempt number,
never from global randomness, so a rerun schedules identically).

:class:`ResilienceOptions` bundles everything
:func:`repro.parallel.run_batch` needs to survive a hostile sweep:
the retry policy, the parent-side per-task wall deadline, a default
in-worker :class:`~repro.resilience.budget.TaskBudget`, the checkpoint
journal path, the fault plan under test, and an optional
:class:`~repro.obs.instruments.Instrumentation` that receives
``resilience.*`` counters.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.resilience.budget import TaskBudget
from repro.resilience.faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instruments import Instrumentation


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    A task is attempted at most ``1 + max_retries`` times; the delay
    before retry ``attempt`` (1-based) is::

        min(backoff_base * backoff_factor ** (attempt - 1), backoff_cap)
            * (1 + jitter * u)

    where ``u`` in [0, 1) is a hash of ``(token, attempt)`` — stable
    across reruns, decorrelated across tasks.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before retry ``attempt`` (1 = first retry)."""
        if attempt < 1:
            return 0.0
        base = min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                   self.backoff_cap)
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode("utf-8")).digest()
        u = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class ResilienceOptions:
    """How :func:`~repro.parallel.run_batch` should weather failures.

    ``task_timeout`` is the parent-side wall deadline for one *running*
    attempt; it needs ``jobs >= 2`` to preempt anything (an inline run
    cannot interrupt itself — give the task an in-worker ``budget`` for
    that).  ``checkpoint`` names the on-disk sweep journal; with
    ``resume`` set, completed tasks recorded there are not re-run.
    """

    retry: RetryPolicy = RetryPolicy()
    task_timeout: Optional[float] = None
    #: Default budget applied to tasks that do not carry their own.
    budget: Optional[TaskBudget] = None
    checkpoint: Optional[str] = None
    resume: bool = False
    faults: Optional[FaultPlan] = None
    #: Sink for ``resilience.*`` event counters (retries, timeouts,
    #: quarantines, pool rebuilds, truncations, cache corruption).
    instruments: Optional["Instrumentation"] = None
    #: Parent wait granularity while a timeout or backoff is armed.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.task_timeout is not None and not (
                isinstance(self.task_timeout, (int, float))
                and math.isfinite(self.task_timeout)
                and self.task_timeout > 0):
            raise ConfigurationError(
                f"task_timeout must be a positive finite number of "
                f"seconds, got {self.task_timeout!r}")
        if self.poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {self.poll_interval}")
        if self.resume and not self.checkpoint:
            raise ConfigurationError(
                "resume requires a checkpoint path to resume from")
        if self.checkpoint is not None:
            # Fail on construction, not hours into the sweep.
            parent = os.path.dirname(os.path.abspath(
                os.fspath(self.checkpoint))) or "."
            if os.path.exists(parent) and not os.path.isdir(parent):
                raise ConfigurationError(
                    f"checkpoint parent {parent!r} is not a directory")
