"""Resilient sweep execution (``repro.resilience``).

The paper's experiments live near and past saturation — the regime
where simulations can run effectively forever and fixed-point solvers
are most prone to divergence.  This package makes the sweep stack
degrade gracefully there instead of hanging or aborting:

* **budgets** — :class:`TaskBudget` bounds one run by executed events
  and/or wall clock; a tripped budget yields a structured
  :class:`TruncatedResult` (saturation-suspected), never a hang.
* **failure policy** — :class:`RetryPolicy` +
  :class:`ResilienceOptions` drive bounded retries with exponential
  backoff and deterministic jitter inside
  :func:`repro.parallel.run_batch`; exhausted tasks are quarantined and
  the sweep continues.
* **checkpoint/resume** — :class:`SweepJournal` is an append-only
  on-disk manifest; an interrupted sweep resumes, skipping completed
  tasks, and the journal doubles as the failure manifest.
* **fault injection** — :class:`FaultPlan` /
  :mod:`repro.resilience.faults` deterministically kill workers, stall
  tasks, corrupt cache entries and poison solver iterations, driving
  the test suite and the CI smoke job.

See ``docs/robustness.md`` for the failure model and usage.
"""

from repro.resilience.budget import (
    REASON_EVENT_CAP,
    REASON_WALL_DEADLINE,
    BudgetGuard,
    TaskBudget,
    TruncatedResult,
)
from repro.resilience.faults import (
    CORRUPT_CACHE,
    FAULTS_ENV,
    INJECT_NAN,
    KILL_WORKER,
    REPLICA_LAG,
    SHARD_CRASH,
    SIMULATION_KINDS,
    SLOW_SHARD,
    STALL_TASK,
    FaultPlan,
    FaultSpec,
    corrupt_cache_entry,
    nan_faults,
    plan_from_env,
)
from repro.resilience.manifest import SweepJournal, read_manifest
from repro.resilience.policy import ResilienceOptions, RetryPolicy
from repro.resilience.report import (
    ERROR_TIMEOUT,
    ERROR_WORKER_DIED,
    BatchReport,
    FailureRecord,
    TruncationRecord,
)

__all__ = [
    "BatchReport",
    "BudgetGuard",
    "CORRUPT_CACHE",
    "ERROR_TIMEOUT",
    "ERROR_WORKER_DIED",
    "FAULTS_ENV",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "INJECT_NAN",
    "KILL_WORKER",
    "REASON_EVENT_CAP",
    "REASON_WALL_DEADLINE",
    "REPLICA_LAG",
    "ResilienceOptions",
    "RetryPolicy",
    "SHARD_CRASH",
    "SIMULATION_KINDS",
    "SLOW_SHARD",
    "STALL_TASK",
    "SweepJournal",
    "TaskBudget",
    "TruncatedResult",
    "corrupt_cache_entry",
    "nan_faults",
    "plan_from_env",
    "read_manifest",
]
