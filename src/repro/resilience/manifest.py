"""The sweep checkpoint journal (checkpoint/resume + failure manifest).

An append-only NDJSON file that doubles as the sweep's failure
manifest.  One header line pins the journal to a specific task list
(count + digest of the per-task content keys); every completed task
appends a ``task`` line carrying its pickled result (base64), every
quarantine appends a ``task`` line with the failure, and retry/timeout/
rebuild events append ``event`` lines.  Appends are flushed per record,
so a killed sweep loses at most the line being written — and the loader
tolerates a torn final line by design.

Resuming (:class:`SweepJournal` with ``resume=True``) replays the
journal: tasks recorded ``completed`` are served from it without
re-execution; quarantined tasks get a fresh set of attempts (an
interrupted sweep is exactly when a flaky host may have improved).
A journal written for a different task list is refused with a readable
:class:`~repro.errors.CheckpointError` rather than silently mixing
sweeps.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.errors import CheckpointError
from repro.resilience.report import FailureRecord, TruncationRecord

JOURNAL_VERSION = 1


def keys_digest(keys: Sequence[Optional[str]]) -> str:
    """Order-sensitive digest pinning a journal to one task list."""
    hasher = hashlib.sha256()
    for key in keys:
        hasher.update((key or "-").encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class SweepJournal:
    """Append-only checkpoint + failure manifest for one ``run_batch``.

    ``keys[i]`` is task *i*'s content key (the same key the result
    cache uses), or ``None`` for tasks that cannot be resumed
    (telemetry runs — their time series are not journaled).
    """

    def __init__(self, path, keys: Sequence[Optional[str]],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.keys = list(keys)
        self.digest = keys_digest(self.keys)
        #: Results replayed from an existing journal, by task index.
        self.completed: Dict[int, Any] = {}
        #: Latest quarantine record per index seen in a resumed journal.
        self.prior_failures: Dict[int, str] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._replay()
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self._handle = self.path.open("w", encoding="utf-8")
            self._append({"kind": "header", "version": JOURNAL_VERSION,
                          "n_tasks": len(self.keys),
                          "keys_digest": self.digest})

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()

    def record_completed(self, index: int, attempts: int, result: Any,
                         truncation: Optional[TruncationRecord] = None,
                         ) -> None:
        record = {
            "kind": "task", "index": index, "key": self.keys[index],
            "status": "completed", "attempts": attempts,
            "result": base64.b64encode(
                pickle.dumps(result,
                             protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
        }
        if truncation is not None:
            record["truncated"] = truncation.reason
            record["events_executed"] = truncation.events_executed
        self._append(record)

    def record_quarantined(self, failure: FailureRecord) -> None:
        self._append({
            "kind": "task", "index": failure.index, "key": failure.key,
            "status": "quarantined", "attempts": failure.attempts,
            "error": failure.error, "message": failure.message,
        })

    def record_event(self, event: str, **fields) -> None:
        record = {"kind": "event", "event": event}
        record.update(fields)
        self._append(record)

    def close(self, summary: Optional[dict] = None) -> None:
        if self._handle.closed:
            return
        if summary is not None:
            self._append({"kind": "summary", **summary})
        self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        records = list(_read_records(self.path))
        if not records or records[0].get("kind") != "header":
            raise CheckpointError(
                f"{self.path} is not a sweep checkpoint journal "
                f"(missing header); delete it or point --resume at a "
                f"fresh path")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path} uses journal version "
                f"{header.get('version')!r}, this build writes "
                f"{JOURNAL_VERSION}")
        if (header.get("n_tasks") != len(self.keys)
                or header.get("keys_digest") != self.digest):
            raise CheckpointError(
                f"{self.path} was written for a different task list "
                f"({header.get('n_tasks')} task(s), digest "
                f"{str(header.get('keys_digest'))[:12]}…) than this "
                f"sweep ({len(self.keys)} task(s), digest "
                f"{self.digest[:12]}…); delete it or choose another "
                f"checkpoint path")
        for record in records[1:]:
            if record.get("kind") != "task":
                continue
            index = record.get("index")
            if not isinstance(index, int) or not 0 <= index < len(self.keys):
                continue
            if record.get("key") != self.keys[index]:
                continue  # same length, different point: ignore defensively
            if record.get("status") == "completed":
                payload = record.get("result")
                try:
                    result = pickle.loads(base64.b64decode(payload))
                except Exception:
                    continue  # torn/corrupt payload: recompute the task
                self.completed[index] = result
                self.prior_failures.pop(index, None)
            elif record.get("status") == "quarantined":
                self.prior_failures[index] = record.get("error", "unknown")
                self.completed.pop(index, None)


def _read_records(path: Path):
    """Parse journal lines, tolerating a torn final line."""
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return  # a crash mid-append; everything before is good
            if isinstance(record, dict):
                yield record


def read_manifest(path) -> Dict[str, Any]:
    """Summarize a journal for reporting: counts plus the latest status
    per task index (the *failure manifest* view)."""
    statuses: Dict[int, dict] = {}
    events = []
    header: Optional[dict] = None
    for record in _read_records(Path(path)):
        kind = record.get("kind")
        if kind == "header":
            header = record
        elif kind == "task" and isinstance(record.get("index"), int):
            slim = {k: v for k, v in record.items() if k != "result"}
            statuses[record["index"]] = slim
        elif kind == "event":
            events.append(record)
    completed = sorted(i for i, r in statuses.items()
                       if r.get("status") == "completed")
    quarantined = sorted(i for i, r in statuses.items()
                         if r.get("status") == "quarantined")
    return {
        "header": header,
        "tasks": statuses,
        "events": events,
        "completed": completed,
        "quarantined": quarantined,
    }
