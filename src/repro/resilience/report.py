"""Outcome records for a resilient batch.

A resilient sweep never aborts: it ends with partial results plus an
account of what went wrong.  :class:`BatchReport` is that account —
the in-order results list (``None`` where a task was quarantined),
the final :class:`FailureRecord` per quarantined task, the
:class:`TruncationRecord` per budget-truncated task, and the event
totals that also flow into ``resilience.*`` telemetry counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: ``FailureRecord.error`` value for a parent-side deadline expiry.
ERROR_TIMEOUT = "TaskTimeout"
#: ``FailureRecord.error`` value for a worker that died mid-task.
ERROR_WORKER_DIED = "WorkerDied"


@dataclass(frozen=True)
class FailureRecord:
    """The final failure state of one task."""

    index: int
    key: Optional[str]
    #: Exception class name, or :data:`ERROR_TIMEOUT` /
    #: :data:`ERROR_WORKER_DIED` for executor-level failures.
    error: str
    message: str
    attempts: int
    quarantined: bool = True

    def describe(self) -> str:
        return (f"task {self.index} ({self.key or 'unkeyed'}): "
                f"{self.error} after {self.attempts} attempt(s) — "
                f"{self.message}")


@dataclass(frozen=True)
class TruncationRecord:
    """One task stopped by its in-worker budget (still yields a
    partial, saturation-flagged result)."""

    index: int
    key: Optional[str]
    reason: str
    events_executed: int
    wall_seconds: float


@dataclass
class BatchReport:
    """Everything a resilient :func:`~repro.parallel.run_batch_report`
    run produced."""

    #: Results in task order; ``None`` marks a quarantined task.
    results: List[Optional[object]]
    failures: List[FailureRecord] = field(default_factory=list)
    truncations: List[TruncationRecord] = field(default_factory=list)
    #: Total retry attempts scheduled (any cause).
    retries: int = 0
    #: Parent-side deadline expiries observed.
    timeouts: int = 0
    #: Process pools torn down and rebuilt (worker death or timeout).
    pool_rebuilds: int = 0
    #: Tasks served from a resumed checkpoint journal.
    resumed: int = 0
    #: Cache entries detected corrupt and recomputed.
    cache_corruptions: int = 0
    #: The checkpoint journal path, when one was written.
    checkpoint_path: Optional[str] = None

    @property
    def quarantined_indices(self) -> List[int]:
        return [record.index for record in self.failures]

    @property
    def succeeded(self) -> int:
        return sum(1 for result in self.results if result is not None)

    @property
    def ok(self) -> bool:
        """True when every task produced a result (truncated counts:
        a truncated task still reports partial, usable metrics)."""
        return not self.failures

    def summary(self) -> str:
        """One human line for logs and the CLI."""
        n = len(self.results)
        parts = [f"{self.succeeded}/{n} tasks succeeded"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed from checkpoint")
        if self.truncations:
            parts.append(f"{len(self.truncations)} truncated by budget")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.cache_corruptions:
            parts.append(f"{self.cache_corruptions} corrupt cache "
                         f"entries recomputed")
        if self.failures:
            parts.append("quarantined: " + ", ".join(
                str(record.index) for record in self.failures))
        return "; ".join(parts)
