"""Per-task execution budgets.

The paper's central experiments probe behavior *near and past
saturation* — exactly the regime where an open-system run can grow its
event heap without bound (arrivals outpace completions, the population
check only fires on spawn) and a sweep point can effectively run
forever.  A :class:`TaskBudget` bounds one run two ways:

* ``max_events`` — a cap on executed simulation events, checked after
  every event.  Deterministic: the same configuration and cap always
  truncate at the same event.
* ``wall_seconds`` — a wall-clock deadline, checked every
  ``check_interval`` events so the monotonic-clock read stays off the
  per-event hot path.  Non-deterministic by nature, intended as the
  in-worker backstop against stalls.

A tripped budget does not raise: the drivers stop the simulation,
summarize whatever was measured (flagged ``overflowed`` — the paper's
saturation signal) and wrap it in a :class:`TruncatedResult` so callers
can tell a truncated run from a completed one.  Budgets default to
``None`` everywhere; the fault-free fast path is untouched.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.metrics import SimulationResult

#: ``TruncatedResult.reason`` values.
REASON_EVENT_CAP = "event-cap"
REASON_WALL_DEADLINE = "wall-deadline"


@dataclass(frozen=True)
class TaskBudget:
    """Execution bounds for one simulation run.

    ``None`` fields are unenforced; a budget with both fields ``None``
    is rejected (it would silently guard nothing).
    """

    wall_seconds: Optional[float] = None
    max_events: Optional[int] = None
    #: Events between wall-clock checks (the event cap is exact).
    check_interval: int = 2048

    def __post_init__(self) -> None:
        if self.wall_seconds is None and self.max_events is None:
            raise ConfigurationError(
                "a TaskBudget needs wall_seconds and/or max_events; "
                "use budget=None for an unbounded run")
        if self.wall_seconds is not None and not (
                isinstance(self.wall_seconds, (int, float))
                and math.isfinite(self.wall_seconds)
                and self.wall_seconds > 0):
            raise ConfigurationError(
                f"wall_seconds must be a positive finite number, got "
                f"{self.wall_seconds!r}")
        if self.max_events is not None and self.max_events < 1:
            raise ConfigurationError(
                f"max_events must be >= 1, got {self.max_events!r}")
        if self.check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {self.check_interval!r}")


class BudgetGuard:
    """Enforces a :class:`TaskBudget` from a ``stop_when`` predicate.

    The DES drivers call :meth:`exceeded` once per executed event (it is
    folded into the run's stop predicate), so ``events`` counts executed
    events without touching the engine.
    """

    __slots__ = ("budget", "events", "reason", "_deadline", "_next_check",
                 "_started")

    def __init__(self, budget: TaskBudget) -> None:
        self.budget = budget
        self.events = 0
        #: Why the budget tripped (None while within budget).
        self.reason: Optional[str] = None
        self._started = time.monotonic()
        self._deadline = (self._started + budget.wall_seconds
                          if budget.wall_seconds is not None else None)
        self._next_check = budget.check_interval

    @property
    def tripped(self) -> bool:
        return self.reason is not None

    def elapsed(self) -> float:
        """Wall seconds since the guard was armed."""
        return time.monotonic() - self._started

    def exceeded(self) -> bool:
        """Count one executed event; True once the budget is spent."""
        if self.reason is not None:
            return True
        self.events += 1
        budget = self.budget
        if budget.max_events is not None and self.events >= budget.max_events:
            self.reason = REASON_EVENT_CAP
            return True
        if self._deadline is not None and self.events >= self._next_check:
            self._next_check = self.events + budget.check_interval
            if time.monotonic() >= self._deadline:
                self.reason = REASON_WALL_DEADLINE
                return True
        return False


@dataclass(frozen=True)
class TruncatedResult:
    """A run the budget stopped before its operation target.

    ``result`` is the partial :class:`~repro.simulator.metrics.\
SimulationResult` summarized at truncation time, with ``overflowed``
    set — a budget trip in this workload regime is saturation-suspected,
    and the flag routes the point through the same pooled-mean handling
    as the paper's population-overflow signal.
    """

    result: "SimulationResult"
    reason: str
    events_executed: int
    wall_seconds: float

    @property
    def saturation_suspected(self) -> bool:
        """A truncated run means the offered load outran the budget —
        the symptom the paper associates with operating past the
        throughput limit."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TruncatedResult(reason={self.reason!r}, "
                f"events={self.events_executed}, "
                f"wall={self.wall_seconds:.3f}s, "
                f"seed={self.result.seed})")
