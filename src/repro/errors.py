"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle all library failures.  The sub-classes
mirror the three layers of the system: the analytical model, the
discrete-event engine, and the B-tree substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent or out of range."""


class ModelError(ReproError):
    """Base class for analytical-model failures."""


class UnstableQueueError(ModelError):
    """A lock queue is saturated: no stable solution exists.

    Raised by the FCFS R/W queue solver when the writer utilization fixed
    point has no root below 1, i.e. the offered load exceeds the queue's
    capacity.  The paper's Theorem 2 identifies the arrival rate at which
    this first happens as the maximum throughput.
    """

    def __init__(self, message: str = "lock queue is saturated (rho_w >= 1)",
                 level: int | None = None) -> None:
        super().__init__(message)
        #: B-tree level of the saturated queue (leaves = 1), if known.
        self.level = level


class ConvergenceError(ModelError):
    """An iterative solver failed to converge to the requested tolerance.

    Structured so sweep drivers can record the failure per parameter
    point instead of letting a NaN propagate into result tables:
    ``solver`` names the iteration that failed, ``iterations`` how far
    it got, ``residual`` the last fixed-point residual (possibly NaN),
    and ``context`` carries solver-specific diagnostics (input rates,
    brackets, the B-tree level, ...).
    """

    def __init__(self, message: str, *, solver: str | None = None,
                 iterations: int | None = None,
                 residual: float | None = None,
                 context: dict | None = None) -> None:
        super().__init__(message)
        self.solver = solver
        self.iterations = iterations
        self.residual = residual
        self.context = dict(context or {})


class SimulationError(ReproError):
    """Base class for discrete-event simulation failures."""


class PopulationOverflowError(SimulationError):
    """Too many concurrent operations are in flight.

    The paper's simulator aborts a run when the number of concurrent
    operations exceeds the space allocated for them, which happens when the
    arrival rate exceeds the algorithm's maximum throughput.  We reproduce
    that behaviour with this exception so saturation is detected the same
    way.
    """

    def __init__(self, population: int, limit: int) -> None:
        super().__init__(
            f"concurrent-operation population {population} exceeded the "
            f"allocation of {limit}; the offered load is unsustainable"
        )
        self.population = population
        self.limit = limit


class ProcessError(SimulationError):
    """A simulation process misused the engine protocol."""


class LockProtocolError(SimulationError):
    """A process violated the lock protocol (e.g. double release)."""


class ResilienceError(ReproError):
    """Base class for sweep-resilience failures (see :mod:`repro.resilience`)."""


class CheckpointError(ResilienceError):
    """A sweep checkpoint journal cannot be used (wrong task list, bad
    header, unwritable path)."""


class InjectedFaultError(ResilienceError):
    """A deterministic fault from the fault-injection harness fired.

    Raised in place of a hard worker kill when the harness runs inline
    (killing the calling process would take the test suite down with
    it); worker processes really do die.
    """


class BTreeError(ReproError):
    """Base class for B-tree structural errors."""


class KeyNotFoundError(BTreeError, KeyError):
    """A delete or lookup referenced a key that is not in the tree."""


class InvariantViolationError(BTreeError):
    """A structural invariant check failed (used by the validator)."""
