"""Algorithm registry: capability-driven dispatch for every consumer.

One :class:`~repro.algorithms.spec.AlgorithmSpec` per concurrency-
control algorithm pairs the simulator operation processes with the
analytical model and capability flags; the open/closed drivers, model
validation, experiment drivers and the CLI all resolve algorithms here
(``btree-perf list-algorithms`` prints the registry).

Adding an algorithm means adding one spec module to this package (plus
its ops module) — see ``docs/architecture.md`` for a worked example.
"""

from repro.algorithms import names
from repro.algorithms.spec import (
    CAPABILITY_FLAGS,
    AlgorithmSpec,
    algorithm_names,
    all_algorithms,
    display_label,
    get_algorithm,
    register_algorithm,
)

# Self-registering spec modules.  Import order defines registry order:
# the paper's three algorithms, then the baselines/extensions.
from repro.algorithms import naive_lock_coupling  # noqa: F401
from repro.algorithms import optimistic_descent  # noqa: F401
from repro.algorithms import link_type  # noqa: F401
from repro.algorithms import link_symmetric  # noqa: F401
from repro.algorithms import two_phase  # noqa: F401
from repro.algorithms import optimistic_lock_coupling  # noqa: F401

__all__ = [
    "CAPABILITY_FLAGS",
    "AlgorithmSpec",
    "algorithm_names",
    "all_algorithms",
    "display_label",
    "get_algorithm",
    "names",
    "register_algorithm",
]
