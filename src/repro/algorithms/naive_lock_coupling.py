"""Registry spec: Naive Lock-coupling (paper Section 2).

The paper's baseline: searches R-lock-couple, updates W-lock-couple and
release ancestors only above safe children, so root writer presence is
the load-limiting signal.
"""

from repro.algorithms.names import NAIVE_LOCK_COUPLING
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=NAIVE_LOCK_COUPLING,
    label="Naive Lock-coupling",
    short="naive",
    ops_ref="repro.simulator.lock_coupling",
    analyze_ref="repro.model.lock_coupling:analyze_lock_coupling",
    has_restarts=True,
    supports_closed=True,
    coupling_updates=True,
    vector_tier="full",
))
