"""Registry spec: the Link-type (Lehman-Yao) algorithm.

Descents hold one lock at a time and recover from concurrent splits by
chasing right-links; merges never happen inline, so the background
compactor is the only way empty leaves are reclaimed.
"""

from repro.algorithms.names import LINK_TYPE
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=LINK_TYPE,
    label="Link-type (Lehman-Yao)",
    short="link",
    ops_ref="repro.simulator.link",
    analyze_ref="repro.model.link:analyze_link",
    has_link_crossings=True,
    supports_closed=True,
    supports_compaction=True,
    vector_tier="lock",
))
