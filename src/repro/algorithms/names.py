"""Canonical algorithm names (pure constants, no imports).

The single source of truth for registry keys.  Everything outside
:mod:`repro.algorithms` must refer to algorithms through these
constants or through registered
:class:`~repro.algorithms.spec.AlgorithmSpec` objects; a guard test
(``tests/test_algorithm_name_guard.py``) fails the build on hard-coded
name literals elsewhere in ``src/``, so dispatch cannot re-fragment.
"""

NAIVE_LOCK_COUPLING = "naive-lock-coupling"
OPTIMISTIC_DESCENT = "optimistic-descent"
LINK_TYPE = "link-type"
LINK_SYMMETRIC = "link-symmetric"
TWO_PHASE_LOCKING = "two-phase-locking"
OPTIMISTIC_LOCK_COUPLING = "optimistic-lock-coupling"

#: The simulator's default algorithm (the paper's baseline).
DEFAULT_ALGORITHM = NAIVE_LOCK_COUPLING
