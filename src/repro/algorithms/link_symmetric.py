"""Registry spec: the symmetric Link-type variant (Lanin-Shasha).

Link-type descent with symmetric handling of deletes; simulator-only
(the paper analyses the Lehman-Yao variant).
"""

from repro.algorithms.names import LINK_SYMMETRIC
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=LINK_SYMMETRIC,
    label="Symmetric Link-type (Lanin-Shasha)",
    short="link_symmetric",
    ops_ref="repro.simulator.link_symmetric",
    has_link_crossings=True,
    supports_compaction=True,
    vector_tier="lock",
))
