"""Registry spec: Optimistic Descent (paper Section 2).

Updates descend like searches and W-lock only the leaf, redoing with
the Naive W protocol when the leaf is unsafe.  The only algorithm the
Section 7 recovery lock-retention policies are modelled on.
"""

from repro.algorithms.names import OPTIMISTIC_DESCENT
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=OPTIMISTIC_DESCENT,
    label="Optimistic Descent",
    short="optimistic",
    ops_ref="repro.simulator.optimistic",
    analyze_ref="repro.model.optimistic:analyze_optimistic",
    has_restarts=True,
    supports_closed=True,
    supports_recovery=True,
    vector_tier="full",
))
