"""The algorithm registry: the repository's single dispatch point.

An :class:`AlgorithmSpec` pairs one concurrency-control algorithm's
simulator operation processes with its analytical model and a set of
capability flags.  Consumers — the open and closed simulator drivers,
model validation, the experiment drivers and the CLI — resolve
algorithms exclusively through :func:`get_algorithm` /
:func:`all_algorithms`, never through name literals or private maps.

Spec modules reference their ops module and analyzer by dotted path
(``ops_ref``, ``analyze_ref``) rather than importing them: the registry
sits *below* every other subpackage, and registration happens while the
:mod:`repro.simulator` / :mod:`repro.model` packages may still be
mid-initialisation.  The references are imported lazily on first access
and cached, so ``spec.ops`` and ``spec.analyze`` behave like ordinary
attributes everywhere outside import time.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Capability-flag field names, in display order (CLI, docs, tests).
CAPABILITY_FLAGS = (
    "has_restarts",
    "has_link_crossings",
    "supports_closed",
    "supports_recovery",
    "supports_compaction",
    "coupling_updates",
)

#: Every ops module must expose these generator factories, each taking
#: an :class:`~repro.simulator.operations.OperationContext` and a key.
OPS_INTERFACE = ("search", "insert", "delete")

#: Vectorization tiers, least to most capable.  ``"none"`` — scalar
#: only; ``"lock"`` — replication batches may take the lane-multiplexed
#: batch driver (:mod:`repro.simulator.batch`) and the lock-contention
#: workload is vectorized (:mod:`repro.des.vector`); ``"full"`` — the
#: whole search/insert descent additionally has a vectorized kernel
#: (:mod:`repro.des.vector_btree`).
VECTOR_TIERS = ("none", "lock", "full")


def _resolve_ops(path: str, owner: str) -> ModuleType:
    module = importlib.import_module(path)
    for op in OPS_INTERFACE:
        if not callable(getattr(module, op, None)):
            raise ConfigurationError(
                f"algorithm {owner!r}: ops module {path} lacks a "
                f"callable {op}()")
    return module


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the framework needs to know about one algorithm."""

    #: Registry key; what ``SimulationConfig.algorithm`` holds.
    name: str
    #: Human-readable display label (CLI listings, progress lines).
    label: str
    #: Column key for experiment tables (e.g. ``naive_insert``).
    short: str
    #: Dotted module path of the open-system operation processes.
    ops_ref: str
    #: Dotted path of a closed-system ops variant; None reuses ``ops``.
    closed_ops_ref: Optional[str] = None
    #: ``"module:function"`` path of the analytical model; None means
    #: the algorithm is simulator-only (no model registered yet).
    analyze_ref: Optional[str] = None
    #: Descents may restart at the root boundary (``metrics.restarts``
    #: and ``metrics.redo_descents`` are meaningful).
    has_restarts: bool = False
    #: Descents may chase right-links (``metrics.link_crossings``).
    has_link_crossings: bool = False
    #: Included in closed-system (multiprogramming-level) sweeps.
    supports_closed: bool = False
    #: Recovery lock-retention policies apply (paper Section 7).
    supports_recovery: bool = False
    #: Needs the background compactor — never merges inline.
    supports_compaction: bool = False
    #: Updates hold coupled W locks on the descent path, so the root
    #: writer presence rho_w is the load-limiting signal (Figure 10).
    coupling_updates: bool = False
    #: Vectorization tier (:data:`VECTOR_TIERS`): any tier above
    #: ``"none"`` lets replication batches route through the
    #: lane-multiplexed batch driver (:mod:`repro.simulator.batch`);
    #: ``"full"`` additionally marks the algorithm's descent family as
    #: covered by the vectorized B-tree kernel
    #: (:mod:`repro.des.vector_btree`).  The fixed-seed equivalence
    #: suite must cover any spec above ``"none"``.  Not a
    #: :data:`CAPABILITY_FLAGS` entry — it gates an execution path,
    #: not a modeled behavior.
    vector_tier: str = "none"

    def __post_init__(self) -> None:
        if not self.name or not self.label or not self.short:
            raise ConfigurationError(
                "algorithm specs need a name, a label and a short "
                "column key")
        if not self.ops_ref:
            raise ConfigurationError(
                f"algorithm {self.name!r} needs an ops module reference")
        if self.vector_tier not in VECTOR_TIERS:
            raise ConfigurationError(
                f"algorithm {self.name!r}: unknown vector tier "
                f"{self.vector_tier!r}; expected one of {VECTOR_TIERS}")

    @property
    def vector_capable(self) -> bool:
        """Whether replication batches may take the batch driver (any
        vectorization tier above ``"none"``)."""
        return self.vector_tier != "none"

    @property
    def ops(self) -> ModuleType:
        """The simulator operations module (lazily imported, validated
        against :data:`OPS_INTERFACE` on first access)."""
        cached = self.__dict__.get("_ops")
        if cached is None:
            cached = _resolve_ops(self.ops_ref, self.name)
            object.__setattr__(self, "_ops", cached)
        return cached

    @property
    def closed_ops(self) -> Optional[ModuleType]:
        """The closed-system ops variant, or None when ``ops`` serves
        both modes."""
        if self.closed_ops_ref is None:
            return None
        cached = self.__dict__.get("_closed_ops")
        if cached is None:
            cached = _resolve_ops(self.closed_ops_ref, self.name)
            object.__setattr__(self, "_closed_ops", cached)
        return cached

    @property
    def closed_module(self) -> ModuleType:
        """Ops module for closed-system runs (defaults to ``ops``)."""
        return self.closed_ops if self.closed_ops_ref is not None \
            else self.ops

    @property
    def has_model(self) -> bool:
        return self.analyze_ref is not None

    @property
    def analyze(self) -> Optional[Callable]:
        """The analytical model — ``analyze(config, arrival_rate, ...)``
        returning an :class:`~repro.model.results.AlgorithmPrediction` —
        or None for simulator-only algorithms."""
        if self.analyze_ref is None:
            return None
        cached = self.__dict__.get("_analyze")
        if cached is None:
            module_path, _, attr = self.analyze_ref.partition(":")
            cached = getattr(importlib.import_module(module_path), attr)
            if not callable(cached):
                raise ConfigurationError(
                    f"algorithm {self.name!r}: analyzer reference "
                    f"{self.analyze_ref!r} is not callable")
            object.__setattr__(self, "_analyze", cached)
        return cached

    def capabilities(self) -> Tuple[str, ...]:
        """The capability-flag names this algorithm sets."""
        return tuple(flag for flag in CAPABILITY_FLAGS
                     if getattr(self, flag))


_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the registry; returns it for module-level use.

    Both the name and the table column key must be unique — the column
    key becomes experiment-table headers, where a collision would
    silently overwrite a rival algorithm's series.
    """
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"algorithm {spec.name!r} is already registered")
    for other in _REGISTRY.values():
        if other.short == spec.short:
            raise ConfigurationError(
                f"algorithm {spec.name!r} reuses the column key "
                f"{spec.short!r} of {other.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of {known}"
        ) from None


def all_algorithms() -> Tuple[AlgorithmSpec, ...]:
    """Every registered spec, in registration order (paper order first)."""
    return tuple(_REGISTRY.values())


def algorithm_names() -> Tuple[str, ...]:
    """Every registered name, in registration order."""
    return tuple(_REGISTRY)


def display_label(name: str) -> str:
    """The display label for ``name``; composite or unknown names (for
    example recovery-policy suffixes like ``...+naive``) fall back to
    the raw string."""
    spec = _REGISTRY.get(name)
    return spec.label if spec is not None else name
