"""Registry spec: Optimistic Lock-coupling (registered extension).

A middle point between Naive Lock-coupling and Optimistic Descent:
updates R-lock-couple through the upper levels and switch to the W
protocol for the two deepest levels, redoing with the full Naive W
protocol when the level-2 node is unsafe.

This variant is the registry's extensibility proof: it ships entirely
as this spec module plus its ops module — no core dispatch site
(driver, closed system, figures, CLI) mentions it.  See
``docs/architecture.md`` ("Adding an algorithm").
"""

from repro.algorithms.names import OPTIMISTIC_LOCK_COUPLING
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=OPTIMISTIC_LOCK_COUPLING,
    label="Optimistic Lock-coupling",
    short="olc",
    ops_ref="repro.simulator.optimistic_lock_coupling",
    has_restarts=True,
    coupling_updates=True,
    vector_tier="lock",
))
