"""Registry spec: strict Two-Phase Locking (extension baseline).

Every lock placed on the descent is held until the operation commits —
the fully restrictive end of the concurrency spectrum (ext01).
"""

from repro.algorithms.names import TWO_PHASE_LOCKING
from repro.algorithms.spec import AlgorithmSpec, register_algorithm

SPEC = register_algorithm(AlgorithmSpec(
    name=TWO_PHASE_LOCKING,
    label="Two-Phase Locking",
    short="two_phase",
    ops_ref="repro.simulator.two_phase",
    analyze_ref="repro.model.two_phase:analyze_two_phase",
    has_restarts=True,
    coupling_updates=True,
    vector_tier="lock",
))
