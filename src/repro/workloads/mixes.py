"""Deprecated alias of :mod:`repro.workload.mixes`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.workloads.mixes is deprecated; import from "
    "repro.workload.mixes (the pluggable workload subsystem)",
    DeprecationWarning, stacklevel=2)

from repro.workload.mixes import (  # noqa: E402
    INSERT_ONLY,
    PAPER_MIX,
    READ_HEAVY,
    UPDATE_HEAVY,
    draw_operation,
)

__all__ = ["INSERT_ONLY", "PAPER_MIX", "READ_HEAVY", "UPDATE_HEAVY",
           "draw_operation"]
