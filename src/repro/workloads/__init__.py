"""Workload generation: operation mixes and key-selection distributions.

The paper's workload is fully specified by the mix (q_s, q_i, q_d) and
uniform random keys; this subpackage exposes those plus a couple of
realistic extensions (read-heavy / hotspot workloads) used by the domain
examples.
"""

from repro.workloads.mixes import (
    INSERT_ONLY,
    PAPER_MIX,
    READ_HEAVY,
    UPDATE_HEAVY,
    draw_operation,
)
from repro.workloads.keyspace import HotspotKeys, KeyPicker, UniformKeys

__all__ = [
    "HotspotKeys",
    "INSERT_ONLY",
    "KeyPicker",
    "PAPER_MIX",
    "READ_HEAVY",
    "UPDATE_HEAVY",
    "UniformKeys",
    "draw_operation",
]
