"""Deprecated alias of :mod:`repro.workload` (note the singular).

This package used to hold the operation mixes and key-selection
distributions; they grew into the full pluggable workload subsystem
under :mod:`repro.workload` (arrival processes, skewed and migrating
key distributions, transaction envelopes — see ``docs/workloads.md``).
Every public name is still importable from here, with a
:class:`DeprecationWarning`; new code should import from
``repro.workload``.
"""

from __future__ import annotations

import warnings

_FORWARDED = (
    "HotspotKeys",
    "INSERT_ONLY",
    "KeyPicker",
    "PAPER_MIX",
    "READ_HEAVY",
    "UPDATE_HEAVY",
    "UniformKeys",
    "draw_operation",
)

__all__ = list(_FORWARDED)


def __getattr__(name: str):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.workloads.{name} is deprecated; import {name} from "
            "repro.workload (the pluggable workload subsystem)",
            DeprecationWarning, stacklevel=2)
        import repro.workload
        return getattr(repro.workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_FORWARDED))
