"""Deprecated alias of :mod:`repro.workload` (note the singular).

This package used to hold the operation mixes and key-selection
distributions; they grew into the full pluggable workload subsystem
under :mod:`repro.workload` (arrival processes, skewed and migrating
key distributions, transaction envelopes — see ``docs/workloads.md``).
Every public name is still importable from here, with a
:class:`DeprecationWarning`; new code should import from
``repro.workload``.
"""

from __future__ import annotations

import sys
import warnings

_FORWARDED = (
    "HotspotKeys",
    "INSERT_ONLY",
    "KeyPicker",
    "PAPER_MIX",
    "READ_HEAVY",
    "UPDATE_HEAVY",
    "UniformKeys",
    "draw_operation",
)

__all__ = list(_FORWARDED)


def _caller_stacklevel() -> int:
    """Stacklevel (for a warn issued in ``__getattr__``) that lands on
    the user's code.  ``from repro.workloads import X`` reaches
    ``__getattr__`` through frozen importlib frames, so a fixed
    ``stacklevel=2`` would blame ``<frozen importlib._bootstrap>``
    instead of the import statement; skip those frames."""
    level = 2
    frame = sys._getframe(2)  # __getattr__'s direct caller
    while frame is not None and \
            frame.f_code.co_filename.startswith("<frozen importlib"):
        level += 1
        frame = frame.f_back
    return level


def __getattr__(name: str):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.workloads.{name} is deprecated; import {name} from "
            "repro.workload (the pluggable workload subsystem)",
            DeprecationWarning, stacklevel=_caller_stacklevel())
        import repro.workload
        return getattr(repro.workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_FORWARDED))
