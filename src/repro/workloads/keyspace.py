"""Deprecated alias of :mod:`repro.workload.keys`."""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.workloads.keyspace is deprecated; import from "
    "repro.workload.keys (the pluggable workload subsystem)",
    DeprecationWarning, stacklevel=2)

from repro.workload.keys import (  # noqa: E402
    HotspotKeys,
    KeyPicker,
    UniformKeys,
)

__all__ = ["HotspotKeys", "KeyPicker", "UniformKeys"]
