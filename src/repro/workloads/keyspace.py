"""Key-selection distributions.

The paper draws keys uniformly.  ``HotspotKeys`` adds the classic 80/20
skew used by the capacity-planning example to show how contention
concentrates on a sub-range (and hence on a subtree).
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class KeyPicker:
    """Interface: draw integer keys from a universe of size ``key_space``."""

    def __init__(self, key_space: int, rng: random.Random) -> None:
        if key_space < 1:
            raise ConfigurationError(f"key space must be >= 1, got {key_space}")
        self.key_space = key_space
        self.rng = rng

    def pick(self) -> int:
        raise NotImplementedError


class UniformKeys(KeyPicker):
    """Uniform keys over [0, key_space) — the paper's workload."""

    def pick(self) -> int:
        return self.rng.randrange(self.key_space)


class HotspotKeys(KeyPicker):
    """A fraction of accesses concentrates on a fraction of the keyspace.

    With the defaults, 80% of the picks land in the first 20% of the key
    range (a contiguous hot subtree).
    """

    def __init__(self, key_space: int, rng: random.Random,
                 hot_fraction: float = 0.2,
                 hot_probability: float = 0.8) -> None:
        super().__init__(key_space, rng)
        if not 0.0 < hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1)")
        if not 0.0 <= hot_probability <= 1.0:
            raise ConfigurationError("hot_probability must be in [0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self._hot_size = max(1, int(key_space * hot_fraction))

    def pick(self) -> int:
        if self.rng.random() < self.hot_probability:
            return self.rng.randrange(self._hot_size)
        return self._hot_size + self.rng.randrange(
            max(1, self.key_space - self._hot_size))
