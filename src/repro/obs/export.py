"""NDJSON export of run telemetry, and the loader that inverts it.

One telemetry artifact is a newline-delimited JSON file: the first line
is a ``header`` record carrying the schema version and the run/sweep
identity, and every following line is a self-describing record::

    {"record": "header",   "schema": 1, "kind": "run"|"sweep", ...}
    {"record": "run",      "seed": s, "sample_interval": ..., ...}
    {"record": "result",   "seed": s, "values": {...SimulationResult}}
    {"record": "counters", "seed": s, "values": {"des.events": ...}}
    {"record": "series",   "seed": s, "series": "global", "t": [...], ...}
    {"record": "series",   "seed": s, "series": "level", "level": L, ...}

A ``sweep`` artifact additionally carries one ``counters`` record with
``"seed": null`` — the across-seed merged snapshot — followed by each
seed's full section.  The layout is documented field by field in
``docs/observability.md``; bump :data:`~repro.obs.telemetry.SCHEMA_VERSION`
on any incompatible change.

Losslessness: floats are emitted with ``repr``-grade shortest-round-trip
precision (the :mod:`json` default), and non-finite values use Python's
``NaN`` / ``Infinity`` literals (readable back by :func:`json.loads`),
so ``load_ndjson(write_ndjson(t)) == t`` field for field.  Unknown
record types are skipped on load, which is what lets the schema grow
additively without a version bump.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterator, List, Union

from repro.errors import ConfigurationError
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    GlobalSeries,
    LevelSeries,
    RunTelemetry,
    SweepTelemetry,
)
from repro.simulator.metrics import SimulationResult

Telemetry = Union[RunTelemetry, SweepTelemetry]


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def _result_values(result: SimulationResult) -> dict:
    values = dataclasses.asdict(result)
    # JSON object keys are strings; the loader restores the int keys and
    # the (read, write) tuples.
    values["mean_lock_waits"] = {
        str(level): list(waits)
        for level, waits in result.mean_lock_waits.items()
    }
    return values


def _run_records(run: RunTelemetry) -> Iterator[dict]:
    yield {"record": "run", "seed": run.seed,
           "sample_interval": run.sample_interval,
           "final_interval": run.final_interval}
    yield {"record": "result", "seed": run.seed,
           "values": _result_values(run.result)}
    yield {"record": "counters", "seed": run.seed, "values": run.counters}
    series = run.global_series
    yield {"record": "series", "seed": run.seed, "series": "global",
           "t": series.t, "in_flight": series.in_flight,
           "events": series.events}
    for level in run.levels:
        yield {"record": "series", "seed": run.seed, "series": "level",
               "level": level.level, "nodes": level.nodes,
               "grants_read": level.grants_read,
               "grants_write": level.grants_write,
               "t": level.t, "held_read": level.held_read,
               "held_write": level.held_write, "queued": level.queued,
               "util_read": level.util_read,
               "util_write": level.util_write}


def telemetry_records(telemetry: Telemetry) -> Iterator[dict]:
    """The full record stream of one artifact, header first."""
    if isinstance(telemetry, RunTelemetry):
        yield {"record": "header", "schema": telemetry.schema,
               "kind": "run", "algorithm": telemetry.algorithm,
               "arrival_rate": telemetry.arrival_rate,
               "seeds": [telemetry.seed]}
        yield from _run_records(telemetry)
        return
    if isinstance(telemetry, SweepTelemetry):
        yield {"record": "header", "schema": telemetry.schema,
               "kind": "sweep", "algorithm": telemetry.algorithm,
               "arrival_rate": telemetry.arrival_rate,
               "seeds": telemetry.seeds}
        yield {"record": "counters", "seed": None,
               "values": telemetry.counters}
        for run in telemetry.runs:
            yield from _run_records(run)
        return
    raise ConfigurationError(
        f"cannot export {type(telemetry).__name__} as telemetry")


def dumps_ndjson(telemetry: Telemetry) -> str:
    """The artifact as one NDJSON string (deterministic key order)."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in telemetry_records(telemetry))


def write_ndjson(path: Union[str, os.PathLike],
                 telemetry: Telemetry) -> None:
    """Write one telemetry artifact to ``path`` as NDJSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_ndjson(telemetry))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _parse_result(values: dict) -> SimulationResult:
    values = dict(values)
    values["mean_lock_waits"] = {
        int(level): tuple(waits)
        for level, waits in values["mean_lock_waits"].items()
    }
    return SimulationResult(**values)


def _parse_runs(header: dict, records: List[dict]) -> Dict[int, RunTelemetry]:
    partial: Dict[int, dict] = {
        seed: {"levels": []} for seed in header["seeds"]}
    for record in records:
        seed = record.get("seed")
        if seed not in partial:
            continue
        into = partial[seed]
        kind = record["record"]
        if kind == "run":
            into["sample_interval"] = record["sample_interval"]
            into["final_interval"] = record["final_interval"]
        elif kind == "result":
            into["result"] = _parse_result(record["values"])
        elif kind == "counters":
            into["counters"] = record["values"]
        elif kind == "series" and record["series"] == "global":
            into["global_series"] = GlobalSeries(
                t=record["t"], in_flight=record["in_flight"],
                events=record["events"])
        elif kind == "series" and record["series"] == "level":
            into["levels"].append(LevelSeries(
                level=record["level"], nodes=record["nodes"],
                grants_read=record["grants_read"],
                grants_write=record["grants_write"],
                t=record["t"], held_read=record["held_read"],
                held_write=record["held_write"], queued=record["queued"],
                util_read=record["util_read"],
                util_write=record["util_write"]))
        # Unknown record types: skipped (additive schema growth).
    runs: Dict[int, RunTelemetry] = {}
    for seed, into in partial.items():
        missing = {"result", "counters", "global_series",
                   "sample_interval"} - set(into)
        if missing:
            raise ConfigurationError(
                f"telemetry artifact is missing {sorted(missing)} "
                f"records for seed {seed}")
        runs[seed] = RunTelemetry(
            schema=header["schema"], algorithm=header["algorithm"],
            arrival_rate=header["arrival_rate"], seed=seed,
            sample_interval=into["sample_interval"],
            final_interval=into["final_interval"],
            result=into["result"], counters=into["counters"],
            global_series=into["global_series"],
            levels=sorted(into["levels"], key=lambda s: s.level))
    return runs


def loads_ndjson(text: str) -> Telemetry:
    """Parse one NDJSON telemetry artifact back into its dataclasses."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError("empty telemetry artifact")
    records = [json.loads(line) for line in lines]
    header = records[0]
    if header.get("record") != "header":
        raise ConfigurationError(
            "telemetry artifact must start with a header record, "
            f"got {header.get('record')!r}")
    if header.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported telemetry schema {header.get('schema')!r} "
            f"(this loader reads version {SCHEMA_VERSION})")
    runs = _parse_runs(header, records[1:])
    ordered = [runs[seed] for seed in header["seeds"]]
    if header["kind"] == "run":
        if len(ordered) != 1:
            raise ConfigurationError(
                f"a 'run' artifact holds exactly one seed, "
                f"got {header['seeds']}")
        return ordered[0]
    if header["kind"] != "sweep":
        raise ConfigurationError(
            f"unknown telemetry artifact kind {header['kind']!r}")
    merged = next(
        (r["values"] for r in records[1:]
         if r["record"] == "counters" and r.get("seed") is None), None)
    if merged is None:
        raise ConfigurationError(
            "sweep artifact is missing its merged counters record")
    return SweepTelemetry(
        schema=header["schema"], algorithm=header["algorithm"],
        arrival_rate=header["arrival_rate"], seeds=header["seeds"],
        counters=merged, runs=ordered)


def load_ndjson(path: Union[str, os.PathLike]) -> Telemetry:
    """Load a telemetry artifact written by :func:`write_ndjson`."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_ndjson(handle.read())
