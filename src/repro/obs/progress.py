"""Live progress reporting for long sweeps.

PR 1 made sweeps fast; this makes them visible.  A
:class:`ProgressPrinter` is an ordinary ``progress`` callback (one call
per completed :class:`~repro.simulator.metrics.SimulationResult`, in
completion order when parallel) that writes one line per run to a
stream — stderr by default, so ``--csv`` output stays clean.  The CLI
installs it into the ambient execution context
(``execution(progress=...)``), from where every ``run_batch`` below
picks it up.
"""

from __future__ import annotations

import math
import sys
from typing import Optional, TextIO

from repro.algorithms import display_label
from repro.simulator.metrics import SimulationResult


class ProgressPrinter:
    """Prints ``[k/total] algorithm rate=... seed=... -> outcome`` lines.

    The algorithm is shown by its registry display label
    (:func:`repro.algorithms.display_label`); composite names — e.g.
    recovery-policy suffixes — fall back to the raw string.

    ``total`` is optional (sweep sizes are known per batch, not
    globally); without it the counter is open-ended (``[k]``).
    """

    def __init__(self, total: Optional[int] = None,
                 stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.completed = 0

    def __call__(self, result: SimulationResult) -> None:
        self.completed += 1
        prefix = (f"[{self.completed}/{self.total}]" if self.total
                  else f"[{self.completed}]")
        rate = ("-" if math.isnan(result.arrival_rate)
                else f"{result.arrival_rate:g}")
        if result.overflowed:
            outcome = "OVERFLOW (saturated)"
        else:
            outcome = (f"throughput={result.throughput:.4g} "
                       f"ops={result.measured_operations}")
        self.stream.write(
            f"{prefix} {display_label(result.algorithm)} rate={rate} "
            f"seed={result.seed} -> {outcome}\n")
        self.stream.flush()
