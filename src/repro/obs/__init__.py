"""Run-telemetry layer (``repro.obs``).

The paper's simulator "collects a variety of statistics"; this package
makes a run observable *while it happens* and exportable after:

* **instruments** — named :class:`Counter`\\ s and :class:`Timer`\\ s
  with a zero-allocation disabled path (:data:`NULL_INSTRUMENTS`); the
  DES engine's untraced fast path stays entirely instrument-free.
* **sampling** — a periodic in-simulation sampler records per-level
  lock state (queue depth, R/W utilization) and the in-flight operation
  population into a decimating ring: bounded memory, full-run coverage,
  strictly increasing timestamps.
* **export** — the whole artifact (result + counters + time series)
  round-trips through a stable, versioned NDJSON layout
  (:func:`write_ndjson` / :func:`load_ndjson`).
* **aggregation** — per-seed runs of one sweep point merge into a
  single :class:`SweepTelemetry`, identically whether the seeds ran
  serially or on :mod:`repro.parallel` workers.

Entry points: pass a :class:`TelemetryRecorder` to
:func:`~repro.simulator.driver.run_simulation`, or let
:func:`collect_replications` handle the whole fan-out; on the command
line, ``btree-perf simulate --metrics-out run.ndjson --progress``.
See ``docs/observability.md`` for the schema.
"""

from repro.obs.export import (
    dumps_ndjson,
    load_ndjson,
    loads_ndjson,
    telemetry_records,
    write_ndjson,
)
from repro.obs.instruments import (
    NULL_COUNTER,
    NULL_INSTRUMENTS,
    NULL_TIMER,
    Counter,
    Instrumentation,
    NullInstrumentation,
    Timer,
    merge_counter_snapshots,
)
from repro.obs.progress import ProgressPrinter
from repro.obs.sampler import DecimatingRing, LevelState, TelemetrySampler
from repro.obs.telemetry import (
    SCHEMA_VERSION,
    GlobalSeries,
    LevelSeries,
    RunTelemetry,
    SweepTelemetry,
    TelemetryOptions,
    TelemetryRecorder,
    collect_replications,
    merge_telemetry,
)

__all__ = [
    "Counter",
    "DecimatingRing",
    "GlobalSeries",
    "Instrumentation",
    "LevelSeries",
    "LevelState",
    "NULL_COUNTER",
    "NULL_INSTRUMENTS",
    "NULL_TIMER",
    "NullInstrumentation",
    "ProgressPrinter",
    "RunTelemetry",
    "SCHEMA_VERSION",
    "SweepTelemetry",
    "TelemetryOptions",
    "TelemetryRecorder",
    "TelemetrySampler",
    "Timer",
    "collect_replications",
    "dumps_ndjson",
    "load_ndjson",
    "loads_ndjson",
    "merge_counter_snapshots",
    "merge_telemetry",
    "telemetry_records",
    "write_ndjson",
]
