"""Run telemetry: what one instrumented simulation run knows about itself.

A :class:`TelemetryRecorder` is handed to
:func:`~repro.simulator.driver.run_simulation`; the driver wires it into
the engine (instrument counters), every node lock (per-level live
state), and the process table (the periodic sampler), and calls
:meth:`~TelemetryRecorder.finalize` on the way out.  The frozen product
is a :class:`RunTelemetry`: the run's :class:`SimulationResult`, its
counter snapshot, and the per-level / global time series.

:func:`merge_telemetry` folds the per-seed runs of one sweep point into
a :class:`SweepTelemetry` — counters summed, series kept per seed — so
a batched sweep emits **one** telemetry artifact per point whether the
seeds ran serially or on :mod:`repro.parallel` workers (the merge is
order-independent, and the tests pin parallel == serial).

Telemetry deliberately records only *simulated* quantities (times,
counts), never wall-clock ones, so the whole structure is deterministic
for a fixed configuration and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.instruments import Instrumentation, merge_counter_snapshots
from repro.obs.sampler import TelemetrySampler
from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import SimulationResult

#: Version stamp written into every exported telemetry artifact; bump on
#: any incompatible change to the record layout (see
#: ``docs/observability.md``).
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TelemetryOptions:
    """Knobs of the telemetry layer (picklable; rides on SimTask)."""

    #: Simulated time between samples (same unit as everything else:
    #: one root search).  Doubles whenever the ring decimates.
    sample_interval: float = 1.0
    #: Maximum retained samples per run (bounded memory).
    ring_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be positive, "
                f"got {self.sample_interval}")
        if self.ring_capacity < 4:
            raise ConfigurationError(
                f"ring_capacity must be >= 4, got {self.ring_capacity}")


@dataclass
class GlobalSeries:
    """Whole-simulator time series."""

    t: List[float] = field(default_factory=list)
    in_flight: List[int] = field(default_factory=list)
    events: List[int] = field(default_factory=list)


@dataclass
class LevelSeries:
    """Per-tree-level time series plus level totals.

    ``util_read`` / ``util_write`` are the sampled lock utilizations:
    locks held in that mode divided by the level's node count at the
    sample instant.  W locks are exclusive so ``util_write <= 1``;
    R locks are shared, so ``util_read`` is the mean concurrent readers
    per node and can exceed 1 at hot nodes.  At the root (one node)
    ``util_write`` is exactly the writer-presence signal behind the
    paper's Figure 10 knee.
    """

    level: int
    nodes: int = 0
    grants_read: int = 0
    grants_write: int = 0
    t: List[float] = field(default_factory=list)
    held_read: List[int] = field(default_factory=list)
    held_write: List[int] = field(default_factory=list)
    queued: List[int] = field(default_factory=list)
    util_read: List[float] = field(default_factory=list)
    util_write: List[float] = field(default_factory=list)


@dataclass
class RunTelemetry:
    """Everything recorded about one instrumented run."""

    schema: int
    algorithm: str
    arrival_rate: float
    seed: int
    sample_interval: float
    #: Effective interval after ring decimations (>= sample_interval).
    final_interval: float
    result: SimulationResult
    counters: Dict[str, float]
    global_series: GlobalSeries
    levels: List[LevelSeries]


@dataclass
class SweepTelemetry:
    """One sweep point: the merged telemetry of its per-seed runs."""

    schema: int
    algorithm: str
    arrival_rate: float
    seeds: List[int]
    #: Counter snapshots summed over every run.
    counters: Dict[str, float]
    #: The per-seed runs, in seed order.
    runs: List[RunTelemetry]

    @property
    def results(self) -> List[SimulationResult]:
        return [run.result for run in self.runs]


class TelemetryRecorder:
    """Mutable collection state the driver threads through one run.

    Usage::

        recorder = TelemetryRecorder(TelemetryOptions())
        result = run_simulation(config, telemetry=recorder)
        telemetry = recorder.telemetry      # RunTelemetry
    """

    def __init__(self, options: Optional[TelemetryOptions] = None) -> None:
        self.options = options if options is not None else TelemetryOptions()
        self.instruments = Instrumentation()
        self.sampler = TelemetrySampler(self.options.sample_interval,
                                        self.options.ring_capacity)
        self.telemetry: Optional[RunTelemetry] = None

    def watch(self, lock, level: int) -> None:
        """Attach one node lock to its level's live aggregate state."""
        self.sampler.watch(lock, level)

    def sampler_process(self, sim, in_flight: Callable[[], int]):
        """The periodic sampling process to spawn into ``sim``."""
        return self.sampler.process(sim, in_flight,
                                    self.instruments.counter("des.events"))

    def finalize(self, result: SimulationResult) -> RunTelemetry:
        """Freeze the collected state into a :class:`RunTelemetry`."""
        self.telemetry = RunTelemetry(
            schema=SCHEMA_VERSION,
            algorithm=result.algorithm,
            arrival_rate=result.arrival_rate,
            seed=result.seed,
            sample_interval=self.sampler.base_interval,
            final_interval=self.sampler.interval,
            result=result,
            counters=self.instruments.snapshot(),
            global_series=self._global_series(),
            levels=self._level_series(),
        )
        return self.telemetry

    # ------------------------------------------------------------------
    # Series assembly
    # ------------------------------------------------------------------
    def _global_series(self) -> GlobalSeries:
        series = GlobalSeries()
        for now, in_flight, events, _levels in self.sampler.ring:
            series.t.append(now)
            series.in_flight.append(in_flight)
            series.events.append(events)
        return series

    def _level_series(self) -> List[LevelSeries]:
        out: List[LevelSeries] = []
        for level in sorted(self.sampler.levels):
            state = self.sampler.levels[level]
            series = LevelSeries(
                level=level, nodes=state.nodes,
                grants_read=state.grants_read,
                grants_write=state.grants_write,
            )
            for now, _in_flight, _events, snapshot in self.sampler.ring:
                entry = _find_level(snapshot, level)
                if entry is None:
                    # The level did not exist yet (root split later).
                    held_r = held_w = queued = 0
                    nodes = 0
                else:
                    _lvl, held_r, held_w, queued, nodes = entry
                series.t.append(now)
                series.held_read.append(held_r)
                series.held_write.append(held_w)
                series.queued.append(queued)
                series.util_read.append(held_r / nodes if nodes else 0.0)
                series.util_write.append(held_w / nodes if nodes else 0.0)
            out.append(series)
        return out


def _find_level(snapshot: Tuple, level: int) -> Optional[Tuple]:
    for entry in snapshot:
        if entry[0] == level:
            return entry
    return None


def merge_telemetry(runs: Sequence[RunTelemetry]) -> SweepTelemetry:
    """Merge the per-seed runs of one sweep point (order-independent)."""
    if not runs:
        raise ConfigurationError("no telemetry runs to merge")
    ordered = sorted(runs, key=lambda run: run.seed)
    first = ordered[0]
    for run in ordered[1:]:
        if run.algorithm != first.algorithm or run.schema != first.schema:
            raise ConfigurationError(
                "cannot merge telemetry from different algorithms or "
                f"schema versions: {first.algorithm}/{first.schema} vs "
                f"{run.algorithm}/{run.schema}")
    return SweepTelemetry(
        schema=first.schema,
        algorithm=first.algorithm,
        arrival_rate=first.arrival_rate,
        seeds=[run.seed for run in ordered],
        counters=merge_counter_snapshots(run.counters for run in ordered),
        runs=list(ordered),
    )


def collect_replications(config: SimulationConfig, n_seeds: int = 5,
                         options: Optional[TelemetryOptions] = None,
                         jobs: Optional[int] = None,
                         progress: Optional[Callable[[SimulationResult], None]]
                         = None,
                         ) -> Tuple[List[SimulationResult], SweepTelemetry]:
    """Run one sweep point under telemetry and merge the artifacts.

    Fans the seeds out exactly like
    :func:`~repro.simulator.driver.run_replications` (``jobs`` defaults
    to the ambient execution context) and returns ``(results, merged)``
    where ``merged`` is the point's :class:`SweepTelemetry`.  Telemetry
    runs bypass the result cache: the time series are the artifact, and
    a memoized result has none.
    """
    from repro.parallel import run_batch
    from repro.parallel.executor import SimTask

    options = options if options is not None else TelemetryOptions()
    tasks = [SimTask(config.with_seed(config.seed + offset),
                     telemetry=options)
             for offset in range(n_seeds)]
    captured: Dict[int, RunTelemetry] = {}

    def sink(index: int, telemetry: RunTelemetry) -> None:
        captured[index] = telemetry

    results = run_batch(tasks, jobs=jobs, progress=progress,
                        telemetry_sink=sink)
    # Under a resilient execution context a seed can be quarantined and
    # deliver no telemetry; merge whatever arrived (merge_telemetry
    # still refuses an entirely empty point).
    runs = [captured[index] for index in range(len(tasks))
            if index in captured]
    return results, merge_telemetry(runs)
