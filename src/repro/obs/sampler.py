"""Periodic time-series sampling with bounded memory.

The telemetry sampler is an ordinary simulation process: every
``sample_interval`` simulated time units it snapshots

* the in-flight operation population (globally), and
* per tree level, the live lock state — how many node locks are held in
  R mode, in W mode, and how many requests are queued —

into a :class:`DecimatingRing`.  The ring never exceeds its capacity:
when it fills, every second sample is dropped and the sampler doubles
its interval, so a run of any length is covered end to end by at most
``capacity`` samples at a self-adjusting resolution (the same trick a
scope's "auto" timebase uses).  Timestamps therefore stay strictly
increasing — a property the tests pin down.

The per-level state lives in :class:`LevelState` objects that
:class:`~repro.des.rwlock.RWLock` updates inline (guarded by a single
``is not None`` check, so runs without telemetry pay one attribute load
per lock event and nothing else).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError


class LevelState:
    """Live aggregate lock state of one tree level.

    ``held_read`` / ``held_write`` count node locks currently granted in
    each mode across the level; ``queued`` counts waiting requests;
    ``grants_read`` / ``grants_write`` accumulate totals; ``nodes``
    counts locks ever attached at the level (nodes are created by
    splits but never recycled, so this is also the allocation count).
    """

    __slots__ = ("level", "nodes", "held_read", "held_write", "queued",
                 "grants_read", "grants_write")

    def __init__(self, level: int) -> None:
        self.level = level
        self.nodes = 0
        self.held_read = 0
        self.held_write = 0
        self.queued = 0
        self.grants_read = 0
        self.grants_write = 0


#: One sample: (time, in_flight, events_executed,
#:              ((level, held_read, held_write, queued, nodes), ...)).
Sample = Tuple[float, int, int, Tuple[Tuple[int, int, int, int, int], ...]]


class DecimatingRing:
    """Append-only sample store with bounded memory and full coverage.

    Unlike a sliding ring (which forgets the beginning of long runs),
    this ring halves its *resolution* when full: every second retained
    sample is dropped and :attr:`stride` doubles.  ``append`` returns
    True exactly when that happened, so the producer can double its
    sampling interval in step.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 4:
            raise ConfigurationError(
                f"ring capacity must be >= 4, got {capacity}")
        self.capacity = capacity
        self.stride = 1
        self.items: List[Sample] = []

    def append(self, item: Sample) -> bool:
        self.items.append(item)
        if len(self.items) >= self.capacity:
            # Keep items 0, 2, 4, ... — order (and hence timestamp
            # monotonicity) is preserved, resolution halves.
            del self.items[1::2]
            self.stride *= 2
            return True
        return False

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.items)


class TelemetrySampler:
    """Owns the per-level states and the sampling process of one run."""

    def __init__(self, sample_interval: float, capacity: int) -> None:
        if sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be positive, got {sample_interval}")
        self.base_interval = sample_interval
        self.interval = sample_interval
        self.ring = DecimatingRing(capacity)
        self.levels: Dict[int, LevelState] = {}

    def level_state(self, level: int) -> LevelState:
        """The (created-on-demand) live state of ``level``."""
        state = self.levels.get(level)
        if state is None:
            state = LevelState(level)
            self.levels[level] = state
        return state

    def watch(self, lock, level: int) -> None:
        """Register one node lock: future grants/releases/queueing on it
        update the level's aggregate counters."""
        state = self.level_state(level)
        state.nodes += 1
        lock.telemetry = state

    def sample(self, now: float, in_flight: int, events: int) -> None:
        snapshot = tuple(
            (state.level, state.held_read, state.held_write, state.queued,
             state.nodes)
            for state in sorted(self.levels.values(),
                                key=lambda s: s.level)
        )
        if self.ring.append((now, in_flight, events, snapshot)):
            self.interval *= 2.0

    def process(self, sim, in_flight: Callable[[], int],
                events_counter) -> Iterator[float]:
        """The generator the driver spawns alongside the workload."""
        while True:
            yield self.interval
            self.sample(sim.now, in_flight(), events_counter.value)
