"""Counter and timer instruments with a free disabled path.

Instrumented code asks an :class:`Instrumentation` registry for named
:class:`Counter`\\ s and :class:`Timer`\\ s once, up front, and then calls
``inc()`` / ``observe()`` on the hot path.  When telemetry is off the
code holds the *null* variants instead — shared singletons whose methods
are empty — so a disabled instrument costs one no-op method call and
allocates nothing per event.  The DES engine goes one step further and
keeps its untraced event loop entirely instrument-free (see
:meth:`repro.des.engine.Simulator.run`).

Counters accumulate integer-ish totals (events executed, processes
spawned); timers accumulate a count / total / min / max summary of a
stream of durations.  Everything here measures *simulated* quantities,
so snapshots are deterministic for a fixed seed and merge cleanly
across parallel workers (see :func:`merge_counter_snapshots`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping


class Counter:
    """A named monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """A named duration accumulator (count / total / min / max).

    ``observe(duration)`` folds one measurement in; the mean is
    ``total / count``.  Durations are simulated times, so the summary
    is deterministic for a fixed seed.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, count={self.count})"


class _NullCounter:
    """Shared do-nothing counter handed out when instrumentation is off."""

    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullTimer:
    """Shared do-nothing timer handed out when instrumentation is off."""

    __slots__ = ()
    name = "<disabled>"
    count = 0
    total = 0.0

    def observe(self, duration: float) -> None:
        pass


#: The singletons every disabled lookup returns: no per-lookup and no
#: per-event allocation.
NULL_COUNTER = _NullCounter()
NULL_TIMER = _NullTimer()


class Instrumentation:
    """Registry of named counters and timers for one run."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = Timer(name)
            self._timers[name] = instrument
        return instrument

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument into a ``{name: value}`` mapping.

        Counters appear under their own name; a timer ``t`` appears as
        ``t.count`` and ``t.total`` (its mean is derivable, and count /
        total sum cleanly when merging workers, which min / max / mean
        would not).
        """
        values: Dict[str, float] = {
            name: counter.value for name, counter in self._counters.items()
        }
        for name, timer in self._timers.items():
            values[f"{name}.count"] = timer.count
            values[f"{name}.total"] = timer.total
        return dict(sorted(values.items()))


class NullInstrumentation:
    """Disabled registry: every lookup returns the shared null objects."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def timer(self, name: str) -> _NullTimer:
        return NULL_TIMER

    def snapshot(self) -> Dict[str, float]:
        return {}


NULL_INSTRUMENTS = NullInstrumentation()


def merge_counter_snapshots(snapshots: Iterable[Mapping[str, float]]
                            ) -> Dict[str, float]:
    """Sum per-run counter snapshots into one (parallel-worker merge)."""
    merged: Dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0) + value
    return dict(sorted(merged.items()))
