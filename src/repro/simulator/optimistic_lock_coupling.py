"""Optimistic Lock-coupling operation processes (registered extension).

A hybrid between Naive Lock-coupling and Optimistic Descent, in the
spirit of the Bayer-Schkolnick family of update protocols the paper's
Section 2 surveys: restructures almost never climb above the bottom two
levels, so updates R-lock-couple down to level 3 (the cheap, shareable
part of the descent) and only then switch to the Naive W-lock-coupling
protocol for the level-2 node and the leaf.  When the level-2 node
turns out to be unsafe for the operation — its restructure could
propagate higher — the operation releases everything, counts a redo and
re-descends with the full Naive W protocol, exactly like Optimistic
Descent's redo pass.

The module is dispatched purely through its registry spec
(:mod:`repro.algorithms.optimistic_lock_coupling`); no core dispatch
site names it.
"""

from __future__ import annotations

from typing import Generator, List

from repro.btree.node import Node
from repro.simulator import lock_coupling as naive
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OperationContext,
    coupled_read_descent,
    release_all,
)

#: Updates W-lock at most this many of the deepest levels on the fast
#: path; shallower trees fall back to the full Naive W protocol.
_W_LEVELS = 2

#: Searches are identical to Naive Lock-coupling searches.
search = naive.search


def insert(ctx: OperationContext, key: int) -> Generator:
    yield from _update(ctx, key, for_insert=True)


def delete(ctx: OperationContext, key: int) -> Generator:
    yield from _update(ctx, key, for_insert=False)


def _update(ctx: OperationContext, key: int, for_insert: bool) -> Generator:
    started = ctx.sim.now
    op_name = OP_INSERT if for_insert else OP_DELETE
    locked = yield from _hybrid_descent(ctx, key, for_insert)
    if for_insert:
        yield from naive._apply_insert(ctx, key, locked)
    else:
        yield from naive._apply_delete(ctx, key, locked)
    yield from release_all(locked)
    ctx.finish(op_name, started)


def _hybrid_descent(ctx: OperationContext, key: int,
                    for_insert: bool) -> Generator:
    """R-couple to level 3, then W-couple the bottom two levels.

    Returns the still-locked path in the shape
    :func:`naive._apply_insert` / :func:`naive._apply_delete` expect:
    the deepest safe node followed by the contiguous unsafe suffix down
    to the leaf.
    """
    while True:
        if ctx.tree.height <= _W_LEVELS:
            # Too shallow for the hybrid: W protocol from the root.
            locked = yield from naive._write_descent(ctx, key, for_insert)
            return locked
        parent = yield from coupled_read_descent(ctx, key,
                                                 stop_level=_W_LEVELS + 1)
        if parent.level != _W_LEVELS + 1:
            # The tree shrank under us; retry.
            yield parent.lock.release_cmd
            ctx.metrics.restarts += 1
            continue
        yield ctx.sampler.search(parent.level)
        top = parent.child_for(key)
        yield top.lock.acquire_write
        yield parent.lock.release_cmd
        if top.dead:  # pragma: no cover - coupling pins the child
            yield top.lock.release_cmd
            ctx.metrics.restarts += 1
            continue
        safe = (ctx.tree.is_insert_safe(top) if for_insert
                else ctx.tree.is_delete_safe(top))
        if not safe:
            # A restructure could climb past level 2: full W redo.
            yield top.lock.release_cmd
            ctx.metrics.redo_descents += 1
            locked = yield from naive._write_descent(ctx, key, for_insert)
            return locked
        locked = yield from _write_subdescent(ctx, top, key, for_insert)
        if locked is None:  # pragma: no cover - coupling pins children
            ctx.metrics.restarts += 1
            continue
        return locked


def _write_subdescent(ctx: OperationContext, top: Node, key: int,
                      for_insert: bool) -> Generator:
    """Naive W-lock-coupling from an already W-locked *safe* node down
    to the leaf; since ``top`` absorbs any restructure, the returned
    path never needs to climb above it."""
    locked: List[Node] = [top]
    node = top
    while not node.is_leaf:
        yield ctx.sampler.search(node.level)
        child = node.child_for(key)
        yield child.lock.acquire_write
        if child.dead:  # pragma: no cover - coupling pins children
            yield from release_all(locked)
            yield child.lock.release_cmd
            return None
        safe = (ctx.tree.is_insert_safe(child) if for_insert
                else ctx.tree.is_delete_safe(child))
        if safe:
            yield from release_all(locked)
            locked = [child]
        else:
            locked.append(child)
        node = child
    return locked
