"""Symmetric Link-type algorithm (after Lanin & Shasha, ref [15]).

The paper's Link-type family: Lehman-Yao [16] handles inserts with
half-splits but ignores deletion restructuring; Lanin & Shasha's
symmetric algorithm [15] gives deletes the mirror treatment — a node
that empties is merged away inline, so the tree does not accumulate
empty leaves.

This implementation keeps Lehman-Yao's searches, inserts and scans
verbatim and adds the symmetric delete: when a delete empties a leaf,
the deleter releases its leaf lock and performs the same deadlock-free
(parent, left-neighbour, leaf) splice the background compactor uses —
locks ordered top-down then left-to-right, re-validated under the locks.
Leaves that race out of the merge (or whose parent would be emptied) are
simply left for a later delete or a compactor pass, mirroring the
best-effort character of the original algorithm's maintenance.
"""

from __future__ import annotations

from typing import Generator

from repro.simulator import link as link_base
from repro.simulator.compaction import _reclaim
from repro.simulator.operations import (
    OP_DELETE,
    OperationContext,
)

#: Searches, inserts and range scans are exactly Lehman-Yao's.
search = link_base.search
insert = link_base.insert
scan = link_base.scan


def delete(ctx: OperationContext, key: int) -> Generator:
    """Link-type delete with inline merge-at-empty.

    The response time recorded for the operation includes the merge work
    (the deleter performs it before completing), which is the symmetric
    analogue of an insert paying for its own half-split.
    """
    started = ctx.sim.now
    target = yield from link_base._read_descent(ctx, key, stack=None,
                                                stop_above_leaf=True)
    leaf = yield from link_base._wlock_covering(ctx, target, key)
    yield ctx.sampler.modify(1)
    ctx.tree.apply_leaf_delete(leaf, key)
    emptied = (leaf.n_entries() == 0 and leaf is not ctx.tree.root)
    yield leaf.lock.release_cmd
    if emptied:
        removed = yield from _reclaim(ctx, leaf)
        if removed:
            ctx.metrics.leaf_removals += 1
    ctx.finish(OP_DELETE, started)
