"""Shared machinery for the concurrent operation processes.

Each algorithm module exposes three generator factories — ``search``,
``insert``, ``delete`` — taking an :class:`OperationContext` and a key.
The generators yield the allocation-free forms of the kernel commands: a
bare ``float`` (hold that much simulated time) and the per-lock interned
``lock.acquire_read`` / ``lock.acquire_write`` / ``lock.release_cmd``
instances (see :mod:`repro.des.process`).  Code between yields executes
atomically in simulated time, so
structural tree changes made while holding the right locks are race-free
by construction (the same property the paper's simulator relies on).

Restart rules (the only deviations from the textbook protocols, both
consequences of implementing the algorithms on a *growing/shrinking*
tree):

* A process that locked what it believed was the root re-checks
  ``tree.root`` after the grant; a root split or collapse in the
  meantime forces a restart.
* A process that acquired a lock on a node freed by a merge-at-empty
  removal (``node.dead``) releases and restarts.  Lock-coupling makes
  this impossible mid-descent (the parent lock pins the child), so it
  only fires at the root boundary.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.btree.node import LeafNode, Node
from repro.btree.tree import BPlusTree
from repro.des.engine import Simulator
from repro.des.process import READ
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import MetricsCollector

#: Operation type labels.
OP_SEARCH = "search"
OP_INSERT = "insert"
OP_DELETE = "delete"


class OperationContext:
    """Everything an operation process needs, bundled.

    The context also carries the recovery policy knobs so the Optimistic
    Descent operations can retain W locks past completion (Section 7).
    """

    __slots__ = ("sim", "tree", "sampler", "metrics", "rng",
                 "retain_leaf", "retain_all", "t_trans")

    def __init__(self, sim: Simulator, tree: BPlusTree,
                 sampler: ServiceTimeSampler, metrics: MetricsCollector,
                 rng: random.Random,
                 recovery: str = "no-recovery",
                 t_trans: float = 0.0) -> None:
        self.sim = sim
        self.tree = tree
        self.sampler = sampler
        self.metrics = metrics
        self.rng = rng
        self.retain_leaf = recovery in ("leaf-only-recovery", "naive-recovery")
        self.retain_all = recovery == "naive-recovery"
        self.t_trans = t_trans

    def finish(self, operation: str, started_at: float) -> None:
        """Record the operation's response time (now minus arrival)."""
        self.metrics.record_response(operation, self.sim.now - started_at)


def acquire_valid_root(ctx: OperationContext, mode: str) -> Generator:
    """Sub-generator: lock the current root, restarting while stale.

    Returns the locked root node (via generator return / ``yield from``).
    """
    read = mode == READ
    while True:
        node = ctx.tree.root
        lock = node.lock
        yield lock.acquire_read if read else lock.acquire_write
        if node is ctx.tree.root and not node.dead:
            return node
        yield lock.release_cmd
        ctx.metrics.restarts += 1


def release_all(locked) -> Generator:
    """Sub-generator: release every lock in ``locked`` (top-down order)."""
    for node in locked:
        yield node.lock.release_cmd


def coupled_read_descent(ctx: OperationContext, key: int,
                         stop_level: int = 1) -> Generator:
    """R-lock-coupled descent to ``stop_level``; returns the locked node.

    Used by searches (to the leaf) and by Optimistic Descent first passes
    (to level 2, from where the leaf is W-locked).  The caller receives
    the node at ``stop_level`` with its R lock held.
    """
    node = yield from acquire_valid_root(ctx, READ)
    while node.level > stop_level:
        yield ctx.sampler.search(node.level)
        child = node.child_for(key)
        yield child.lock.acquire_read
        yield node.lock.release_cmd
        if child.dead:  # pragma: no cover - pinned by coupling; root edge only
            yield child.lock.release_cmd
            ctx.metrics.restarts += 1
            node = yield from acquire_valid_root(ctx, READ)
            continue
        node = child
    return node


def pick_resident_key(tree: BPlusTree, rng: random.Random,
                      key_space: int,
                      probe: Optional[int] = None) -> int:
    """A key currently in the tree, located near a probe.

    Deletes target resident keys (otherwise merge behaviour never
    triggers); the probe-then-pick scheme is O(height).  The read is
    atomic in simulated time, so no locks are needed to *choose* the key
    — the operation still locks properly to delete it (and simply finds
    nothing if it lost a race).  ``probe`` defaults to a uniform draw;
    skewed workloads pass their own so deletes follow the same
    distribution as the other operations.
    """
    if probe is None:
        probe = rng.randrange(key_space)
    node: Optional[Node] = tree.find_leaf(probe)
    while node is not None and not node.keys:
        node = node.right
    if node is None or not node.keys:
        return probe
    assert isinstance(node, LeafNode)
    return node.keys[rng.randrange(len(node.keys))]
