"""Service-time sampling for the simulator.

All service times are exponentially distributed (paper Section 4) with
the means of the Section 5 cost model: searching a level-i node has mean
``Se(i)``, a leaf modify ``M = 2 Se(1)``, a split ``Sp(i) = 3 Se(i)``.
On-disk levels (all but the top ``in_memory_levels``) are dilated by the
disk cost D.  The dilation is evaluated against the tree's *current*
height, so a root split during the run keeps the same number of cached
levels.
"""

from __future__ import annotations

import random

from repro.btree.tree import BPlusTree
from repro.model.params import CostModel


class ServiceTimeSampler:
    """Draws exponential service times for node accesses."""

    def __init__(self, costs: CostModel, tree: BPlusTree,
                 rng: random.Random) -> None:
        self._costs = costs
        self._tree = tree
        self._rng = rng

    def _exp(self, mean: float) -> float:
        if mean <= 0.0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def search(self, level: int) -> float:
        """Time to search a level-``level`` node."""
        return self._exp(self._costs.se(level, self._tree.height))

    def modify(self, level: int = 1) -> float:
        """Time to modify a level-``level`` node (usually a leaf)."""
        return self._exp(self._costs.modify_at(level, self._tree.height))

    def split(self, level: int) -> float:
        """Time to split a level-``level`` node (includes the parent
        modify, matching the analytical Sp(i))."""
        return self._exp(self._costs.sp(level, self._tree.height))

    def merge(self, level: int) -> float:
        """Time to restructure away an empty level-``level`` node."""
        return self._exp(self._costs.mg(level, self._tree.height))

    def half_split(self, level: int) -> float:
        """Time for a Link-type half-split: the node-local part of a
        split.  The parent modify is charged separately (under the
        parent's own W lock), so the two halves together cost Sp(i) on
        average, keeping the total split work identical across
        algorithms."""
        h = self._tree.height
        full = self._costs.sp(level, h)
        parent_level = min(level + 1, h)
        parent_modify = self._costs.modify_at(parent_level, h)
        return self._exp(max(full - parent_modify, 0.25 * full))

    def parent_post(self, level: int) -> float:
        """Time to post a separator into a level-``level`` parent
        (Link-type split completion)."""
        return self._exp(self._costs.modify_at(level, self._tree.height))

    def transaction_remainder(self, t_trans: float) -> float:
        """Remaining transaction time for recovery lock retention."""
        return self._exp(t_trans)
