"""Optimistic Descent operation processes (paper Section 2).

Updates first descend exactly like searches (R lock coupling), W-locking
only the leaf.  If the leaf turns out to be unsafe for the operation, all
locks are dropped and the operation re-descends with the Naive
Lock-coupling W protocol (the analysis's *redo* operation).

Recovery policies (Section 7) are implemented here: when the context
retains leaf locks, the operation's response ends at completion but the
process keeps holding the retained W locks for the remaining transaction
time before releasing them.
"""

from __future__ import annotations

from typing import Generator, List

from repro.btree.node import LeafNode, Node
from repro.simulator import lock_coupling as naive
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OperationContext,
    coupled_read_descent,
    release_all,
)

#: Searches are identical to Naive Lock-coupling searches.
search = naive.search


def insert(ctx: OperationContext, key: int) -> Generator:
    yield from _update(ctx, key, for_insert=True)


def delete(ctx: OperationContext, key: int) -> Generator:
    yield from _update(ctx, key, for_insert=False)


def _update(ctx: OperationContext, key: int, for_insert: bool) -> Generator:
    started = ctx.sim.now
    op_name = OP_INSERT if for_insert else OP_DELETE

    leaf = yield from _optimistic_leaf_lock(ctx, key)
    if leaf is None:
        # Height-1 tree: the root is the leaf; fall back to the W protocol.
        yield from _redo(ctx, key, for_insert, started, op_name)
        return

    yield ctx.sampler.modify(1)
    if _leaf_safe(ctx, leaf, key, for_insert):
        if for_insert:
            ctx.tree.apply_leaf_insert(leaf, key)
        else:
            ctx.tree.apply_leaf_delete(leaf, key)
        yield from _finish_with_retention(ctx, [leaf], started, op_name)
        return

    # Unsafe leaf: release everything and redo with W locks.
    yield leaf.lock.release_cmd
    ctx.metrics.redo_descents += 1
    yield from _redo(ctx, key, for_insert, started, op_name)


def _optimistic_leaf_lock(ctx: OperationContext, key: int) -> Generator:
    """R-couple to level 2, then W-lock the leaf (holding the level-2 R
    lock across the wait).  Returns the W-locked leaf, or None when the
    tree is a single leaf (caller falls back to the W protocol)."""
    while True:
        if ctx.tree.height == 1:
            return None
        parent = yield from coupled_read_descent(ctx, key, stop_level=2)
        if parent.is_leaf:
            # The tree shrank under us; retry.
            yield parent.lock.release_cmd
            ctx.metrics.restarts += 1
            continue
        yield ctx.sampler.search(parent.level)
        leaf = parent.child_for(key)
        yield leaf.lock.acquire_write
        yield parent.lock.release_cmd
        if leaf.dead:  # pragma: no cover - coupling pins the child
            yield leaf.lock.release_cmd
            ctx.metrics.restarts += 1
            continue
        assert isinstance(leaf, LeafNode)
        return leaf


def _leaf_safe(ctx: OperationContext, leaf: LeafNode, key: int,
               for_insert: bool) -> bool:
    """Can the operation complete on this leaf without restructuring?

    Duplicate inserts and misses cannot overflow; deleting the last key
    of a non-root leaf would trigger a merge-at-empty removal."""
    if for_insert:
        return leaf.contains(key) or ctx.tree.is_insert_safe(leaf)
    if not leaf.contains(key):
        return True
    return leaf is ctx.tree.root or ctx.tree.is_delete_safe(leaf)


def _redo(ctx: OperationContext, key: int, for_insert: bool,
          started: float, op_name: str) -> Generator:
    """Second pass: the Naive Lock-coupling W-lock protocol.

    Under the Naive recovery policy the redo descent keeps every W lock
    it places (strict two-phase locking): ancestor locks are not released
    when the child is safe, and everything is retained until commit."""
    locked = yield from naive._write_descent(
        ctx, key, for_insert, release_early=not ctx.retain_all)
    if for_insert:
        yield from naive._apply_insert(ctx, key, locked)
    else:
        yield from naive._apply_delete(ctx, key, locked)
    yield from _finish_with_retention(ctx, locked, started, op_name)


def _finish_with_retention(ctx: OperationContext, locked: List[Node],
                           started: float, op_name: str) -> Generator:
    """Record the response, then hold retained W locks until the
    enclosing transaction commits (Section 7 recovery policies).

    * no recovery: release everything now;
    * leaf-only: retain the leaf lock, release internal locks now;
    * naive: retain every W lock still held (the unsafe-path suffix),
      matching the analysis's Pr[F(i)] * T_trans retention weighting.
    """
    retained: List[Node] = []
    released: List[Node] = []
    for node in locked:
        if node.dead:
            # Freed by this very operation's merge-at-empty removal; its
            # lock is still held and must simply be released.
            released.append(node)
        elif ctx.retain_all or (ctx.retain_leaf and node.is_leaf):
            retained.append(node)
        else:
            released.append(node)
    yield from release_all(released)
    ctx.finish(op_name, started)
    if retained:
        yield ctx.sampler.transaction_remainder(ctx.t_trans)
        yield from release_all(retained)
