"""Background compression for Link-type trees (after Sagiv, ref [23]).

The Link-type algorithm never merges, so deletes leave empty leaves in
place (the paper ignores merges because, with inserts outnumbering
deletes, they are rare).  Sagiv's B*-link paper proposes an independent
*compression process* that reclaims empty nodes in the background; this
module implements it for the leaf level:

* periodically sweep the leaf chain (the peek is atomic in simulated
  time) collecting empty-leaf candidates;
* for each candidate, acquire W locks in the global deadlock-free order
  every other process uses — parent (upper level) first, then
  left-to-right within the leaf level: left neighbour before the victim;
* re-validate under the locks (splits/removals may have raced ahead) and
  splice the leaf out via
  :meth:`~repro.btree.tree.BPlusTree.splice_out_empty_leaf`.

The compactor holds at most three locks, never blocks the tree for long,
and its reclamation count is reported through the run metrics.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode, Node
from repro.simulator.operations import OperationContext


def compactor(ctx: OperationContext, interval: float,
              max_sweeps: Optional[int] = None) -> Generator:
    """Background process: sweep for empty leaves every ``interval``
    (exponentially distributed) time units.

    Runs forever unless ``max_sweeps`` is given; the driver simply stops
    the event loop when the measured run ends.
    """
    sweeps = 0
    while max_sweeps is None or sweeps < max_sweeps:
        yield (ctx.rng.expovariate(1.0 / interval)
               if interval > 0 else 0.0)
        yield from sweep_once(ctx)
        sweeps += 1


def sweep_once(ctx: OperationContext) -> Generator:
    """One full pass over the leaf chain; returns reclaimed count."""
    reclaimed = 0
    for leaf in _empty_leaf_candidates(ctx):
        removed = yield from _reclaim(ctx, leaf)
        if removed:
            reclaimed += 1
            ctx.metrics.compactions += 1
    return reclaimed


def _empty_leaf_candidates(ctx: OperationContext) -> List[LeafNode]:
    """Atomic snapshot of the currently-empty leaves."""
    candidates: List[LeafNode] = []
    node: Optional[Node] = ctx.tree.root
    while node is not None and not node.is_leaf:
        node = node.children[0]  # type: ignore[union-attr]
    while node is not None:
        if not node.keys and node is not ctx.tree.root:
            candidates.append(node)  # type: ignore[arg-type]
        node = node.right
    return candidates


def _locate(ctx: OperationContext,
            leaf: LeafNode) -> Optional[Tuple[InternalNode, Optional[Node]]]:
    """Atomic lookup of the victim's parent and left neighbour.

    An empty leaf is only findable positionally: descend toward its key
    range (just below the high key, or the rightmost path when the leaf
    is the rightmost of its level) to level 2, then walk right links by
    identity.  Best-effort — returning None just defers the leaf to the
    next sweep.
    """
    if leaf.dead or leaf.keys:
        return None
    node: Node = ctx.tree.root
    if node.is_leaf or node.level < 2:
        return None
    while node.level > 2:
        assert isinstance(node, InternalNode)
        if leaf.high_key is None:
            node = node.children[-1]
        else:
            node = node.child_for(leaf.high_key - 1)
        if node.is_leaf:  # pragma: no cover - height raced under us
            return None
    candidate: Optional[Node] = node
    while candidate is not None:
        assert isinstance(candidate, InternalNode)
        if leaf in candidate.children:
            break
        candidate = candidate.right
    if candidate is None:
        return None
    left = ctx.tree._scan_for_left_neighbour(leaf)
    return candidate, left  # type: ignore[return-value]


def _reclaim(ctx: OperationContext, leaf: LeafNode) -> Generator:
    """Lock (parent, left, leaf) in deadlock-free order and splice."""
    located = _locate(ctx, leaf)
    if located is None:
        return False
    parent, left = located
    yield parent.lock.acquire_write
    yield ctx.sampler.search(parent.level)
    if left is not None:
        yield left.lock.acquire_write
    yield leaf.lock.acquire_write
    yield ctx.sampler.merge(1)
    removed = ctx.tree.splice_out_empty_leaf(leaf, parent, left)
    yield leaf.lock.release_cmd
    if left is not None:
        yield left.lock.release_cmd
    yield parent.lock.release_cmd
    return removed
