"""The concurrent B-tree simulator (paper Section 4).

Runs the concurrency-control algorithms — the paper's Naive
Lock-coupling, Optimistic Descent and Link-type, plus the Two-Phase
Locking baseline and the symmetric link variant — as discrete-event
processes against an actual :class:`~repro.btree.tree.BPlusTree`:

* operations arrive in a Poisson process and perform real searches,
  inserts and deletes on the shared tree;
* every node carries a FCFS R/W lock; all service times are exponential
  with the Section 5.3 cost means (disk levels dilated by D);
* the simulator "crashes" (raises
  :class:`~repro.errors.PopulationOverflowError`) when the in-flight
  operation population exceeds its allocation, which is how saturation
  manifests, exactly as in the paper.

Entry points: :func:`~repro.simulator.driver.run_simulation` (open
Poisson arrivals) and
:func:`~repro.simulator.closed.run_closed_simulation` (fixed
multiprogramming level), both taking a
:class:`~repro.simulator.config.SimulationConfig`.
"""

from repro.simulator.config import SimulationConfig
from repro.simulator.driver import run_simulation, run_replications
from repro.simulator.metrics import SimulationResult


def __getattr__(name: str):
    if name == "ALGORITHMS":
        # Deprecated alias: the registry (repro.algorithms) is the
        # source of truth; computed lazily so importing this package
        # never snapshots a partially-populated registry.
        from repro.algorithms import algorithm_names
        return algorithm_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALGORITHMS",
    "SimulationConfig",
    "SimulationResult",
    "run_replications",
    "run_simulation",
]
