"""Simulation driver (paper Section 4).

``run_simulation``:

1. builds the B-tree out of a random insert/delete sequence with the same
   insert/delete proportions as the concurrent mix (construction phase);
2. attaches a FCFS R/W lock to every node (including nodes created later
   by concurrent splits);
3. releases concurrent operations in a Poisson stream, each performing a
   real search / insert / delete through the chosen algorithm's
   processes, with exponential service times;
4. measures response times and lock waits after a warm-up, sampling the
   root lock for the writer-presence probability rho_w (Figure 10);
5. aborts — flagging the run as *overflowed* — if the in-flight operation
   population exceeds the allocation, the paper's saturation signal.

``run_replications`` repeats a configuration over several seeds (the
paper uses 5) and returns the per-seed results; with ``jobs=N`` the
seeds run on a process pool, and with a cache installed (see
:mod:`repro.parallel`) previously computed runs are reused — both
bit-identical to serial recomputation.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.algorithms import get_algorithm
from repro.btree.builder import build_tree
from repro.btree.node import Node
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.simulator.config import SimulationConfig
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.metrics import (
    MetricsCollector,
    SimulationResult,
    summarize,
)
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    OperationContext,
    pick_resident_key,
)
from repro.obs.instruments import NULL_INSTRUMENTS
from repro.workload.keys import KeyPicker
from repro.workload.runtime import WorkloadRuntime
from repro.workload.spec import effective_workload
from repro.workload.transactions import (
    TransactionLockTable,
    transaction_envelope,
)
import repro.workload.runtime as _workload_runtime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.cache import ResultCache

# The workload runtime emits operation labels without importing the
# simulator (layering); the two constant sets must stay identical.
assert (_workload_runtime._SEARCH, _workload_runtime._INSERT,
        _workload_runtime._DELETE) == (OP_SEARCH, OP_INSERT, OP_DELETE)

#: Interval (in root-search time units) between root-utilization samples.
_ROOT_SAMPLE_INTERVAL = 1.0


def __getattr__(name: str):
    if name == "_ALGORITHM_MODULES":
        # Deprecated alias of the registry, kept for callers that
        # enumerated the old name -> ops-module map.
        from repro.algorithms import all_algorithms
        return {spec.name: spec.ops for spec in all_algorithms()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class _GatedObserver:
    """Forwards lock waits to the per-level collector only while the
    measurement window is open."""

    __slots__ = ("collector", "inner")

    def __init__(self, collector: MetricsCollector, level: int) -> None:
        self.collector = collector
        self.inner = collector.observer_for_level(level)

    def on_wait(self, mode: str, wait: float) -> None:
        if self.collector.measuring:
            self.inner.on_wait(mode, wait)


class _RunState:
    """Mutable run bookkeeping shared by the driver's closures."""

    __slots__ = ("population", "completions", "overflowed")

    def __init__(self) -> None:
        self.population = 0
        self.completions = 0
        self.overflowed = False


class _PreparedRun:
    """One run's live machinery between setup and summary.

    :func:`_prepare_run` builds it, :func:`_finalize_run` freezes it
    into a :class:`SimulationResult`.  The split exists for the
    lane-multiplexed batch driver (:mod:`repro.simulator.batch`), which
    prepares several runs and advances their simulators in lock-step
    rounds; :func:`run_simulation` is exactly prepare → drain →
    finalize, so both paths execute the identical event sequence.
    """

    __slots__ = ("config", "sim", "metrics", "state", "tree", "guard",
                 "telemetry", "stop_when")

    def __init__(self, config, sim, metrics, state, tree, guard,
                 telemetry, stop_when) -> None:
        self.config = config
        self.sim = sim
        self.metrics = metrics
        self.state = state
        self.tree = tree
        self.guard = guard
        self.telemetry = telemetry
        self.stop_when = stop_when

    def finished(self) -> bool:
        """True once the run's stop predicate holds (measurement target
        reached, overflow, or a tripped budget)."""
        return bool(self.stop_when())


def run_simulation(config: SimulationConfig, trace=None,
                   telemetry=None, budget=None):
    """Execute one simulator run and return its metrics summary.

    Pass a :class:`~repro.des.trace.TraceLog` as ``trace`` to record
    every lock/hold/lifecycle event of the run (bounded ring buffer;
    see ``docs/simulator.md``).  Pass a
    :class:`~repro.obs.telemetry.TelemetryRecorder` as ``telemetry`` to
    additionally collect per-level time series, engine counters and a
    response timer; the recorder's ``telemetry`` attribute holds the
    finished :class:`~repro.obs.telemetry.RunTelemetry` afterwards
    (``docs/observability.md``).

    Pass a :class:`~repro.resilience.TaskBudget` as ``budget`` to bound
    the run by executed events and/or wall clock; a tripped budget
    stops the simulation and returns a
    :class:`~repro.resilience.TruncatedResult` wrapping the partial
    metrics summarized at truncation time, flagged ``overflowed`` (a
    budget trip in this regime is saturation-suspected).  Without a
    budget the return type is a plain :class:`SimulationResult` and
    behavior is unchanged (see ``docs/robustness.md``).
    """
    prepared = _prepare_run(config, trace=trace, telemetry=telemetry,
                            budget=budget)
    prepared.sim.run(stop_when=prepared.stop_when)
    return _finalize_run(prepared)


def _prepare_run(config: SimulationConfig, trace=None,
                 telemetry=None, budget=None) -> _PreparedRun:
    """Build one run — tree, locks, processes, stop predicate — without
    executing any event.  Every RNG draw happens here in the same order
    as it always has, so a prepared run advanced by *any* schedule of
    ``sim.run`` slices produces the bit-identical result."""
    module = get_algorithm(config.algorithm).ops

    seed_root = random.Random(config.seed)
    rng_build = random.Random(seed_root.randrange(2 ** 63))
    rng_arrivals = random.Random(seed_root.randrange(2 ** 63))
    rng_keys = random.Random(seed_root.randrange(2 ** 63))
    rng_service = random.Random(seed_root.randrange(2 ** 63))

    metrics = MetricsCollector(seed=config.seed)
    if telemetry is not None:
        # Fold every measured response into a Timer instrument as well,
        # so the exported counters carry the latency totals.
        response_timer = telemetry.instruments.timer("sim.response")
        record_response = metrics.record_response

        def record_and_time(operation: str, elapsed: float) -> None:
            record_response(operation, elapsed)
            if metrics.measuring:
                response_timer.observe(elapsed)

        metrics.record_response = record_and_time

    def attach_lock(node: Node) -> None:
        lock = RWLock(name=f"n{node.node_id}",
                      observer=_GatedObserver(metrics, node.level))
        if telemetry is not None:
            telemetry.watch(lock, node.level)
        node.lock = lock

    tree = build_tree(
        config.n_items, order=config.order,
        insert_fraction=config.mix.insert_share or 1.0,
        merge_policy=config.merge_policy, key_space=config.key_space,
        rng=rng_build, on_new_node=attach_lock,
    )

    sim = Simulator(trace=trace,
                    instruments=telemetry.instruments
                    if telemetry is not None else None)
    sampler = ServiceTimeSampler(config.costs, tree, rng_service)
    ctx = OperationContext(sim, tree, sampler, metrics, rng_keys,
                           recovery=config.recovery, t_trans=config.t_trans)
    state = _RunState()
    warmup = config.warmup_operations
    target = config.n_operations

    def on_operation_done(_process) -> None:
        state.population -= 1
        state.completions += 1
        if state.completions == warmup and not metrics.measuring:
            metrics.measuring = True
            metrics.measure_start_time = sim.now

    if warmup == 0:
        metrics.measuring = True
        metrics.measure_start_time = 0.0

    runtime = WorkloadRuntime(config, rng_keys)
    picker = runtime.picker
    txn_size = runtime.transaction_size
    key_space = config.key_space

    # workload.* telemetry instruments (docs/observability.md): offered
    # load, interarrival gaps, hot-key share and transaction lock-hold
    # times.  NULL_INSTRUMENTS keeps the disabled path allocation-free.
    wl_instruments = telemetry.instruments if telemetry is not None \
        else NULL_INSTRUMENTS
    wl_arrivals = wl_instruments.counter("workload.arrivals")
    wl_interarrival = wl_instruments.timer("workload.interarrival")
    wl_keys_total = wl_instruments.counter("workload.keys")
    wl_keys_hot = wl_instruments.counter("workload.keys_hot")
    wl_txn_hold = wl_instruments.timer("workload.txn_hold")

    if telemetry is not None:
        def note_key(key: int, now: float) -> None:
            wl_keys_total.inc()
            hot = picker.hot_interval(now)
            if hot is not None:
                start, size = hot
                if (key - start) % key_space < size:
                    wl_keys_hot.inc()
    else:
        def note_key(key: int, now: float) -> None:
            pass

    def draw_member(now: float):
        """One (operation, key) draw — identical stream order to the
        legacy driver (mix from rng_arrivals, key from rng_keys)."""
        op_name = runtime.draw_operation(rng_arrivals)
        if op_name == OP_DELETE:
            key = pick_resident_key(tree, rng_keys, key_space,
                                    probe=picker.pick(now))
        else:
            key = picker.pick(now)
        note_key(key, now)
        return op_name, key

    def spawn_operation() -> None:
        op_name, key = draw_member(sim.now)
        factory = getattr(module, op_name)
        state.population += 1
        metrics.note_population(state.population)
        if state.population > config.max_population:
            state.overflowed = True
            sim.stop()
            return
        sim.spawn(factory(ctx, key), name=op_name,
                  on_done=on_operation_done)

    txn_table = TransactionLockTable() if txn_size > 1 else None

    def spawn_transaction() -> None:
        now = sim.now
        members = tuple(draw_member(now) for _ in range(txn_size))
        state.population += 1
        metrics.note_population(state.population)
        if state.population > config.max_population:
            state.overflowed = True
            sim.stop()
            return
        sim.spawn(
            transaction_envelope(module, ctx, members, txn_table,
                                 on_commit=wl_txn_hold.observe),
            name="transaction", on_done=on_operation_done)

    spawn = spawn_operation if txn_size == 1 else spawn_transaction

    def arrivals():
        sampler = runtime.arrival_sampler(config.arrival_rate,
                                          rng_arrivals)
        # Hoisted bound methods: no per-arrival attribute or config
        # lookups in the hot loop.
        next_interval = sampler.next_interval
        count_arrival = wl_arrivals.inc
        observe_gap = wl_interarrival.observe
        while True:
            gap = next_interval()
            yield gap
            count_arrival()
            observe_gap(gap)
            spawn()

    def root_sampler():
        while True:
            yield _ROOT_SAMPLE_INTERVAL
            lock = tree.root.lock
            present = lock.writer is not None or lock.writer_waiting()
            metrics.record_root_sample(present,
                                       queue_length=lock.queue_length)

    sim.spawn(arrivals(), name="arrivals")
    sim.spawn(root_sampler(), name="root-sampler")
    if telemetry is not None:
        sim.spawn(telemetry.sampler_process(sim, lambda: state.population),
                  name="telemetry-sampler")
    if config.compaction_interval is not None:
        from repro.simulator.compaction import compactor
        sim.spawn(compactor(ctx, config.compaction_interval),
                  name="compactor")

    def done() -> bool:
        return (metrics.measured_operations >= target) or state.overflowed

    guard = None
    if budget is None:
        stop_when = done
    else:
        from repro.resilience.budget import BudgetGuard
        guard = BudgetGuard(budget)
        # exceeded() runs first so every executed event is counted.
        stop_when = lambda: guard.exceeded() or done()  # noqa: E731
    return _PreparedRun(config, sim, metrics, state, tree, guard,
                        telemetry, stop_when)


def _finalize_run(prepared: _PreparedRun):
    """Freeze a drained prepared run into its result (or a
    :class:`~repro.resilience.TruncatedResult` if its budget tripped)."""
    config, metrics, state = prepared.config, prepared.metrics, \
        prepared.state
    tree, guard = prepared.tree, prepared.guard
    metrics.measure_end_time = prepared.sim.now

    tripped = guard is not None and guard.tripped
    result = summarize(
        metrics, algorithm=config.algorithm,
        arrival_rate=config.arrival_rate, seed=config.seed,
        overflowed=state.overflowed or tripped, tree_size=len(tree),
        tree_height=tree.height,
    )
    if prepared.telemetry is not None:
        prepared.telemetry.finalize(result)
    if tripped:
        from repro.resilience.budget import TruncatedResult
        return TruncatedResult(result=result, reason=guard.reason,
                               events_executed=guard.events,
                               wall_seconds=guard.elapsed())
    return result


def make_key_picker(config: SimulationConfig,
                    rng: random.Random) -> KeyPicker:
    """The key-selection distribution the configuration asks for,
    resolved through the workload layer (the explicit ``workload``
    field wins; the legacy ``key_distribution`` fields map onto the
    equivalent spec)."""
    return effective_workload(config).keys.build(config.key_space, rng)


def _draw_operation(config: SimulationConfig, rng: random.Random) -> str:
    """Deprecated per-call mix draw (kept for external callers; the
    driver hoists the thresholds through :class:`WorkloadRuntime`)."""
    u = rng.random()
    if u < config.mix.q_search:
        return OP_SEARCH
    if u < config.mix.q_search + config.mix.q_insert:
        return OP_INSERT
    return OP_DELETE


def run_replications(config: SimulationConfig,
                     n_seeds: int = 5,
                     progress: Optional[Callable[[SimulationResult], None]]
                     = None,
                     jobs: Optional[int] = None,
                     cache: Optional["ResultCache"] = None,
                     batch: "Optional[int | str]" = None,
                     ) -> List[SimulationResult]:
    """Run ``config`` under ``n_seeds`` different seeds (paper: 5).

    ``jobs``/``cache``/``batch`` default to the ambient execution
    context (see :mod:`repro.parallel`): serial, uncached, unbatched.
    ``jobs=N`` runs the seeds on ``N`` worker processes; results are
    returned in seed order and are bit-identical to the serial path.
    ``batch=N`` advances up to ``N`` seeds per scheduled unit through
    the lane-multiplexed batch driver (:mod:`repro.simulator.batch`)
    when the algorithm is vector-capable — also bit-identical, with
    per-seed cache keys unchanged; ``batch="auto"`` picks the width
    from the persisted cost-model calibration
    (:mod:`repro.des.autotune`).  ``progress`` is called once per
    completed result (completion order when parallel).
    """
    from repro.parallel import replication_tasks, run_batch
    return run_batch(replication_tasks(config, n_seeds),
                     jobs=jobs, cache=cache, progress=progress,
                     batch=batch)


def pooled_response_means(results: Sequence[Optional[SimulationResult]]
                          ) -> Dict[str, float]:
    """Average each operation's mean response over non-overflowed runs;
    +inf when every replication overflowed (saturated setting).

    ``None`` entries (quarantined tasks from a resilient sweep) are
    skipped, like overflowed runs."""
    usable = [r for r in results if r is not None and not r.overflowed]
    if not usable:
        return {OP_SEARCH: math.inf, OP_INSERT: math.inf,
                OP_DELETE: math.inf}
    out: Dict[str, float] = {}
    for op in (OP_SEARCH, OP_INSERT, OP_DELETE):
        values = [r.mean_response[op] for r in usable
                  if not math.isnan(r.mean_response[op])]
        out[op] = sum(values) / len(values) if values else math.nan
    return out
