"""Link-type (Lehman-Yao) operation processes (paper Section 2).

At most one lock is held at a time.  Every node has a right link and a
high key; a process that lands on a node no longer covering its key
(because the node half-split after the parent was read) chases right
links until it does — a *link crossing*, counted for Figure 9.

Inserts remember the descent path; after a leaf half-split the separator
is posted into the remembered parent (chasing links if the parent itself
split), and the process repeats upward.  A split of the root is completed
by atomically growing a new root.  Deletes never restructure (the paper
ignores merges for link-type trees; empty leaves simply remain).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.btree.node import InternalNode, Node
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    OperationContext,
)


def search(ctx: OperationContext, key: int) -> Generator:
    """Lehman-Yao search: R lock one node at a time, chase links."""
    started = ctx.sim.now
    leaf = yield from _read_descent(ctx, key, stack=None)
    leaf.contains(key)
    yield leaf.lock.release_cmd
    ctx.finish(OP_SEARCH, started)


def insert(ctx: OperationContext, key: int) -> Generator:
    started = ctx.sim.now
    stack: List[Node] = []
    target = yield from _read_descent(ctx, key, stack, stop_above_leaf=True)
    leaf = yield from _wlock_covering(ctx, target, key)
    yield ctx.sampler.modify(1)
    ctx.tree.apply_leaf_insert(leaf, key)
    if not ctx.tree.overflowed(leaf):
        yield leaf.lock.release_cmd
        ctx.finish(OP_INSERT, started)
        return
    yield from _split_cascade(ctx, leaf, stack)
    ctx.finish(OP_INSERT, started)


def scan(ctx: OperationContext, low: int, high: int,
         out: Optional[List[int]] = None) -> Generator:
    """Range scan over ``[low, high)`` — the B-link tree's signature
    workload beyond the paper's point operations.

    Descends to the leaf for ``low`` and walks the leaf chain holding
    one R lock at a time (crabbing right).  Keys are appended to ``out``
    if given.  Concurrent splits are harmless: a split moves keys to the
    right of the scan position, where the chain walk will find them.
    """
    started = ctx.sim.now
    node = yield from _read_descent(ctx, low, stack=None)
    while True:
        if out is not None:
            out.extend(k for k in node.keys if low <= k < high)
        done = node.high_key is None or node.high_key >= high
        successor = node.right
        yield node.lock.release_cmd
        if done or successor is None:
            break
        node = successor
        yield node.lock.acquire_read
        yield ctx.sampler.search(1)
    ctx.finish(OP_SEARCH, started)


def delete(ctx: OperationContext, key: int) -> Generator:
    """W-lock the leaf, remove the key; no restructuring (merges are
    ignored in link-type trees — empty leaves persist)."""
    started = ctx.sim.now
    target = yield from _read_descent(ctx, key, stack=None,
                                      stop_above_leaf=True)
    leaf = yield from _wlock_covering(ctx, target, key)
    yield ctx.sampler.modify(1)
    ctx.tree.apply_leaf_delete(leaf, key)
    yield leaf.lock.release_cmd
    ctx.finish(OP_DELETE, started)


# ----------------------------------------------------------------------
# Descent helpers
# ----------------------------------------------------------------------
def _read_descent(ctx: OperationContext, key: int,
                  stack: Optional[List[Node]],
                  stop_above_leaf: bool = False) -> Generator:
    """Descend one R lock at a time, chasing right links.

    Returns the leaf with its R lock *held*, or — with
    ``stop_above_leaf`` (updates, which W-lock the leaf themselves) — the
    *unlocked* leaf pointer as routed by the last internal node.  When
    ``stack`` is given the rightmost node visited at each internal level
    is appended (root first) for later parent backtracking."""
    node: Node = ctx.tree.root
    while True:
        if node.is_leaf and stop_above_leaf:
            # Single-leaf tree or routed child: caller W-locks it.
            return node
        yield node.lock.acquire_read
        yield ctx.sampler.search(node.level)
        if not node.covers(key):
            successor = node.right
            yield node.lock.release_cmd
            ctx.metrics.link_crossings += 1
            node = successor
            continue
        if node.is_leaf:
            return node
        assert isinstance(node, InternalNode)
        child = node.child_for(key)
        yield node.lock.release_cmd
        if stack is not None:
            stack.append(node)
        node = child


def _wlock_covering(ctx: OperationContext, node: Node, key: int) -> Generator:
    """W-lock ``node``, chasing right links until the locked node covers
    ``key``.  Returns the locked node."""
    while True:
        yield node.lock.acquire_write
        if node.covers(key):
            return node
        successor = node.right
        yield node.lock.release_cmd
        ctx.metrics.link_crossings += 1
        node = successor
        yield ctx.sampler.search(node.level)


def _split_cascade(ctx: OperationContext, node: Node,
                   stack: List[Node]) -> Generator:
    """Half-split ``node`` (W-locked, overflowed) and post separators
    upward until a parent absorbs one without overflowing."""
    while True:
        yield ctx.sampler.half_split(node.level)
        sibling, separator = ctx.tree.half_split(node)
        ctx.metrics.splits += 1
        at_top = ctx.tree.root is node
        yield node.lock.release_cmd
        if at_top:
            # This block runs atomically (no yields), so the root pointer
            # swing cannot race with another grower: any earlier splitter
            # of this node completed its own grow before our W lock was
            # granted, which would have made ``at_top`` False.
            ctx.tree.grow_root(node, separator, sibling)
            return
        parent = yield from _locate_parent(ctx, node.level + 1, separator,
                                           stack)
        yield ctx.sampler.parent_post(parent.level)
        assert isinstance(parent, InternalNode)
        ctx.tree.complete_split(parent, separator, sibling)
        if not ctx.tree.overflowed(parent):
            yield parent.lock.release_cmd
            return
        node = parent


def _locate_parent(ctx: OperationContext, level: int, separator: int,
                   stack: List[Node]) -> Generator:
    """W-lock the node at ``level`` that should receive ``separator``.

    Normally the remembered stack entry (plus link chasing).  When the
    stack is exhausted — the split climbed past where the root was when
    the descent started — re-descend from the current root."""
    while stack and stack[-1].level < level:
        stack.pop()  # stale entries below the target (shouldn't happen)
    if stack and stack[-1].level == level:
        remembered = stack.pop()
        parent = yield from _wlock_covering(ctx, remembered, separator)
        return parent
    # Fresh partial descent from the current root down to `level`.
    node: Node = ctx.tree.root
    while node.level > level:
        yield node.lock.acquire_read
        yield ctx.sampler.search(node.level)
        if not node.covers(separator):
            successor = node.right
            yield node.lock.release_cmd
            ctx.metrics.link_crossings += 1
            node = successor
            continue
        assert isinstance(node, InternalNode)
        child = node.child_for(separator)
        yield node.lock.release_cmd
        node = child
    parent = yield from _wlock_covering(ctx, node, separator)
    return parent
