"""Closed-system simulation: a fixed multiprogramming level.

The paper's introduction frames the problem in closed-system terms — a
transaction-processing system with "a multiprocessing level around 100"
— while its analysis uses an open arrival stream (Section 3.1 makes the
distinction explicit, contrasting with the closed analyses of Bayer &
Schkolnick and Ellis).  This module adds the closed mode: a fixed number
of *terminal* processes, each issuing one B-tree operation at a time and
(optionally) thinking between operations.

Running the same algorithms in both modes is the textbook consistency
check: a closed system with multiprogramming level N drives the B-tree
at its throughput limit as N grows, and that limit must match Theorem
2's open-system maximum throughput.
"""

from __future__ import annotations

import random

from repro.algorithms import get_algorithm
from repro.btree.builder import build_tree
from repro.btree.node import Node
from repro.des.engine import Simulator
from repro.des.rwlock import RWLock
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig
from repro.simulator.costs import ServiceTimeSampler
from repro.simulator.driver import _GatedObserver
from repro.simulator.metrics import MetricsCollector, SimulationResult, summarize
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    OperationContext,
    pick_resident_key,
)
from repro.workload.runtime import WorkloadRuntime

#: Interval between root-utilization samples (as in the open driver).
_ROOT_SAMPLE_INTERVAL = 1.0


def run_closed_simulation(config: SimulationConfig,
                          multiprogramming_level: int,
                          think_time: float = 0.0, budget=None):
    """Run ``config``'s algorithm under a fixed population of
    ``multiprogramming_level`` concurrent operations.

    ``config.arrival_rate`` is ignored (the population is the load
    control); ``think_time`` is the mean exponential pause a terminal
    takes between operations (0 = back-to-back).  The returned
    :class:`~repro.simulator.metrics.SimulationResult` reports the
    achieved throughput — the closed system's primary output.

    ``budget`` (a :class:`~repro.resilience.TaskBudget`) bounds the run
    as in :func:`~repro.simulator.driver.run_simulation`: a tripped
    budget returns a :class:`~repro.resilience.TruncatedResult` with
    the partial metrics flagged ``overflowed``.
    """
    if multiprogramming_level < 1:
        raise ConfigurationError(
            f"multiprogramming level must be >= 1, got "
            f"{multiprogramming_level}")
    if think_time < 0:
        raise ConfigurationError(f"think_time must be >= 0, got {think_time}")

    module = get_algorithm(config.algorithm).closed_module
    seed_root = random.Random(config.seed)
    rng_build = random.Random(seed_root.randrange(2 ** 63))
    rng_keys = random.Random(seed_root.randrange(2 ** 63))
    rng_service = random.Random(seed_root.randrange(2 ** 63))
    rng_think = random.Random(seed_root.randrange(2 ** 63))

    metrics = MetricsCollector(seed=config.seed)

    def attach_lock(node: Node) -> None:
        node.lock = RWLock(name=f"n{node.node_id}",
                           observer=_GatedObserver(metrics, node.level))

    tree = build_tree(
        config.n_items, order=config.order,
        insert_fraction=config.mix.insert_share or 1.0,
        merge_policy=config.merge_policy, key_space=config.key_space,
        rng=rng_build, on_new_node=attach_lock,
    )
    sim = Simulator()
    sampler = ServiceTimeSampler(config.costs, tree, rng_service)
    ctx = OperationContext(sim, tree, sampler, metrics, rng_keys,
                           recovery=config.recovery,
                           t_trans=config.t_trans)
    warmup = config.warmup_operations
    target = config.n_operations
    completions = [0]

    # Key distribution and (hoisted) mix thresholds come from the
    # workload layer.  The arrival process is ignored — the fixed
    # population is the load control in a closed system — and
    # transaction envelopes are an open-system construct.
    runtime = WorkloadRuntime(config, rng_keys)
    if runtime.transaction_size != 1:
        raise ConfigurationError(
            "transaction envelopes are not modelled in the closed "
            "system (each terminal already serialises its operations); "
            "use the open simulator for TransactionSpec(size > 1)")
    picker = runtime.picker

    def draw_operation() -> tuple:
        op_name = runtime.draw_operation(rng_keys)
        if op_name == OP_DELETE:
            return OP_DELETE, pick_resident_key(tree, rng_keys,
                                                config.key_space,
                                                probe=picker.pick(sim.now))
        return op_name, picker.pick(sim.now)

    def terminal():
        while True:
            if think_time > 0.0:
                yield rng_think.expovariate(1.0 / think_time)
            op_name, key = draw_operation()
            yield from getattr(module, op_name)(ctx, key)
            completions[0] += 1
            if completions[0] == warmup and not metrics.measuring:
                metrics.measuring = True
                metrics.measure_start_time = sim.now

    if warmup == 0:
        metrics.measuring = True
        metrics.measure_start_time = 0.0

    def root_sampler():
        while True:
            yield _ROOT_SAMPLE_INTERVAL
            lock = tree.root.lock
            present = lock.writer is not None or lock.writer_waiting()
            metrics.record_root_sample(present,
                                       queue_length=lock.queue_length)

    for index in range(multiprogramming_level):
        sim.spawn(terminal(), name=f"terminal-{index}",
                  delay=index * 1e-6)  # stagger identical start times
    sim.spawn(root_sampler(), name="root-sampler")
    metrics.note_population(multiprogramming_level)

    def done() -> bool:
        return metrics.measured_operations >= target

    guard = None
    if budget is None:
        sim.run(stop_when=done)
    else:
        from repro.resilience.budget import BudgetGuard
        guard = BudgetGuard(budget)
        # exceeded() runs first so every executed event is counted.
        sim.run(stop_when=lambda: guard.exceeded() or done())
    metrics.measure_end_time = sim.now

    tripped = guard is not None and guard.tripped
    result = summarize(
        metrics, algorithm=config.algorithm,
        arrival_rate=float("nan"),  # no open arrival stream
        seed=config.seed, overflowed=tripped,
        tree_size=len(tree), tree_height=tree.height,
    )
    if tripped:
        from repro.resilience.budget import TruncatedResult
        return TruncatedResult(result=result, reason=guard.reason,
                               events_executed=guard.events,
                               wall_seconds=guard.elapsed())
    return result
