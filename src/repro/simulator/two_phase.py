"""Two-Phase Locking operation processes.

The restrictive baseline the paper's introduction warns about (and whose
full analysis the conclusions promise): no lock is released before the
operation has acquired every lock it needs, so the entire root-to-leaf
path stays locked until the operation completes.  Locks are acquired
top-down, which keeps the schedule deadlock-free.
"""

from __future__ import annotations

from typing import Generator, List

from repro.btree.node import LeafNode, Node
from repro.des.process import READ, WRITE
from repro.simulator import lock_coupling as naive
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    OperationContext,
    acquire_valid_root,
    release_all,
)


def search(ctx: OperationContext, key: int) -> Generator:
    """R-lock the whole path, search the leaf, then release everything."""
    started = ctx.sim.now
    locked = yield from _full_descent(ctx, key, READ)
    yield ctx.sampler.search(1)
    leaf = locked[-1]
    assert isinstance(leaf, LeafNode)
    leaf.contains(key)
    yield from release_all(locked)
    ctx.finish(OP_SEARCH, started)


def insert(ctx: OperationContext, key: int) -> Generator:
    started = ctx.sim.now
    locked = yield from _full_descent(ctx, key, WRITE)
    yield from naive._apply_insert(ctx, key, locked)
    yield from release_all(locked)
    ctx.finish(OP_INSERT, started)


def delete(ctx: OperationContext, key: int) -> Generator:
    started = ctx.sim.now
    locked = yield from _full_descent(ctx, key, WRITE)
    yield from naive._apply_delete(ctx, key, locked)
    yield from release_all(locked)
    ctx.finish(OP_DELETE, started)


def _full_descent(ctx: OperationContext, key: int,
                  mode: str) -> Generator:
    """Lock the whole root-to-leaf path in ``mode``, releasing nothing."""
    read = mode == READ
    while True:
        node = yield from acquire_valid_root(ctx, mode)
        locked: List[Node] = [node]
        restart = False
        while not node.is_leaf:
            yield ctx.sampler.search(node.level)
            child = node.child_for(key)
            lock = child.lock
            yield lock.acquire_read if read else lock.acquire_write
            if child.dead:  # pragma: no cover - path fully locked
                yield from release_all(locked)
                yield lock.release_cmd
                ctx.metrics.restarts += 1
                restart = True
                break
            locked.append(child)
            node = child
        if not restart:
            return locked
