"""Simulation configuration (mirrors paper Section 5.3)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.algorithms.names import DEFAULT_ALGORITHM
from repro.btree.policies import MERGE_AT_EMPTY, MergePolicy
from repro.errors import ConfigurationError
from repro.model.params import PAPER_MIX, CostModel, OperationMix
from repro.workload.spec import WorkloadSpec

#: Default key universe; large enough that random inserts rarely collide.
DEFAULT_KEY_SPACE = 1 << 30


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulator run.

    Defaults reproduce the paper's experiment: a ~40,000-item tree of
    order 13 (5 levels, root fanout ~6), two in-memory levels, disk cost
    5, mix (.3, .5, .2), 10,000 measured concurrent operations.
    """

    #: Which concurrency-control algorithm to run — any registered name
    #: (see ``repro.algorithms`` / ``btree-perf list-algorithms``).
    algorithm: str = DEFAULT_ALGORITHM
    #: Poisson arrival rate of concurrent operations (1 / root-search units).
    arrival_rate: float = 0.1
    #: Maximum entries per node (the paper's maximum node size N).
    order: int = 13
    #: Items inserted during the construction phase.
    n_items: int = 40_000
    mix: OperationMix = PAPER_MIX
    costs: CostModel = field(default_factory=CostModel)
    merge_policy: MergePolicy = MERGE_AT_EMPTY
    #: Measured concurrent operations (after warm-up).
    n_operations: int = 10_000
    #: Operations run before measurement starts.
    warmup_operations: int = 500
    #: The paper's "space allocated for concurrent operations": the run
    #: aborts (saturation) if more operations than this are in flight.
    max_population: int = 2_000
    key_space: int = DEFAULT_KEY_SPACE
    seed: int = 0
    #: Recovery policy name: "no-recovery", "leaf-only-recovery" or
    #: "naive-recovery" (applies to algorithms registered with
    #: ``supports_recovery``).
    recovery: str = "no-recovery"
    #: Expected remaining transaction time for recovery lock retention.
    t_trans: float = 100.0
    #: Mean time between background compaction sweeps (Sagiv-style
    #: compression of empty leaves); None disables the compactor.
    #: Only meaningful for link-style algorithms (registered with
    #: ``supports_compaction``), the ones that never merge inline.
    compaction_interval: Optional[float] = None
    #: Key-selection distribution: "uniform" (the paper's workload) or
    #: "hotspot" (a contiguous hot key range, concentrating contention
    #: on one subtree).
    key_distribution: str = "uniform"
    #: Hotspot parameters (used when key_distribution == "hotspot"):
    #: ``hot_probability`` of the accesses target the first
    #: ``hot_fraction`` of the key space (default 80/20).
    hot_fraction: float = 0.2
    hot_probability: float = 0.8
    #: Full workload description (arrival process, key distribution,
    #: transaction envelope) — see :mod:`repro.workload` and
    #: ``docs/workloads.md``.  ``None`` (and the default
    #: ``WorkloadSpec()``) reproduces the legacy stationary-Poisson /
    #: ``key_distribution`` behaviour bit-identically and is omitted
    #: from result-cache keys; a non-default spec supersedes the legacy
    #: ``key_distribution`` fields and is content-hashed into the key.
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        # Local import: repro.algorithms may still be initialising when
        # this module loads, but is complete by instantiation time.
        from repro.algorithms import get_algorithm
        spec = get_algorithm(self.algorithm)  # raises with known names
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if self.n_operations < 1:
            raise ConfigurationError("n_operations must be >= 1")
        if self.warmup_operations < 0:
            raise ConfigurationError("warmup_operations must be >= 0")
        if self.max_population < 1:
            raise ConfigurationError("max_population must be >= 1")
        if self.recovery not in ("no-recovery", "leaf-only-recovery",
                                 "naive-recovery"):
            raise ConfigurationError(f"unknown recovery {self.recovery!r}")
        if self.recovery != "no-recovery" and not spec.supports_recovery:
            raise ConfigurationError(
                f"recovery policies are not modelled for {spec.label}")
        if self.compaction_interval is not None:
            if not spec.supports_compaction:
                raise ConfigurationError(
                    "background compaction applies to link trees "
                    "(the other algorithms merge inline)")
            if self.compaction_interval <= 0:
                raise ConfigurationError(
                    "compaction_interval must be positive")
        if self.key_distribution not in ("uniform", "hotspot"):
            raise ConfigurationError(
                f"unknown key distribution {self.key_distribution!r}; "
                "expected 'uniform' or 'hotspot'")
        if self.workload is not None:
            if not isinstance(self.workload, WorkloadSpec):
                raise ConfigurationError(
                    f"workload must be a WorkloadSpec, got "
                    f"{type(self.workload).__name__}")
            if self.key_distribution != "uniform":
                raise ConfigurationError(
                    "workload and key_distribution are mutually "
                    "exclusive: express the skew through the workload's "
                    "key spec (e.g. HotspotKeysSpec)")
        if self.merge_policy is not MERGE_AT_EMPTY:
            raise ConfigurationError(
                "the concurrent simulator requires merge-at-empty (the "
                "paper's setting); merge-at-half is supported sequentially")

    def with_rate(self, arrival_rate: float) -> "SimulationConfig":
        return replace(self, arrival_rate=arrival_rate)

    def with_seed(self, seed: int) -> "SimulationConfig":
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> "SimulationConfig":
        """A cheaper copy for benchmarks: scales the measured-operation
        count and warm-up down by ``factor`` (at least 100 ops remain)."""
        return replace(
            self,
            n_operations=max(100, int(self.n_operations * factor)),
            warmup_operations=max(20, int(self.warmup_operations * factor)),
        )
