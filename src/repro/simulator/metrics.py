"""Metrics collected during a simulation run.

The paper's simulator "collects a variety of statistics, including the
operation response times and the lock waiting times", plus
algorithm-specific counters (link crossings for the Link-type algorithm,
redo descents for Optimistic Descent).  :class:`MetricsCollector` gathers
all of them; :class:`SimulationResult` is the frozen summary a run
returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.des.process import READ
from repro.des.stats import ReservoirSample, RunningStats


class LevelWaitObserver:
    """Per-level lock-wait accumulator, installed as the RWLock observer
    of every node at the level."""

    __slots__ = ("read_waits", "write_waits")

    def __init__(self) -> None:
        self.read_waits = RunningStats()
        self.write_waits = RunningStats()

    def on_wait(self, mode: str, wait: float) -> None:
        if mode == READ:
            self.read_waits.add(wait)
        else:
            self.write_waits.add(wait)


def _reservoir_seed(run_seed: int, index: int) -> int:
    """Derive a distinct, process-stable reservoir seed per operation
    type from the run seed.

    Two runs with different seeds must make different reservoir
    sampling decisions (a fixed per-operation seed would tie every
    config executed in one process to the same decisions); the
    splitmix-style multiplier keeps consecutive run seeds decorrelated.
    """
    return (run_seed * 0x9E3779B97F4A7C15 + index + 1) % (2 ** 63)


class MetricsCollector:
    """Mutable statistics gathered while the simulation runs.

    ``seed`` is the run seed; the percentile reservoirs derive their
    sampling streams from it so replications sample independently.
    """

    def __init__(self, seed: int = 0) -> None:
        #: Response-time accumulators keyed by "search"/"insert"/"delete".
        self.response: Dict[str, RunningStats] = {
            "search": RunningStats(),
            "insert": RunningStats(),
            "delete": RunningStats(),
        }
        #: Reservoir samples for latency percentiles, per operation type.
        self.response_samples: Dict[str, ReservoirSample] = {
            name: ReservoirSample(seed=_reservoir_seed(seed, i))
            for i, name in enumerate(("search", "insert", "delete"))
        }
        #: Lock-wait observers keyed by level (created on demand).
        self.level_waits: Dict[int, LevelWaitObserver] = {}
        self.measured_operations = 0
        self.link_crossings = 0
        self.redo_descents = 0
        self.restarts = 0
        self.splits = 0
        self.leaf_removals = 0
        #: Empty leaves reclaimed by the background compactor (link trees).
        self.compactions = 0
        #: Root writer-presence sampling (Figure 10's rho_w).
        self.root_samples = 0
        self.root_writer_present_samples = 0
        #: Root lock queue-length sampling (Little's-law cross-check).
        self.root_queue_length_total = 0
        self.measure_start_time: Optional[float] = None
        self.measure_end_time: Optional[float] = None
        self.peak_population = 0
        self.measuring = False

    def observer_for_level(self, level: int) -> LevelWaitObserver:
        observer = self.level_waits.get(level)
        if observer is None:
            observer = LevelWaitObserver()
            self.level_waits[level] = observer
        return observer

    def record_response(self, operation: str, elapsed: float) -> None:
        if self.measuring:
            self.response[operation].add(elapsed)
            self.response_samples[operation].add(elapsed)
            self.measured_operations += 1

    def record_root_sample(self, writer_present: bool,
                           queue_length: int = 0) -> None:
        if self.measuring:
            self.root_samples += 1
            if writer_present:
                self.root_writer_present_samples += 1
            self.root_queue_length_total += queue_length

    def note_population(self, population: int) -> None:
        if population > self.peak_population:
            self.peak_population = population


@dataclass(frozen=True)
class SimulationResult:
    """Frozen summary of one run."""

    algorithm: str
    arrival_rate: float
    seed: int
    #: True when the run hit the concurrent-operation allocation, i.e.
    #: the offered load was unsustainable (the paper's "crash").
    overflowed: bool
    measured_operations: int
    elapsed_time: float
    #: Mean response time per operation type (NaN when none completed).
    mean_response: Dict[str, float]
    #: Latency percentiles per operation type:
    #: ``{"search": {"p50": ..., "p90": ..., "p99": ...}, ...}``.
    response_percentiles: Dict[str, Dict[str, float]]
    #: Pooled mean response over all measured operations.
    overall_mean_response: float
    #: Mean lock wait per level and mode: ``{level: (read, write)}``.
    mean_lock_waits: Dict[int, tuple]
    #: Sampled probability a writer holds/waits on the root lock.
    root_writer_utilization: float
    #: Sampled mean number of requests queued at the root lock; by
    #: Little's law this approximates (root arrival rate) x (root wait).
    root_mean_queue_length: float
    throughput: float
    link_crossings: int
    redo_descents: int
    restarts: int
    splits: int
    leaf_removals: int
    compactions: int
    peak_population: int
    final_tree_size: int
    final_height: int

    def response(self, operation: str) -> float:
        """Mean response time of ``operation`` (+inf if the run
        overflowed before measuring it)."""
        value = self.mean_response[operation]
        if math.isnan(value) and self.overflowed:
            return math.inf
        return value


def summarize(collector: MetricsCollector, *, algorithm: str,
              arrival_rate: float, seed: int, overflowed: bool,
              tree_size: int, tree_height: int) -> SimulationResult:
    """Freeze a collector into a :class:`SimulationResult`."""
    start = collector.measure_start_time or 0.0
    end = collector.measure_end_time if collector.measure_end_time is not None \
        else start
    elapsed = max(end - start, 0.0)
    per_op = {name: acc.mean for name, acc in collector.response.items()}
    percentiles = {name: sample.quantile_summary()
                   for name, sample in collector.response_samples.items()}
    pooled = RunningStats()
    for acc in collector.response.values():
        pooled.merge(acc)
    waits = {
        level: (obs.read_waits.mean, obs.write_waits.mean)
        for level, obs in sorted(collector.level_waits.items())
    }
    rho_root = (collector.root_writer_present_samples / collector.root_samples
                if collector.root_samples else math.nan)
    root_queue = (collector.root_queue_length_total / collector.root_samples
                  if collector.root_samples else math.nan)
    throughput = (collector.measured_operations / elapsed
                  if elapsed > 0 else math.nan)
    return SimulationResult(
        algorithm=algorithm,
        arrival_rate=arrival_rate,
        seed=seed,
        overflowed=overflowed,
        measured_operations=collector.measured_operations,
        elapsed_time=elapsed,
        mean_response=per_op,
        response_percentiles=percentiles,
        overall_mean_response=pooled.mean,
        mean_lock_waits=waits,
        root_writer_utilization=rho_root,
        root_mean_queue_length=root_queue,
        throughput=throughput,
        link_crossings=collector.link_crossings,
        redo_descents=collector.redo_descents,
        restarts=collector.restarts,
        splits=collector.splits,
        leaf_removals=collector.leaf_removals,
        compactions=collector.compactions,
        peak_population=collector.peak_population,
        final_tree_size=tree_size,
        final_height=tree_height,
    )
