"""Naive Lock-coupling operation processes (paper Section 2).

Searches R-lock-couple from the root to the leaf.  Updates W-lock-couple
and release all ancestor locks if and only if the child is safe for the
operation, so when the leaf is reached every node that restructuring can
touch is already W-locked; the restructure then proceeds without
interfering with other operations.
"""

from __future__ import annotations

from typing import Generator, List

from repro.btree.node import LeafNode, Node
from repro.des.process import WRITE
from repro.simulator.operations import (
    OP_DELETE,
    OP_INSERT,
    OP_SEARCH,
    OperationContext,
    acquire_valid_root,
    coupled_read_descent,
    release_all,
)


def search(ctx: OperationContext, key: int) -> Generator:
    """R-lock-coupled membership search."""
    started = ctx.sim.now
    leaf = yield from coupled_read_descent(ctx, key, stop_level=1)
    yield ctx.sampler.search(1)
    assert isinstance(leaf, LeafNode)
    leaf.contains(key)
    yield leaf.lock.release_cmd
    ctx.finish(OP_SEARCH, started)


def insert(ctx: OperationContext, key: int) -> Generator:
    """W-lock-coupled insert, splitting along the retained unsafe path."""
    started = ctx.sim.now
    locked = yield from _write_descent(ctx, key, for_insert=True)
    yield from _apply_insert(ctx, key, locked)
    yield from release_all(locked)
    ctx.finish(OP_INSERT, started)


def delete(ctx: OperationContext, key: int) -> Generator:
    """W-lock-coupled delete, removing emptied nodes (merge-at-empty)."""
    started = ctx.sim.now
    locked = yield from _write_descent(ctx, key, for_insert=False)
    yield from _apply_delete(ctx, key, locked)
    yield from release_all(locked)
    ctx.finish(OP_DELETE, started)


# ----------------------------------------------------------------------
# Building blocks (shared with Optimistic Descent's redo pass)
# ----------------------------------------------------------------------
def _write_descent(ctx: OperationContext, key: int, for_insert: bool,
                   release_early: bool = True) -> Generator:
    """W-lock-coupled descent.  Returns the list of still-locked nodes:
    the deepest safe ancestor followed by the contiguous unsafe path down
    to (and including) the leaf.

    ``release_early=False`` disables the release of ancestor locks on
    safe children: every W lock placed stays held (the strict
    two-phase-locking behaviour of the Naive recovery policy, paper
    Section 7)."""
    while True:
        node = yield from acquire_valid_root(ctx, WRITE)
        locked: List[Node] = [node]
        restart = False
        while not node.is_leaf:
            yield ctx.sampler.search(node.level)
            child = node.child_for(key)
            yield child.lock.acquire_write
            if child.dead:  # pragma: no cover - coupling pins children
                yield from release_all(locked)
                yield child.lock.release_cmd
                ctx.metrics.restarts += 1
                restart = True
                break
            safe = (ctx.tree.is_insert_safe(child) if for_insert
                    else ctx.tree.is_delete_safe(child))
            if safe and release_early:
                yield from release_all(locked)
                locked = [child]
            else:
                locked.append(child)
            node = child
        if not restart:
            return locked


def _apply_insert(ctx: OperationContext, key: int,
                  locked: List[Node]) -> Generator:
    """Leaf modify plus the split cascade along the locked path."""
    leaf = locked[-1]
    assert isinstance(leaf, LeafNode)
    yield ctx.sampler.modify(1)
    ctx.tree.apply_leaf_insert(leaf, key)
    if not ctx.tree.overflowed(leaf):
        return
    # Charge the split work level by level before restructuring; the
    # whole affected path is W-locked, so the order cannot race.
    will_receive_router = False
    for node in reversed(locked):
        entries = node.n_entries() + (1 if will_receive_router else 0)
        if entries <= ctx.tree.order:
            break
        yield ctx.sampler.split(node.level)
        will_receive_router = True
    ctx.metrics.splits += ctx.tree.split_path(locked)


def _apply_delete(ctx: OperationContext, key: int,
                  locked: List[Node]) -> Generator:
    """Leaf modify plus merge-at-empty removal along the locked path."""
    leaf = locked[-1]
    assert isinstance(leaf, LeafNode)
    yield ctx.sampler.modify(1)
    ctx.tree.apply_leaf_delete(leaf, key)
    if leaf.n_entries() > 0 or leaf is ctx.tree.root:
        return
    removed_below = False
    for node in reversed(locked):
        if node is locked[0]:
            break  # the safe ancestor absorbs the removal
        entries = node.n_entries() - (1 if removed_below else 0)
        if entries > 0:
            break
        yield ctx.sampler.merge(node.level)
        removed_below = True
    ctx.metrics.leaf_removals += ctx.tree.remove_empty_leaf(locked)
