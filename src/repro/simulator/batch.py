"""Lane-multiplexed batch execution of independent replications.

:func:`run_replication_batch` advances N independent simulator runs
("lanes") inside one process in **frontier-synchronized rounds**: each
round picks a global time frontier just past the earliest pending event
across all live lanes, then lets every lane drain its events up to that
frontier (``Simulator.run(until=frontier)``).  Because replications
share no state — every RNG stream derives from the lane's own
``config.seed`` during :func:`~repro.simulator.driver._prepare_run` —
any interleaving of the lanes executes the bit-identical per-lane event
sequence, so each lane's :class:`~repro.simulator.metrics\
.SimulationResult` equals the scalar :func:`~repro.simulator.driver\
.run_simulation` output *exactly* (the equivalence suite in
``tests/test_batch_replications.py`` enforces this for every registered
algorithm).

This is the scheduling half of the vectorization story: it gives the
sweep layer one schedulable unit per seed *batch* while preserving
per-seed results and cache keys.  The arithmetic half — advancing many
replications per interpreted numpy dispatch — lives in
:mod:`repro.des.vector` (the lock-contention kernel) and
:mod:`repro.des.vector_btree` (full search/insert descents);
``docs/performance.md`` ("Vectorized batch-replication kernel") covers
when each layer wins.  An algorithm spec's ``vector_tier``
(:data:`~repro.algorithms.spec.VECTOR_TIERS`) records which layers
cover it: ``"lock"`` and above opt into this driver, ``"full"``
additionally marks its descent family as vector-kernel covered.

Fallback contract: callers must route a task through the scalar path
instead when the run needs machinery the batch driver does not carry —
per-run budgets (their wall-clock share would differ under
multiplexing), telemetry or tracing (their samplers are per-simulator),
or an algorithm whose spec is not ``vector_capable`` (tier
``"none"``).  :func:`batch_capable` encodes the spec check; the
executor (:func:`repro.parallel.run_batch`) applies all of them.

Batch-scheduling observability: pass an
:class:`~repro.obs.instruments.Instrumentation` to
:func:`run_replication_batch` to record ``batch.dispatches`` (frontier
rounds), ``batch.lane_rounds`` (live lanes summed over rounds —
``lane_rounds / dispatches`` is the mean batch occupancy, whose decay
as lanes retire is what erodes wide-batch speedup) and
``batch.lanes_retired``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms import get_algorithm
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import _finalize_run, _prepare_run
from repro.simulator.metrics import SimulationResult

#: Frontier growth per round: the next frontier sits just past the
#: earliest pending event, stretched geometrically so rounds amortize
#: (the schedule only affects wall clock, never results).
_FRONTIER_STRETCH = 1.25
_FRONTIER_PAD = 1.0


def batch_capable(config: SimulationConfig) -> bool:
    """True when ``config``'s algorithm opted into the batch driver
    (its registered spec sets ``vector_capable``)."""
    return bool(get_algorithm(config.algorithm).vector_capable)


def run_replication_batch(configs: Sequence[SimulationConfig],
                          instruments=None,
                          ) -> List[SimulationResult]:
    """Run every config to completion in one lane-multiplexed pass.

    Results come back in ``configs`` order and are bit-identical to
    ``[run_simulation(c) for c in configs]``.  Raises
    :class:`~repro.errors.ConfigurationError` for an algorithm that is
    not ``vector_capable`` — the caller was supposed to fall back.

    ``instruments`` (an
    :class:`~repro.obs.instruments.Instrumentation`, default: none)
    receives the per-batch scheduling counters described in the module
    docstring; counting never affects results.
    """
    for config in configs:
        if not batch_capable(config):
            raise ConfigurationError(
                f"algorithm {config.algorithm!r} is not vector-capable; "
                "run it through the scalar path")
    if instruments is None:
        from repro.obs.instruments import NULL_INSTRUMENTS
        instruments = NULL_INSTRUMENTS
    dispatches = instruments.counter("batch.dispatches")
    lane_rounds = instruments.counter("batch.lane_rounds")
    retired = instruments.counter("batch.lanes_retired")
    runs = [_prepare_run(config) for config in configs]
    results: List[Optional[SimulationResult]] = [None] * len(runs)
    live = list(range(len(runs)))
    while live:
        frontier = _next_frontier(runs, live)
        dispatches.inc()
        lane_rounds.inc(len(live))
        still_live: List[int] = []
        for index in live:
            run = runs[index]
            next_time = run.sim.next_event_time()
            if next_time is not None and next_time <= frontier:
                run.sim.run(until=frontier, stop_when=run.stop_when)
            # Re-read rather than trusting the slice: the lane may have
            # finished mid-slice (stop predicate) or drained its heap.
            if run.finished() or run.sim.next_event_time() is None:
                results[index] = _finalize_run(run)
                retired.inc()
            else:
                still_live.append(index)
        live = still_live
    return results  # type: ignore[return-value]


def _next_frontier(runs, live: Sequence[int]) -> float:
    """A frontier guaranteed to cover at least one pending event."""
    earliest = None
    for index in live:
        next_time = runs[index].sim.next_event_time()
        if next_time is not None and (earliest is None
                                      or next_time < earliest):
            earliest = next_time
    if earliest is None:
        # No live lane has events; finalize them all this round.
        return 0.0
    return earliest * _FRONTIER_STRETCH + _FRONTIER_PAD
