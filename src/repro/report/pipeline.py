"""The one-command figure/report pipeline.

:func:`generate_figures` regenerates any subset of the registered
figures (default: all of them), renders each as SVG (+PNG when
matplotlib is installed) with the publication theme, writes the NDJSON
data sidecar, and emits one validation report (markdown + JSON) whose
model-vs-simulation error tables are checked against the registry's
thresholds.

The run is **checkpointed and resumable**: a
:class:`~repro.resilience.SweepJournal` at the output directory records
every completed figure's table (keyed by figure id, scale, simulate
flag and the simulator's :data:`~repro.parallel.cache.CODE_SALT`), so a
killed run re-invoked with ``resume=True`` serves finished figures from
the journal and only computes the remainder.  Below the figure level,
the sweeps inside each figure fan out through :mod:`repro.parallel`
(ambient ``execution(jobs=..., cache=...)`` context) and hit the
on-disk :class:`~repro.parallel.ResultCache`, so even a figure that was
mid-flight when the run died resumes from its cached simulation points.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.experiments.report import format_table
from repro.parallel.cache import CODE_SALT
from repro.report.registry import FIGURES, FigureSpec, get_figure
from repro.report.sidecar import write_sidecar
from repro.report.svg import render_svg
from repro.report.theme import PUBLICATION, Theme
from repro.report.validation import (
    ReproductionReport,
    build_report,
    dumps_report,
    report_to_markdown,
)
from repro.resilience import SweepJournal

#: Image formats the pipeline can emit (sidecars are always written).
KNOWN_FORMATS = ("svg", "png")

#: Default name of the figure-level checkpoint journal.
JOURNAL_NAME = "figures-journal.ndjson"


@dataclass
class FigureOutput:
    """One generated figure's artifacts."""

    figure_id: str
    table: ExperimentTable
    #: format -> written path ("ndjson" is always present).
    paths: Dict[str, Path] = field(default_factory=dict)
    #: True when the table was served from the resume journal.
    resumed: bool = False
    seconds: float = 0.0


@dataclass
class PipelineResult:
    """Everything one :func:`generate_figures` run produced."""

    out_dir: Path
    figures: List[FigureOutput]
    report: ReproductionReport
    report_json: Path
    report_markdown: Path
    tables_text: Path
    journal_path: Path

    @property
    def passed(self) -> bool:
        return self.report.passed


def figure_key(figure_id: str, scale: float,
               simulate: Optional[bool]) -> str:
    """Content key pinning one figure run for journal resume.

    Includes the simulator's code salt so a journal written by a build
    whose simulation results differ is refused rather than replayed.
    """
    blob = json.dumps({"figure": figure_id, "scale": scale,
                       "simulate": simulate, "salt": CODE_SALT},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def resolve_formats(formats: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """The image formats to emit: the explicit request (strict — asking
    for PNG without matplotlib is an error), or SVG plus PNG-when-
    available by default."""
    from repro.experiments.plot import matplotlib_available

    if formats is None:
        return ("svg", "png") if matplotlib_available() else ("svg",)
    resolved = []
    for name in formats:
        name = name.strip().lower()
        if not name:
            continue
        if name == "ndjson":
            continue  # sidecars are unconditional
        if name not in KNOWN_FORMATS:
            raise ConfigurationError(
                f"unknown figure format {name!r}; known: "
                f"{', '.join(KNOWN_FORMATS)} (ndjson sidecars are always "
                f"written)")
        if name == "png" and not matplotlib_available():
            raise ConfigurationError(
                "png output needs matplotlib (pip install "
                "'repro[figures]'); svg and ndjson are dependency-free")
        if name not in resolved:
            resolved.append(name)
    return tuple(resolved)


def _run_figure(spec: FigureSpec, scale: float,
                simulate: Optional[bool]) -> ExperimentTable:
    """Regenerate one figure's table (module-level so tests can stub
    it to assert resume semantics)."""
    return spec.run(scale=scale, simulate=simulate)


def _render(spec: FigureSpec, table: ExperimentTable, out_dir: Path,
            formats: Tuple[str, ...], theme: Theme) -> Dict[str, Path]:
    paths: Dict[str, Path] = {}
    paths["ndjson"] = write_sidecar(table, out_dir / f"{spec.figure_id}.ndjson")
    columns = None
    if spec.plot_columns is not None:
        columns = [c for c in spec.plot_columns if c in table.columns]
    if "svg" in formats:
        svg_path = out_dir / f"{spec.figure_id}.svg"
        svg_path.write_text(render_svg(table, y_columns=columns,
                                       theme=theme), encoding="utf-8")
        paths["svg"] = svg_path
    if "png" in formats:
        from repro.experiments.plot import save_figure_image

        paths["png"] = save_figure_image(
            table, out_dir / f"{spec.figure_id}.png",
            y_columns=columns, theme=theme)
    return paths


def generate_figures(figure_ids: Optional[Sequence[str]] = None,
                     scale: float = 1.0,
                     out_dir="figures",
                     formats: Optional[Sequence[str]] = None,
                     simulate: Optional[bool] = None,
                     resume: bool = False,
                     journal_path=None,
                     theme: Theme = PUBLICATION,
                     threshold_scale: float = 1.0,
                     include_claims: bool = True,
                     log: Optional[Callable[[str], None]] = None,
                     ) -> PipelineResult:
    """Run the full figure/report pipeline.

    ``figure_ids`` defaults to every registered figure, in registry
    order.  ``simulate=None`` keeps each figure's own default (the
    paper's simulated figures simulate, the analytical ones don't);
    ``simulate=False`` forces analytical-only output everywhere.
    ``threshold_scale`` multiplies every validation threshold
    (tighten with values < 1, loosen with > 1).

    Returns a :class:`PipelineResult`; callers that need a CI gate
    check ``result.passed`` (the CLI maps a breach to a nonzero exit).
    """
    ids = list(figure_ids) if figure_ids else list(FIGURES)
    specs = [get_figure(figure_id) for figure_id in ids]
    if threshold_scale <= 0:
        raise ConfigurationError(
            f"threshold scale must be > 0, got {threshold_scale}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    emit = log if log is not None else (lambda message: None)
    image_formats = resolve_formats(formats)

    keys = [figure_key(spec.figure_id, scale, simulate) for spec in specs]
    journal_file = Path(journal_path) if journal_path is not None \
        else out / JOURNAL_NAME
    outputs: List[FigureOutput] = []
    with SweepJournal(journal_file, keys, resume=resume) as journal:
        for index, spec in enumerate(specs):
            started = time.perf_counter()
            replayed = journal.completed.get(index)
            resumed = isinstance(replayed, ExperimentTable)
            if resumed:
                table = replayed
            else:
                table = _run_figure(spec, scale, simulate)
                journal.record_completed(index, attempts=1, result=table)
            paths = _render(spec, table, out, image_formats, theme)
            seconds = time.perf_counter() - started
            outputs.append(FigureOutput(spec.figure_id, table, paths,
                                        resumed=resumed, seconds=seconds))
            origin = "journal" if resumed else "computed"
            rendered = "+".join(sorted(paths))
            emit(f"[{index + 1}/{len(specs)}] {spec.figure_id} "
                 f"{origin} in {seconds:.1f}s -> {rendered}")
        report = build_report(
            [(spec, output.table) for spec, output in zip(specs, outputs)],
            scale=scale, threshold_scale=threshold_scale,
            include_claims=include_claims)
        journal.close(summary={
            "figures": len(outputs),
            "resumed": sum(1 for o in outputs if o.resumed),
            "validation_passed": report.passed,
        })

    report_json = out / "report.json"
    report_json.write_text(dumps_report(report), encoding="utf-8")
    report_markdown = out / "report.md"
    report_markdown.write_text(report_to_markdown(report),
                               encoding="utf-8")
    # The former ad-hoc `btree-perf all` text dump, folded in: every
    # figure's aligned table in one artifact next to the report.
    tables_text = out / "tables.txt"
    tables_text.write_text(
        "\n".join(format_table(output.table) for output in outputs),
        encoding="utf-8")

    breaches = report.breaches
    if breaches:
        names = ", ".join(f"{c.figure_id}/{c.quantity}" for c in breaches)
        emit(f"validation FAILED: {len(breaches)} threshold breach(es): "
             f"{names}")
    else:
        emit("validation passed: every comparison within thresholds")
    return PipelineResult(out_dir=out, figures=outputs, report=report,
                          report_json=report_json,
                          report_markdown=report_markdown,
                          tables_text=tables_text,
                          journal_path=journal_file)
