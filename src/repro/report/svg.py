"""Dependency-free SVG rendering of experiment tables.

The reproduction must be able to emit every paper figure on a machine
with nothing beyond the core scientific stack installed, so this module
renders an :class:`~repro.experiments.common.ExperimentTable` as a
self-contained SVG document in pure Python.  When matplotlib is
available the pipeline *additionally* rasterizes a PNG through
:func:`repro.experiments.plot.save_figure_image`; both backends share
the :class:`~repro.report.theme.Theme` so the outputs match.

Conventions follow the ASCII plotter: the first column is the x axis,
every other numeric column is a series, saturated points (``+inf``)
render as up-arrows pinned to the top of the panel, and NaN points are
skipped.  The output is deterministic for a given table and theme —
the byte-identity regression tests rely on this.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.report.theme import PUBLICATION, Theme


def _fmt(value: float) -> str:
    """Deterministic compact number formatting for coordinates."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _tick_label(value: float) -> str:
    return f"{value:g}"


def nice_ticks(low: float, high: float, target: int = 5) -> List[float]:
    """A 1-2-5 tick grid covering ``[low, high]`` (inclusive ends)."""
    if not (math.isfinite(low) and math.isfinite(high)):
        raise ConfigurationError("tick bounds must be finite")
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(target - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9 * span:
        # Snap to the step grid so labels come out clean ("0.3", not
        # "0.30000000000000004").
        ticks.append(round(value / step) * step)
        value += step
    return ticks or [low, high]


def _series_bounds(xs: Sequence[float],
                   series: Sequence[Sequence[float]],
                   ) -> Tuple[float, float, float, float]:
    finite = [v for values in series for v in values if math.isfinite(v)]
    if not finite:
        raise ConfigurationError("no finite points to plot")
    y_low, y_high = min(finite), max(finite)
    if y_high == y_low:
        y_high = y_low + 1.0
    pad = 0.05 * (y_high - y_low)
    y_low = min(y_low, 0.0) if y_low >= 0.0 and y_low <= pad else y_low - pad
    y_high += pad
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_high = x_low + 1.0
    return x_low, x_high, y_low, y_high


def _marker_element(shape: str, x: float, y: float, size: float,
                    color: str) -> str:
    s = size
    if shape == "circle":
        return (f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="{_fmt(s)}" '
                f'fill="{color}"/>')
    if shape == "square":
        return (f'<rect x="{_fmt(x - s)}" y="{_fmt(y - s)}" '
                f'width="{_fmt(2 * s)}" height="{_fmt(2 * s)}" '
                f'fill="{color}"/>')
    if shape == "triangle":
        points = (f"{_fmt(x)},{_fmt(y - s)} {_fmt(x - s)},{_fmt(y + s)} "
                  f"{_fmt(x + s)},{_fmt(y + s)}")
        return f'<polygon points="{points}" fill="{color}"/>'
    if shape == "diamond":
        points = (f"{_fmt(x)},{_fmt(y - s)} {_fmt(x + s)},{_fmt(y)} "
                  f"{_fmt(x)},{_fmt(y + s)} {_fmt(x - s)},{_fmt(y)}")
        return f'<polygon points="{points}" fill="{color}"/>'
    if shape == "cross":
        return (f'<path d="M {_fmt(x - s)} {_fmt(y - s)} L {_fmt(x + s)} '
                f'{_fmt(y + s)} M {_fmt(x - s)} {_fmt(y + s)} L '
                f'{_fmt(x + s)} {_fmt(y - s)}" stroke="{color}" '
                f'stroke-width="1.4" fill="none"/>')
    # "plus" and anything unrecognized
    return (f'<path d="M {_fmt(x - s)} {_fmt(y)} L {_fmt(x + s)} {_fmt(y)} '
            f'M {_fmt(x)} {_fmt(y - s)} L {_fmt(x)} {_fmt(y + s)}" '
            f'stroke="{color}" stroke-width="1.4" fill="none"/>')


def _saturation_arrow(x: float, top: float, color: str) -> str:
    points = (f"{_fmt(x)},{_fmt(top)} {_fmt(x - 3.5)},{_fmt(top + 7)} "
              f"{_fmt(x + 3.5)},{_fmt(top + 7)}")
    return f'<polygon points="{points}" fill="{color}" opacity="0.85"/>'


def render_svg(table: ExperimentTable,
               y_columns: Optional[Sequence[str]] = None,
               theme: Theme = PUBLICATION) -> str:
    """Render ``table`` as a themed, self-contained SVG document.

    The first column is the x axis; ``y_columns`` defaults to every
    other column.  Raises :class:`~repro.errors.ConfigurationError` for
    empty tables, unknown columns, or all-saturated series — the same
    contract as :func:`repro.experiments.plot.render_chart`.
    """
    if not table.rows:
        raise ConfigurationError("cannot plot an empty table")
    x_name = table.columns[0]
    names = list(y_columns) if y_columns is not None else table.columns[1:]
    for name in names:
        if name not in table.columns:
            raise ConfigurationError(f"no column {name!r} in {table.columns}")
    if not names:
        raise ConfigurationError("table has no series columns to plot")

    xs = [float(v) for v in table.column(x_name)]
    series = [[float(v) for v in table.column(name)] for name in names]
    x_low, x_high, y_low, y_high = _series_bounds(xs, series)

    margin = theme.margin
    panel_w = theme.width - margin["left"] - margin["right"]
    panel_h = theme.height - margin["top"] - margin["bottom"]
    panel_x, panel_y = margin["left"], margin["top"]

    def sx(x: float) -> float:
        return panel_x + (x - x_low) / (x_high - x_low) * panel_w

    def sy(y: float) -> float:
        return panel_y + panel_h - (y - y_low) / (y_high - y_low) * panel_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{theme.width}" '
        f'height="{theme.height}" viewBox="0 0 {theme.width} '
        f'{theme.height}">',
        f'<rect width="{theme.width}" height="{theme.height}" '
        f'fill="{theme.background}"/>',
        f'<text x="{panel_x}" y="22" font-family="{theme.font_family}" '
        f'font-size="{theme.title_size}" font-weight="bold" '
        f'fill="{theme.text_color}">{_escape(table.title)}</text>',
        f'<text x="{panel_x}" y="38" font-family="{theme.font_family}" '
        f'font-size="{theme.tick_size}" fill="{theme.muted_color}">'
        f'{_escape(table.experiment_id)} · {_escape(table.figure)}</text>',
    ]

    # Grid + ticks.
    for tick in nice_ticks(y_low, y_high):
        y = sy(tick)
        parts.append(f'<line x1="{panel_x}" y1="{_fmt(y)}" '
                     f'x2="{panel_x + panel_w}" y2="{_fmt(y)}" '
                     f'stroke="{theme.grid_color}" '
                     f'stroke-width="{theme.grid_width}"/>')
        parts.append(f'<text x="{panel_x - 6}" y="{_fmt(y + 3)}" '
                     f'text-anchor="end" font-family="{theme.font_family}" '
                     f'font-size="{theme.tick_size}" '
                     f'fill="{theme.axis_color}">{_tick_label(tick)}</text>')
    for tick in nice_ticks(x_low, x_high, target=6):
        x = sx(tick)
        parts.append(f'<line x1="{_fmt(x)}" y1="{panel_y}" x2="{_fmt(x)}" '
                     f'y2="{panel_y + panel_h}" stroke="{theme.grid_color}" '
                     f'stroke-width="{theme.grid_width}"/>')
        parts.append(f'<text x="{_fmt(x)}" y="{panel_y + panel_h + 16}" '
                     f'text-anchor="middle" '
                     f'font-family="{theme.font_family}" '
                     f'font-size="{theme.tick_size}" '
                     f'fill="{theme.axis_color}">{_tick_label(tick)}</text>')

    # Axes frame (left + bottom spines only, like the mpl theme).
    parts.append(f'<line x1="{panel_x}" y1="{panel_y}" x2="{panel_x}" '
                 f'y2="{panel_y + panel_h}" stroke="{theme.axis_color}" '
                 f'stroke-width="1"/>')
    parts.append(f'<line x1="{panel_x}" y1="{panel_y + panel_h}" '
                 f'x2="{panel_x + panel_w}" y2="{panel_y + panel_h}" '
                 f'stroke="{theme.axis_color}" stroke-width="1"/>')
    parts.append(f'<text x="{panel_x + panel_w // 2}" '
                 f'y="{theme.height - 40}" text-anchor="middle" '
                 f'font-family="{theme.font_family}" '
                 f'font-size="{theme.label_size}" '
                 f'fill="{theme.text_color}">{_escape(x_name)}</text>')

    # Series: polyline over finite points, markers, saturation arrows.
    for index, (name, values) in enumerate(zip(names, series)):
        color = theme.color(index)
        shape = theme.marker(index)
        points = [(sx(x), sy(y)) for x, y in zip(xs, values)
                  if math.isfinite(y)]
        if len(points) >= 2:
            path = " ".join(f"{_fmt(px)},{_fmt(py)}" for px, py in points)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" '
                         f'stroke-width="{theme.line_width}"/>')
        for px, py in points:
            parts.append(_marker_element(shape, px, py, theme.marker_size,
                                         color))
        for x, y in zip(xs, values):
            if math.isinf(y) and y > 0:
                parts.append(_saturation_arrow(sx(x), panel_y, color))

    # Legend: one row per series under the x-axis label.
    legend_y = theme.height - 22
    legend_x = float(panel_x)
    for index, name in enumerate(names):
        color = theme.color(index)
        shape = theme.marker(index)
        parts.append(_marker_element(shape, legend_x + 4, legend_y - 3,
                                     theme.marker_size, color))
        label = _escape(name)
        parts.append(f'<text x="{_fmt(legend_x + 12)}" y="{legend_y}" '
                     f'font-family="{theme.font_family}" '
                     f'font-size="{theme.legend_size}" '
                     f'fill="{theme.text_color}">{label}</text>')
        # Advance by an estimate of the label's rendered width; exact
        # metrics would need a font engine, and a fixed per-char advance
        # keeps the output deterministic everywhere.
        legend_x += 12 + 5.4 * len(name) + 14
    if any(math.isinf(v) and v > 0 for values in series for v in values):
        parts.append(f'<text x="{theme.width - margin["right"]}" '
                     f'y="{legend_y}" text-anchor="end" '
                     f'font-family="{theme.font_family}" '
                     f'font-size="{theme.legend_size}" '
                     f'fill="{theme.muted_color}">&#9650; = saturated'
                     f'</text>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))
