"""Per-figure NDJSON data sidecars.

Every rendered figure is accompanied by a ``<figure_id>.ndjson`` file
carrying the exact plotted series, so downstream tooling (and the
validation report) can re-read a figure's numbers without re-running
the sweep or parsing an image.  The format is line-delimited JSON:

* one ``header`` line — schema version, figure identity, column names;
* one ``row`` line per table row, values in column order;
* one ``note`` line per table note.

Serialization is strict JSON (``allow_nan=False``): non-finite floats
are encoded as the sentinel strings ``"Infinity"``, ``"-Infinity"`` and
``"NaN"`` and decoded back to floats on load.  Output is deterministic
— sorted keys, fixed separators, no timestamps — because the
regression suite pins sidecars byte-identical across cached re-runs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, List

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable

SIDECAR_SCHEMA = 1

_SENTINELS = {"Infinity": math.inf, "-Infinity": -math.inf,
              "NaN": math.nan}


def _encode_value(value: Any) -> Any:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, str) and value in _SENTINELS:
        return _SENTINELS[value]
    return value


def _dump_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def dumps_sidecar(table: ExperimentTable) -> str:
    """Serialize ``table`` as the NDJSON sidecar text."""
    lines: List[str] = [_dump_line({
        "kind": "header", "schema": SIDECAR_SCHEMA,
        "experiment_id": table.experiment_id, "figure": table.figure,
        "title": table.title, "columns": list(table.columns),
        "n_rows": len(table.rows),
    })]
    for row in table.rows:
        lines.append(_dump_line({
            "kind": "row", "values": [_encode_value(v) for v in row]}))
    for note in table.notes:
        lines.append(_dump_line({"kind": "note", "text": note}))
    return "\n".join(lines) + "\n"


def loads_sidecar(text: str) -> ExperimentTable:
    """Reconstruct the :class:`ExperimentTable` from sidecar text."""
    records = [json.loads(line) for line in text.splitlines() if line]
    if not records or records[0].get("kind") != "header":
        raise ConfigurationError("sidecar text has no header line")
    header = records[0]
    if header.get("schema") != SIDECAR_SCHEMA:
        raise ConfigurationError(
            f"sidecar schema {header.get('schema')!r} is not the "
            f"supported version {SIDECAR_SCHEMA}")
    table = ExperimentTable(header["experiment_id"], header["title"],
                            header["figure"], list(header["columns"]))
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "row":
            table.add(*[_decode_value(v) for v in record["values"]])
        elif kind == "note":
            table.note(record["text"])
    if len(table.rows) != header.get("n_rows"):
        raise ConfigurationError(
            f"sidecar declares {header.get('n_rows')} row(s) but carries "
            f"{len(table.rows)} — truncated file?")
    return table


def write_sidecar(table: ExperimentTable, path) -> Path:
    """Write the sidecar for ``table`` to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dumps_sidecar(table), encoding="utf-8")
    return target


def read_sidecar(path) -> ExperimentTable:
    """Load a sidecar file back into an :class:`ExperimentTable`."""
    return loads_sidecar(Path(path).read_text(encoding="utf-8"))
