"""The figure registry: every paper + extension figure, with its
model-vs-simulation comparisons declared as data.

This layers on :mod:`repro.experiments.registry` (which maps experiment
ids to sweep drivers): a :class:`FigureSpec` adds what the *report*
pipeline needs on top of the raw series — which column pairs overlay an
analytical prediction on simulated points, what error metric applies,
and how much divergence the reproduction tolerates before the run is
declared a validation failure (Thomasian-style contention-analysis
validation: the claim "the model matches the simulation" is checked
numerically, per figure, per operating point).

Thresholds bound the **median** relative (or absolute) error across a
comparison's valid points: single-seed smoke runs are noisy point by
point, and the paper's own methodology treats near-saturation
divergence as expected, so the median over the sweep is the robust
statistic that still catches a broken model or simulator.  They were
calibrated against ``--scale 0.1`` and ``--scale 0.05`` runs with ~3x
headroom over the observed error (see ``docs/reproduction.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.algorithms import names
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable
from repro.experiments.registry import EXPERIMENTS, Experiment, get_experiment

#: Error metrics a comparison may declare.
RELATIVE = "relative"
ABSOLUTE = "absolute"


@dataclass(frozen=True)
class Comparison:
    """One analytical-vs-simulated column pair of a figure."""

    #: Registry name of the algorithm the pair belongs to.
    algorithm: str
    #: Human label of the compared quantity ("insert response", ...).
    quantity: str
    model_column: str
    sim_column: str
    #: ``"relative"`` (|sim-model|/|model|) or ``"absolute"`` (|sim-model|).
    metric: str = RELATIVE
    #: Maximum allowed median error across the comparison's valid
    #: points; breaching it fails the validation report.
    threshold: float = 0.35


@dataclass(frozen=True)
class FigureSpec:
    """One figure of the reproduction's output set."""

    figure_id: str
    #: ``"paper"`` for Figures 3-16, ``"ext"`` for the extensions.
    kind: str
    comparisons: Tuple[Comparison, ...] = field(default_factory=tuple)
    #: Columns to draw (None: every non-x column).  Used where a table
    #: carries bookkeeping columns on a different scale than the series
    #: (fig09's operation counts next to per-1k rates).
    plot_columns: Optional[Tuple[str, ...]] = None

    @property
    def experiment(self) -> Experiment:
        return get_experiment(self.figure_id)

    @property
    def title(self) -> str:
        return self.experiment.title

    @property
    def figure_label(self) -> str:
        return self.experiment.figure

    @property
    def has_simulation(self) -> bool:
        return self.experiment.has_simulation

    def run(self, scale: float = 1.0,
            simulate: Optional[bool] = None) -> ExperimentTable:
        return self.experiment.run(scale=scale, simulate=simulate)


def _response_pair(algorithm: str, operation: str,
                   threshold: float) -> Comparison:
    return Comparison(algorithm, f"{operation} response",
                      f"model_{operation}_response",
                      f"sim_{operation}_response",
                      metric=RELATIVE, threshold=threshold)


_ENTRIES: Tuple[FigureSpec, ...] = (
    # Figures 3/4: Naive Lock-coupling saturates early; simulated
    # points near the knee sit well above the open-model curve.
    FigureSpec("fig03", "paper",
               (_response_pair(names.NAIVE_LOCK_COUPLING, "insert", 0.40),)),
    FigureSpec("fig04", "paper",
               (_response_pair(names.NAIVE_LOCK_COUPLING, "search", 0.40),)),
    FigureSpec("fig05", "paper",
               (_response_pair(names.OPTIMISTIC_DESCENT, "insert", 0.35),)),
    FigureSpec("fig06", "paper",
               (_response_pair(names.OPTIMISTIC_DESCENT, "search", 0.35),)),
    FigureSpec("fig07", "paper",
               (_response_pair(names.LINK_TYPE, "insert", 0.35),)),
    FigureSpec("fig08", "paper",
               (_response_pair(names.LINK_TYPE, "search", 0.35),)),
    # Figure 9 compares *rates of a rare event* (link crossings per
    # 1000 operations); both sides hover near zero, so the bound is
    # absolute, in the figure's own per-1k units.
    FigureSpec("fig09", "paper",
               (Comparison(names.LINK_TYPE, "link crossings per 1k ops",
                           "model_crossings_per_1k_ops",
                           "sim_crossings_per_1k_ops",
                           metric=ABSOLUTE, threshold=4.0),),
               plot_columns=("model_crossings_per_1k_ops",
                             "sim_crossings_per_1k_ops")),
    # Figure 10: the simulator samples writer *presence* at the root, a
    # documented slight over-estimate of the model's aggregate rho_w.
    FigureSpec("fig10", "paper",
               (Comparison(names.NAIVE_LOCK_COUPLING,
                           "root writer utilization",
                           "model_rho_w_root", "sim_rho_w_root",
                           metric=RELATIVE, threshold=0.60),)),
    FigureSpec("fig11", "paper"),
    # Figures 12/15 and ext01 are analytical by default; their sim
    # columns (and these comparisons) only materialize under
    # ``simulate=True`` runs.
    FigureSpec("fig12", "paper", (
        Comparison(names.NAIVE_LOCK_COUPLING, "insert response",
                   "naive_insert", "sim_naive_insert", threshold=0.40),
        Comparison(names.OPTIMISTIC_DESCENT, "insert response",
                   "optimistic_insert", "sim_optimistic_insert",
                   threshold=0.40),
        Comparison(names.LINK_TYPE, "insert response",
                   "link_insert", "sim_link_insert", threshold=0.40),
    )),
    FigureSpec("fig13", "paper"),
    FigureSpec("fig14", "paper"),
    FigureSpec("fig15", "paper", (
        Comparison(names.OPTIMISTIC_DESCENT, "insert response (no recovery)",
                   "no_recovery_insert", "sim_no_recovery", threshold=0.45),
        Comparison(names.OPTIMISTIC_DESCENT, "insert response (leaf-only)",
                   "leaf_only_insert", "sim_leaf_only", threshold=0.45),
        Comparison(names.OPTIMISTIC_DESCENT, "insert response (naive rec.)",
                   "naive_recovery_insert", "sim_naive_recovery",
                   threshold=0.60),
    )),
    FigureSpec("fig16", "paper"),
    FigureSpec("ext01", "ext", (
        Comparison(names.TWO_PHASE_LOCKING, "insert response",
                   "two_phase_insert", "sim_two_phase_insert",
                   threshold=0.45),
    )),
    FigureSpec("ext02", "ext"),
    FigureSpec("ext03", "ext"),
    # ext04 overlays the interactive response-time-law fixed point on
    # the closed-system simulation for the first closed-capable spec.
    FigureSpec("ext04", "ext", (
        Comparison(names.NAIVE_LOCK_COUPLING, "closed-system throughput",
                   "naive_model_throughput", "naive_throughput",
                   metric=RELATIVE, threshold=0.35),
    )),
    FigureSpec("ext05", "ext"),
    FigureSpec("ext06", "ext"),
    FigureSpec("ext07", "ext"),
    # ext08 validates the cluster tier on both axes: the M/G/1 router +
    # multi-class-shard response composition on the fault-free rows
    # (faulted rows carry NaN sim responses and drop out), and the
    # closed-form crash availability — exact without retries, a
    # mean-jitter rescue-horizon approximation (plus breaker sheds the
    # model does not charge) with them, hence the looser second bound.
    FigureSpec("ext08", "ext", (
        Comparison(names.NAIVE_LOCK_COUPLING, "cluster response",
                   "model_response", "sim_response",
                   metric=RELATIVE, threshold=0.35),
        Comparison(names.NAIVE_LOCK_COUPLING, "availability (fragile)",
                   "model_availability", "availability_fragile",
                   metric=ABSOLUTE, threshold=0.05),
        Comparison(names.NAIVE_LOCK_COUPLING, "availability (resilient)",
                   "model_availability_resilient",
                   "availability_resilient",
                   metric=ABSOLUTE, threshold=0.08),
    ), plot_columns=("model_availability", "availability_fragile",
                     "model_availability_resilient",
                     "availability_resilient", "goodput_fragile",
                     "goodput_resilient")),
)


def _build() -> Dict[str, FigureSpec]:
    figures: Dict[str, FigureSpec] = {}
    for spec in _ENTRIES:
        if spec.figure_id in figures:
            raise ConfigurationError(
                f"figure {spec.figure_id!r} registered twice")
        if spec.figure_id not in EXPERIMENTS:
            raise ConfigurationError(
                f"figure {spec.figure_id!r} has no experiment driver")
        if spec.kind not in ("paper", "ext"):
            raise ConfigurationError(
                f"figure {spec.figure_id!r} has unknown kind {spec.kind!r}")
        figures[spec.figure_id] = spec
    missing = sorted(set(EXPERIMENTS) - set(figures))
    if missing:
        raise ConfigurationError(
            f"experiments without a registered figure: {missing}")
    return figures


#: Every figure the pipeline can emit, in registry (paper) order.
FIGURES: Dict[str, FigureSpec] = _build()


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure; ConfigurationError names the known ids."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known ids: "
            f"{', '.join(sorted(FIGURES))}") from None


def all_figure_ids(kind: Optional[str] = None) -> Tuple[str, ...]:
    """Registered figure ids, optionally restricted to one kind."""
    return tuple(fid for fid, spec in FIGURES.items()
                 if kind is None or spec.kind == kind)
