"""The publication theme shared by every rendered figure.

One :class:`Theme` instance drives all three figure backends — the pure
SVG renderer (:mod:`repro.report.svg`), the optional matplotlib PNG
path (:func:`repro.experiments.plot.save_figure_image`) and the ASCII
chart's successor styling — so the full figure set reads as one system:
same palette, same marker cycle, same grid, same typography.

The palette is the eight-hue colorblind-safe cycle of Okabe & Ito
("Color Universal Design"), reordered so the first three series (the
paper's three algorithms in most comparisons) are maximally separable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Okabe-Ito colorblind-safe hues, separable in grayscale print too.
OKABE_ITO: Tuple[str, ...] = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # bluish green
    "#CC79A7",  # reddish purple
    "#E69F00",  # orange
    "#56B4E9",  # sky blue
    "#F0E442",  # yellow
    "#000000",  # black
)

#: Marker shapes cycled with the palette (SVG primitive names; the
#: matplotlib path maps them onto the equivalent mpl markers).
MARKER_CYCLE: Tuple[str, ...] = (
    "circle", "square", "triangle", "diamond", "cross", "plus",
)

_MPL_MARKERS: Dict[str, str] = {
    "circle": "o", "square": "s", "triangle": "^", "diamond": "D",
    "cross": "x", "plus": "+",
}


@dataclass(frozen=True)
class Theme:
    """Styling constants for one figure family."""

    palette: Tuple[str, ...] = OKABE_ITO
    markers: Tuple[str, ...] = MARKER_CYCLE
    font_family: str = "Helvetica, Arial, sans-serif"
    title_size: int = 13
    label_size: int = 11
    tick_size: int = 9
    legend_size: int = 9
    background: str = "#FFFFFF"
    panel: str = "#FFFFFF"
    grid_color: str = "#D9D9D9"
    axis_color: str = "#333333"
    text_color: str = "#1A1A1A"
    muted_color: str = "#666666"
    line_width: float = 1.6
    marker_size: float = 3.2
    grid_width: float = 0.6
    #: Rendered pixel geometry of the SVG canvas.
    width: int = 720
    height: int = 440
    margin: Dict[str, int] = field(default_factory=lambda: {
        "left": 64, "right": 16, "top": 52, "bottom": 72})
    #: Raster resolution of the matplotlib PNG path.
    dpi: int = 150

    def color(self, index: int) -> str:
        return self.palette[index % len(self.palette)]

    def marker(self, index: int) -> str:
        return self.markers[index % len(self.markers)]

    def mpl_marker(self, index: int) -> str:
        return _MPL_MARKERS[self.marker(index)]

    def rc_params(self) -> Dict[str, object]:
        """Matplotlib rcParams realizing this theme (used under
        ``rc_context`` by the PNG path, never applied globally)."""
        return {
            "figure.facecolor": self.background,
            "figure.dpi": self.dpi,
            "savefig.dpi": self.dpi,
            "axes.facecolor": self.panel,
            "axes.edgecolor": self.axis_color,
            "axes.labelcolor": self.text_color,
            "axes.titlesize": self.title_size,
            "axes.labelsize": self.label_size,
            "axes.grid": True,
            "axes.axisbelow": True,
            "axes.spines.top": False,
            "axes.spines.right": False,
            "axes.prop_cycle": _mpl_cycler(self.palette),
            "grid.color": self.grid_color,
            "grid.linewidth": self.grid_width,
            "lines.linewidth": self.line_width,
            "lines.markersize": self.marker_size * 2,
            "xtick.labelsize": self.tick_size,
            "ytick.labelsize": self.tick_size,
            "xtick.color": self.axis_color,
            "ytick.color": self.axis_color,
            "legend.fontsize": self.legend_size,
            "legend.frameon": False,
            "font.family": "sans-serif",
            "text.color": self.text_color,
        }


def _mpl_cycler(palette: Tuple[str, ...]):
    # Imported lazily: the theme must stay importable without matplotlib
    # (the SVG renderer is the dependency-free default backend).
    from cycler import cycler  # ships with matplotlib

    return cycler(color=list(palette))


#: The default theme applied to every figure the pipeline emits.
PUBLICATION = Theme()
