"""Model-vs-simulation validation over generated figure tables.

The evaluation's core claim is numerical agreement between the
analytical framework and the simulator.  This module turns each
figure's declared :class:`~repro.report.registry.Comparison` pairs into
per-operating-point error rows, aggregates them per figure, and emits
one machine-checkable report — JSON (with a shipped schema and a
round-trip loader) plus human-readable markdown — whose thresholds
gate CI: a breach exits the ``figures`` subcommand nonzero.

Error semantics per point:

* both sides finite → the declared metric (relative or absolute);
* both sides saturated (``+inf``) → agreement on saturation, recorded
  with status ``both_saturated`` and excluded from the error stats;
* exactly one side saturated → a *saturation mismatch*, counted but
  not failed (the paper expects divergence at the knee);
* NaN anywhere → ``undefined`` (e.g. a quarantined point), excluded.

The gate statistic is the **median** error across a comparison's valid
points (see :mod:`repro.report.registry` for why), compared against
``threshold * threshold_scale``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.claims import ClaimResult, evaluate_claims
from repro.experiments.common import ExperimentTable
from repro.report.registry import ABSOLUTE, Comparison, FigureSpec

REPORT_SCHEMA_VERSION = 1

#: Point statuses (also the schema's enum).
OK = "ok"
BOTH_SATURATED = "both_saturated"
MODEL_SATURATED = "model_saturated"
SIM_SATURATED = "sim_saturated"
UNDEFINED = "undefined"


@dataclass(frozen=True)
class ErrorPoint:
    """One operating point of one comparison."""

    x: float
    model: float
    sim: float
    error: Optional[float]
    status: str


@dataclass
class ComparisonResult:
    """One comparison's error column, with its verdict."""

    figure_id: str
    algorithm: str
    quantity: str
    metric: str
    threshold: float
    points: List[ErrorPoint] = field(default_factory=list)

    @property
    def valid_points(self) -> List[ErrorPoint]:
        return [p for p in self.points if p.status == OK]

    @property
    def median_error(self) -> float:
        valid = self.valid_points
        return median(p.error for p in valid) if valid else math.nan

    @property
    def max_error(self) -> float:
        valid = self.valid_points
        return max(p.error for p in valid) if valid else math.nan

    @property
    def saturation_mismatches(self) -> int:
        return sum(1 for p in self.points
                   if p.status in (MODEL_SATURATED, SIM_SATURATED))

    def passed(self, threshold_scale: float = 1.0) -> bool:
        """True when the median error is within the (scaled) threshold.

        A comparison with *no* valid points passes vacuously — a no-sim
        run or an all-saturated sweep carries no evidence either way.
        """
        value = self.median_error
        if math.isnan(value):
            return True
        return value <= self.threshold * threshold_scale


@dataclass
class FigureValidation:
    """All of one figure's comparisons."""

    figure_id: str
    title: str
    comparisons: List[ComparisonResult] = field(default_factory=list)

    def passed(self, threshold_scale: float = 1.0) -> bool:
        return all(c.passed(threshold_scale) for c in self.comparisons)


@dataclass
class ReproductionReport:
    """The one-command reproduction's machine-checked summary."""

    scale: float
    threshold_scale: float
    figures: List[FigureValidation] = field(default_factory=list)
    claims: List[ClaimResult] = field(default_factory=list)

    @property
    def breaches(self) -> List[ComparisonResult]:
        return [c for fig in self.figures for c in fig.comparisons
                if not c.passed(self.threshold_scale)]

    @property
    def failed_claims(self) -> List[ClaimResult]:
        return [c for c in self.claims if not c.holds]

    @property
    def passed(self) -> bool:
        return not self.breaches and not self.failed_claims


# ----------------------------------------------------------------------
# Building error tables from figure tables
# ----------------------------------------------------------------------
def _point_status(model: float, sim: float) -> str:
    if math.isnan(model) or math.isnan(sim):
        return UNDEFINED
    model_inf, sim_inf = math.isinf(model), math.isinf(sim)
    if model_inf and sim_inf:
        return BOTH_SATURATED
    if model_inf:
        return MODEL_SATURATED
    if sim_inf:
        return SIM_SATURATED
    return OK


def _error(comparison: Comparison, model: float, sim: float,
           ) -> Optional[float]:
    if comparison.metric == ABSOLUTE:
        return abs(sim - model)
    if model == 0.0:
        return math.nan if sim != 0.0 else 0.0
    return abs(sim - model) / abs(model)


def evaluate_comparison(spec: FigureSpec, comparison: Comparison,
                        table: ExperimentTable) -> ComparisonResult:
    """Error rows for one declared column pair over ``table``.

    Missing columns (an analytical-only run of a figure whose sim
    columns are conditional) yield an empty, vacuously-passing result.
    """
    result = ComparisonResult(
        figure_id=spec.figure_id, algorithm=comparison.algorithm,
        quantity=comparison.quantity, metric=comparison.metric,
        threshold=comparison.threshold)
    if comparison.model_column not in table.columns \
            or comparison.sim_column not in table.columns:
        return result
    xs = table.column(table.columns[0])
    models = table.column(comparison.model_column)
    sims = table.column(comparison.sim_column)
    for x, model, sim in zip(xs, models, sims):
        model, sim = float(model), float(sim)
        status = _point_status(model, sim)
        error = _error(comparison, model, sim) if status == OK else None
        if error is not None and math.isnan(error):
            status, error = UNDEFINED, None
        result.points.append(ErrorPoint(float(x), model, sim, error,
                                        status))
    return result


def validate_figure(spec: FigureSpec, table: ExperimentTable,
                    ) -> FigureValidation:
    """Evaluate every declared comparison of ``spec`` over ``table``."""
    return FigureValidation(
        figure_id=spec.figure_id, title=table.title,
        comparisons=[evaluate_comparison(spec, comparison, table)
                     for comparison in spec.comparisons])


def build_report(pairs: Sequence[Tuple[FigureSpec, ExperimentTable]],
                 scale: float, threshold_scale: float = 1.0,
                 include_claims: bool = True) -> ReproductionReport:
    """The full report over ``(spec, table)`` pairs.

    ``include_claims`` folds the paper's in-text claims
    (:mod:`repro.experiments.claims`) into the same document, so one
    artifact carries every machine-checked statement of the
    reproduction.
    """
    report = ReproductionReport(scale=scale,
                                threshold_scale=threshold_scale)
    for spec, table in pairs:
        report.figures.append(validate_figure(spec, table))
    if include_claims:
        report.claims = evaluate_claims()
    return report


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------
def _num_out(value: Optional[float]):
    if value is None:
        return None
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _num_in(value) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, str):
        return {"NaN": math.nan, "Infinity": math.inf,
                "-Infinity": -math.inf}[value]
    return float(value)


def report_to_dict(report: ReproductionReport) -> dict:
    """The report as a plain JSON-serializable dict (strict JSON: non-
    finite numbers become sentinel strings)."""
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "scale": report.scale,
        "threshold_scale": report.threshold_scale,
        "passed": report.passed,
        "figures": [{
            "figure_id": fig.figure_id,
            "title": fig.title,
            "passed": fig.passed(report.threshold_scale),
            "comparisons": [{
                "algorithm": c.algorithm,
                "quantity": c.quantity,
                "metric": c.metric,
                "threshold": c.threshold,
                "median_error": _num_out(c.median_error),
                "max_error": _num_out(c.max_error),
                "n_valid": len(c.valid_points),
                "saturation_mismatches": c.saturation_mismatches,
                "passed": c.passed(report.threshold_scale),
                "points": [{
                    "x": _num_out(p.x),
                    "model": _num_out(p.model),
                    "sim": _num_out(p.sim),
                    "error": _num_out(p.error),
                    "status": p.status,
                } for p in c.points],
            } for c in fig.comparisons],
        } for fig in report.figures],
        "claims": [{
            "claim_id": c.claim_id,
            "section": c.section,
            "statement": c.statement,
            "measured": c.measured,
            "holds": c.holds,
        } for c in report.claims],
    }


def report_from_dict(data: dict) -> ReproductionReport:
    """Rebuild a :class:`ReproductionReport` from its dict form."""
    validate_report_dict(data)
    report = ReproductionReport(scale=float(data["scale"]),
                                threshold_scale=float(
                                    data["threshold_scale"]))
    for fig in data["figures"]:
        validation = FigureValidation(figure_id=fig["figure_id"],
                                      title=fig["title"])
        for c in fig["comparisons"]:
            result = ComparisonResult(
                figure_id=fig["figure_id"], algorithm=c["algorithm"],
                quantity=c["quantity"], metric=c["metric"],
                threshold=float(c["threshold"]))
            for p in c["points"]:
                result.points.append(ErrorPoint(
                    x=_num_in(p["x"]), model=_num_in(p["model"]),
                    sim=_num_in(p["sim"]), error=_num_in(p["error"]),
                    status=p["status"]))
            validation.comparisons.append(result)
        report.figures.append(validation)
    for c in data["claims"]:
        report.claims.append(ClaimResult(
            claim_id=c["claim_id"], section=c["section"],
            statement=c["statement"], measured=c["measured"],
            holds=bool(c["holds"])))
    return report


def dumps_report(report: ReproductionReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def loads_report(text: str) -> ReproductionReport:
    return report_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Schema validation (dependency-free subset of JSON Schema)
# ----------------------------------------------------------------------
_STATUSES = (OK, BOTH_SATURATED, MODEL_SATURATED, SIM_SATURATED,
             UNDEFINED)

#: JSON-Schema-shaped description of the report document, shipped so
#: external consumers can validate artifacts with a real validator.
REPORT_JSON_SCHEMA: dict = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro reproduction report",
    "type": "object",
    "required": ["schema", "scale", "threshold_scale", "passed",
                 "figures", "claims"],
    "properties": {
        "schema": {"const": REPORT_SCHEMA_VERSION},
        "scale": {"type": "number"},
        "threshold_scale": {"type": "number"},
        "passed": {"type": "boolean"},
        "figures": {"type": "array", "items": {
            "type": "object",
            "required": ["figure_id", "title", "passed", "comparisons"],
            "properties": {
                "figure_id": {"type": "string"},
                "title": {"type": "string"},
                "passed": {"type": "boolean"},
                "comparisons": {"type": "array", "items": {
                    "type": "object",
                    "required": ["algorithm", "quantity", "metric",
                                 "threshold", "median_error", "max_error",
                                 "n_valid", "saturation_mismatches",
                                 "passed", "points"],
                    "properties": {
                        "metric": {"enum": ["relative", "absolute"]},
                        "points": {"type": "array", "items": {
                            "type": "object",
                            "required": ["x", "model", "sim", "error",
                                         "status"],
                            "properties": {
                                "status": {"enum": list(_STATUSES)},
                            },
                        }},
                    },
                }},
            },
        }},
        "claims": {"type": "array", "items": {
            "type": "object",
            "required": ["claim_id", "section", "statement", "measured",
                         "holds"],
        }},
    },
}


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"invalid reproduction report: {message}")


def validate_report_dict(data: dict) -> None:
    """Structural validation of a report dict against the shipped
    schema's constraints; raises ConfigurationError on any mismatch."""
    _check(isinstance(data, dict), "document is not an object")
    for key in REPORT_JSON_SCHEMA["required"]:
        _check(key in data, f"missing top-level key {key!r}")
    _check(data["schema"] == REPORT_SCHEMA_VERSION,
           f"schema {data['schema']!r} != {REPORT_SCHEMA_VERSION}")
    _check(isinstance(data["passed"], bool), "'passed' is not a boolean")
    for field_name in ("scale", "threshold_scale"):
        _check(isinstance(data[field_name], (int, float))
               and not isinstance(data[field_name], bool),
               f"{field_name!r} is not a number")
    _check(isinstance(data["figures"], list), "'figures' is not a list")
    for fig in data["figures"]:
        for key in ("figure_id", "title", "passed", "comparisons"):
            _check(key in fig, f"figure entry missing {key!r}")
        _check(isinstance(fig["comparisons"], list),
               f"{fig['figure_id']}: 'comparisons' is not a list")
        for c in fig["comparisons"]:
            for key in ("algorithm", "quantity", "metric", "threshold",
                        "median_error", "max_error", "n_valid",
                        "saturation_mismatches", "passed", "points"):
                _check(key in c,
                       f"{fig['figure_id']}: comparison missing {key!r}")
            _check(c["metric"] in ("relative", "absolute"),
                   f"{fig['figure_id']}: unknown metric {c['metric']!r}")
            for p in c["points"]:
                for key in ("x", "model", "sim", "error", "status"):
                    _check(key in p,
                           f"{fig['figure_id']}: point missing {key!r}")
                _check(p["status"] in _STATUSES,
                       f"{fig['figure_id']}: unknown point status "
                       f"{p['status']!r}")
    _check(isinstance(data["claims"], list), "'claims' is not a list")
    for c in data["claims"]:
        for key in ("claim_id", "section", "statement", "measured",
                    "holds"):
            _check(key in c, f"claim entry missing {key!r}")


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def _pct(value: Optional[float], metric: str) -> str:
    if value is None or math.isnan(value):
        return "–"
    if metric == ABSOLUTE:
        return f"{value:.3g}"
    return f"{value:.1%}"


def report_to_markdown(report: ReproductionReport) -> str:
    """The human-readable twin of the JSON report."""
    scale_note = (f" (thresholds x{report.threshold_scale:g})"
                  if report.threshold_scale != 1.0 else "")
    lines = [
        "# Reproduction validation report",
        "",
        f"Simulation scale: **{report.scale:g}** — paper scale is 1.0."
        + scale_note,
        "",
        f"Overall: **{'PASS' if report.passed else 'FAIL'}** — "
        f"{len(report.breaches)} threshold breach(es), "
        f"{len(report.failed_claims)} failed claim(s).",
        "",
        "## Model vs simulation, per figure",
        "",
        "| figure | algorithm | quantity | metric | median err | "
        "max err | points | sat. mismatch | threshold | verdict |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    any_rows = False
    for fig in report.figures:
        for c in fig.comparisons:
            if not c.points:
                continue
            any_rows = True
            verdict = ("pass" if c.passed(report.threshold_scale)
                       else "**BREACH**")
            threshold = c.threshold * report.threshold_scale
            lines.append(
                f"| {fig.figure_id} | {c.algorithm} | {c.quantity} "
                f"| {c.metric} | {_pct(c.median_error, c.metric)} "
                f"| {_pct(c.max_error, c.metric)} | {len(c.valid_points)} "
                f"| {c.saturation_mismatches} "
                f"| {_pct(threshold, c.metric)} | {verdict} |")
    if not any_rows:
        lines.append("| – | – | – | – | – | – | – | – | – | no "
                     "simulated comparisons in this run |")
    analytical = [fig.figure_id for fig in report.figures
                  if not any(c.points for c in fig.comparisons)]
    if analytical:
        lines += ["", "Analytical-only in this run (no error rows): "
                  + ", ".join(analytical) + "."]

    lines += ["", "## Per-point error tables", ""]
    for fig in report.figures:
        for c in fig.comparisons:
            if not c.points:
                continue
            lines += [
                f"### {fig.figure_id}: {c.quantity} ({c.algorithm})",
                "",
                "| x | model | sim | error | status |",
                "|---|---|---|---|---|",
            ]
            for p in c.points:
                lines.append(
                    f"| {p.x:g} | {_fmt_value(p.model)} "
                    f"| {_fmt_value(p.sim)} | {_pct(p.error, c.metric)} "
                    f"| {p.status} |")
            lines.append("")

    if report.claims:
        lines += [
            "## In-text claims",
            "",
            "| claim | section | verdict | measured |",
            "|---|---|---|---|",
        ]
        for c in report.claims:
            verdict = "holds" if c.holds else "**FAILS**"
            lines.append(f"| {c.claim_id} | {c.section} | {verdict} "
                         f"| {c.measured} |")
        lines.append("")
    return "\n".join(lines) + "\n"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "saturated"
    if math.isnan(value):
        return "–"
    return f"{value:.4g}"
