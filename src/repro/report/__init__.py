"""repro.report: the unified figure/report pipeline.

One subsystem turns cached sweep results into the paper's full
evidence set:

* :mod:`repro.report.registry` — every paper + extension figure with
  its declared model-vs-simulation comparisons and error thresholds;
* :mod:`repro.report.theme` — the publication theme shared by the SVG
  and matplotlib backends;
* :mod:`repro.report.svg` — dependency-free SVG rendering;
* :mod:`repro.report.sidecar` — deterministic NDJSON data sidecars;
* :mod:`repro.report.validation` — per-figure error tables and the
  machine-checked reproduction report (markdown + JSON + schema);
* :mod:`repro.report.pipeline` — the resumable one-command run behind
  ``btree-perf figures``.

See ``docs/reproduction.md`` for the end-to-end workflow.
"""

from repro.report.pipeline import (
    FigureOutput,
    PipelineResult,
    figure_key,
    generate_figures,
)
from repro.report.registry import (
    FIGURES,
    Comparison,
    FigureSpec,
    all_figure_ids,
    get_figure,
)
from repro.report.sidecar import (
    dumps_sidecar,
    loads_sidecar,
    read_sidecar,
    write_sidecar,
)
from repro.report.svg import render_svg
from repro.report.theme import PUBLICATION, Theme
from repro.report.validation import (
    REPORT_JSON_SCHEMA,
    ComparisonResult,
    ErrorPoint,
    FigureValidation,
    ReproductionReport,
    build_report,
    dumps_report,
    loads_report,
    report_from_dict,
    report_to_dict,
    report_to_markdown,
    validate_figure,
    validate_report_dict,
)

__all__ = [
    "Comparison",
    "ComparisonResult",
    "ErrorPoint",
    "FIGURES",
    "FigureOutput",
    "FigureSpec",
    "FigureValidation",
    "PUBLICATION",
    "PipelineResult",
    "REPORT_JSON_SCHEMA",
    "ReproductionReport",
    "Theme",
    "all_figure_ids",
    "build_report",
    "dumps_report",
    "dumps_sidecar",
    "figure_key",
    "generate_figures",
    "get_figure",
    "loads_report",
    "loads_sidecar",
    "read_sidecar",
    "render_svg",
    "report_from_dict",
    "report_to_dict",
    "report_to_markdown",
    "validate_figure",
    "validate_report_dict",
    "write_sidecar",
]
