"""Structural invariant checker.

``check_invariants`` walks the whole tree and verifies every property the
concurrent algorithms rely on.  It raises
:class:`~repro.errors.InvariantViolationError` with a precise message on
the first violation, which makes hypothesis shrinking output readable.

Checked invariants:

1. keys are strictly sorted inside every node;
2. no node exceeds the order; non-root nodes respect the merge policy's
   occupancy floor (vacuously true for merge-at-empty);
3. internal nodes have ``len(children) == len(keys) + 1`` and children one
   level below;
4. separator correctness: each child's keys fall inside the router range;
5. all leaves are at level 1 (uniform depth);
6. each level's right-link chain visits exactly the level's nodes in
   left-to-right order;
7. high keys: ``node.high_key`` equals the next separator bound and every
   key in the subtree is below it;
8. the multiset of leaf keys is globally sorted along the leaf chain.
"""

from __future__ import annotations

from typing import List, Optional

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.tree import BPlusTree
from repro.errors import InvariantViolationError


def check_invariants(tree: BPlusTree, allow_underflow: bool = False) -> None:
    """Validate ``tree``; raises InvariantViolationError on any breach.

    ``allow_underflow=True`` skips the occupancy-floor check: the
    Link-type algorithm never merges, so its trees legitimately contain
    empty leaves (paper Section 2 ignores merges for link trees).
    """
    _check_subtree(tree, tree.root, low=None, high=None,
                   allow_underflow=allow_underflow)
    _check_level_chains(tree)
    _check_leaf_order(tree)


def _fail(message: str) -> None:
    raise InvariantViolationError(message)


def _check_subtree(tree: BPlusTree, node: Node,
                   low: Optional[int], high: Optional[int],
                   allow_underflow: bool = False) -> None:
    if node.dead:
        _fail(f"node #{node.node_id} is marked dead but still reachable")
    _check_keys_sorted(node)
    if node.n_entries() > tree.order:
        _fail(f"node #{node.node_id} holds {node.n_entries()} entries "
              f"(> order {tree.order})")
    if not allow_underflow and node is not tree.root \
            and tree.merge_policy.underflows(node.n_entries(), tree.order):
        _fail(f"node #{node.node_id} underflows policy "
              f"{tree.merge_policy} with {node.n_entries()} entries")
    if node.high_key is not None and high is not None \
            and node.high_key > high:
        _fail(f"node #{node.node_id} high_key {node.high_key} exceeds "
              f"router bound {high}")
    for key in node.keys:
        if low is not None and key < low:
            _fail(f"key {key} in node #{node.node_id} below router bound {low}")
        if high is not None and key >= high:
            _fail(f"key {key} in node #{node.node_id} >= router bound {high}")
        if node.high_key is not None and key >= node.high_key \
                and node.is_leaf:
            _fail(f"leaf key {key} in node #{node.node_id} >= its own "
                  f"high_key {node.high_key}")
    if isinstance(node, InternalNode):
        if len(node.children) != len(node.keys) + 1:
            _fail(f"node #{node.node_id}: {len(node.children)} children vs "
                  f"{len(node.keys)} keys")
        for child in node.children:
            if child.level != node.level - 1:
                _fail(f"child #{child.node_id} at level {child.level} under "
                      f"parent level {node.level}")
        bounds = [low] + list(node.keys) + [high]
        for child, (lo, hi) in zip(node.children, zip(bounds, bounds[1:])):
            _check_subtree(tree, child, lo, hi,
                           allow_underflow=allow_underflow)
    elif not isinstance(node, LeafNode):  # pragma: no cover - type safety
        _fail(f"node #{node.node_id} is neither leaf nor internal")


def _check_keys_sorted(node: Node) -> None:
    for a, b in zip(node.keys, node.keys[1:]):
        if a >= b:
            _fail(f"keys out of order in node #{node.node_id}: {a} >= {b}")


def _collect_level(node: Node, level: int, out: List[Node]) -> None:
    if node.level == level:
        out.append(node)
        return
    assert isinstance(node, InternalNode)
    for child in node.children:
        _collect_level(child, level, out)


def _check_level_chains(tree: BPlusTree) -> None:
    for level in range(1, tree.height + 1):
        expected: List[Node] = []
        _collect_level(tree.root, level, expected)
        # Follow the chain from the leftmost node of the level.
        chain: List[Node] = []
        node: Optional[Node] = expected[0] if expected else None
        seen = set()
        while node is not None:
            if id(node) in seen:
                _fail(f"right-link cycle at level {level} through "
                      f"node #{node.node_id}")
            seen.add(id(node))
            chain.append(node)
            node = node.right
        if [n.node_id for n in chain] != [n.node_id for n in expected]:
            _fail(
                f"level {level} chain {[n.node_id for n in chain]} does not "
                f"match tree order {[n.node_id for n in expected]}"
            )
        # High keys must agree with the right neighbour's key range and the
        # rightmost node must be unbounded.
        if chain and chain[-1].high_key is not None:
            _fail(f"rightmost node #{chain[-1].node_id} of level {level} "
                  f"has finite high_key {chain[-1].high_key}")
        for left, right in zip(chain, chain[1:]):
            if left.high_key is None:
                _fail(f"non-rightmost node #{left.node_id} has no high_key")
            lowest = _lowest_key(right)
            if lowest is not None and lowest < left.high_key:
                _fail(
                    f"node #{right.node_id} starts at {lowest} below left "
                    f"neighbour's high_key {left.high_key}"
                )


def _lowest_key(node: Node) -> Optional[int]:
    while isinstance(node, InternalNode):
        node = node.children[0]
    return node.keys[0] if node.keys else None


def _check_leaf_order(tree: BPlusTree) -> None:
    previous: Optional[int] = None
    count = 0
    for key in tree.items():
        if previous is not None and key <= previous:
            _fail(f"leaf chain keys out of order: {previous} then {key}")
        previous = key
        count += 1
    if count != len(tree):
        _fail(f"tree size {len(tree)} but leaf chain holds {count} keys")
