"""The B+-tree.

``BPlusTree`` provides two API layers:

1. **Whole operations** (``search`` / ``insert`` / ``delete``) used by the
   construction phase and the sequential tests.  They implement both
   underflow policies (merge-at-empty and merge-at-half).
2. **Structure-modification primitives** (``half_split``, ``grow_root``,
   ``complete_split``, ``remove_empty_leaf`` ...) that the concurrent
   algorithms call while holding the appropriate locks.  The whole
   operations are themselves built from these primitives, so the exact
   code paths exercised concurrently are also covered by the sequential
   test suite.

Capacity convention (paper Section 5.3: "a node ... held a maximum of 13
items"): a leaf holds at most ``order`` keys and an internal node at most
``order`` children.  A node *overflows* when one more entry would exceed
that, so insert-safety is ``n_entries < order``.

Right links and high keys are maintained by **every** structural change,
not just by the Link-type algorithm, so a single tree implementation
serves all three concurrency-control schemes.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.policies import MERGE_AT_EMPTY, MergePolicy
from repro.errors import BTreeError, ConfigurationError

NodeHook = Optional[Callable[[Node], None]]


class BPlusTree:
    """A B+-tree with right links, supporting two underflow policies.

    Parameters
    ----------
    order:
        Maximum entries per node (keys in a leaf, children in an internal
        node).  The paper's default experiment uses 13.
    merge_policy:
        :data:`~repro.btree.policies.MERGE_AT_EMPTY` (paper default) or
        :data:`~repro.btree.policies.MERGE_AT_HALF`.
    on_new_node / on_free_node:
        Hooks invoked whenever a node is allocated or deallocated; the
        simulator uses them to attach and retire per-node locks.
    """

    def __init__(self, order: int = 13,
                 merge_policy: MergePolicy = MERGE_AT_EMPTY,
                 on_new_node: NodeHook = None,
                 on_free_node: NodeHook = None) -> None:
        if order < 3:
            raise ConfigurationError(f"order must be >= 3, got {order}")
        self.order = order
        self.merge_policy = merge_policy
        self.on_new_node = on_new_node
        self.on_free_node = on_free_node
        self._size = 0
        self._splits = 0
        self._merges = 0
        self.root: Node = self._new_leaf()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _new_leaf(self) -> LeafNode:
        node = LeafNode()
        if self.on_new_node is not None:
            self.on_new_node(node)
        return node

    def _new_internal(self, level: int) -> InternalNode:
        node = InternalNode(level)
        if self.on_new_node is not None:
            self.on_new_node(node)
        return node

    def _free(self, node: Node) -> None:
        node.dead = True
        if self.on_free_node is not None:
            self.on_free_node(node)

    # ------------------------------------------------------------------
    # Shape and occupancy queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels; a lone leaf is height 1."""
        return self.root.level

    def __len__(self) -> int:
        return self._size

    @property
    def split_count(self) -> int:
        """Total node splits performed since construction."""
        return self._splits

    @property
    def merge_count(self) -> int:
        """Total underflow restructurings (merges/borrows/removals)."""
        return self._merges

    def is_insert_safe(self, node: Node) -> bool:
        """True when adding one entry cannot overflow ``node``."""
        return node.n_entries() < self.order

    def is_delete_safe(self, node: Node) -> bool:
        """True when removing one entry cannot underflow ``node``.

        The root never underflows for safety purposes (it shrinks instead).
        """
        if node is self.root:
            return True
        return not self.merge_policy.underflows(node.n_entries() - 1, self.order)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_leaf(self, key: int) -> LeafNode:
        """Descend to the leaf responsible for ``key`` (no link chasing
        needed in sequential use)."""
        node = self.root
        while not node.is_leaf:
            node = node.child_for(key)  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def path_to(self, key: int) -> List[Node]:
        """Root-to-leaf path for ``key`` (root first)."""
        path: List[Node] = []
        node = self.root
        while True:
            path.append(node)
            if node.is_leaf:
                return path
            node = node.child_for(key)  # type: ignore[union-attr]

    def search(self, key: int) -> bool:
        """Membership test."""
        return self.find_leaf(key).contains(key)

    def __contains__(self, key: int) -> bool:
        return self.search(key)

    def __iter__(self) -> Iterator[int]:
        """Iterate all keys in ascending order (alias of :meth:`items`)."""
        return self.items()

    def leftmost_leaf(self) -> LeafNode:
        node = self.root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def leaves(self) -> Iterator[LeafNode]:
        """Iterate leaves left-to-right along the link chain."""
        node: Optional[Node] = self.leftmost_leaf()
        while node is not None:
            yield node  # type: ignore[misc]
            node = node.right

    def items(self) -> Iterator[int]:
        """All keys in ascending order."""
        for leaf in self.leaves():
            yield from leaf.keys

    def range_search(self, low: int, high: int) -> Iterator[int]:
        """All keys in ``[low, high)`` in ascending order.

        Locates the leaf responsible for ``low`` and walks the leaf
        chain — the access pattern that makes B+-trees (and especially
        B-link trees) the index of choice for range predicates.
        """
        if high <= low:
            return
        node: Optional[Node] = self.find_leaf(low)
        while node is not None:
            for key in node.keys:
                if key >= high:
                    return
                if key >= low:
                    yield key
            if node.high_key is not None and node.high_key >= high:
                return
            node = node.right

    def level_nodes(self, level: int) -> Iterator[Node]:
        """Iterate the nodes of ``level`` left-to-right via right links."""
        if not 1 <= level <= self.height:
            raise BTreeError(f"no level {level} in a tree of height {self.height}")
        node = self.root
        while node.level > level:
            node = node.children[0]  # type: ignore[union-attr]
        current: Optional[Node] = node
        while current is not None:
            yield current
            current = current.right

    # ------------------------------------------------------------------
    # Structure-modification primitives (used under locks)
    # ------------------------------------------------------------------
    def half_split(self, node: Node) -> Tuple[Node, int]:
        """Split ``node`` into itself plus a new right sibling.

        Moves the upper half of the entries to the sibling, fixes right
        links and high keys, and returns ``(sibling, separator)``.  The
        caller is responsible for posting the separator into the parent
        (``complete_split``) or growing the root (``grow_root``) — this is
        exactly the Lehman-Yao half-split, and the lock-coupling
        algorithms reuse it with the whole path locked.
        """
        if node.is_leaf:
            sibling: Node = self._new_leaf()
            mid = len(node.keys) // 2
            sibling.keys = node.keys[mid:]
            node.keys = node.keys[:mid]
            separator = sibling.keys[0]
        else:
            assert isinstance(node, InternalNode)
            sibling = self._new_internal(node.level)
            mid = len(node.children) // 2
            # keys[mid-1] is promoted as the separator.
            separator = node.keys[mid - 1]
            sibling.keys = node.keys[mid:]
            sibling.children = node.children[mid:]
            node.keys = node.keys[: mid - 1]
            node.children = node.children[:mid]
        sibling.right = node.right
        sibling.high_key = node.high_key
        node.right = sibling
        node.high_key = separator
        self._splits += 1
        return sibling, separator

    def complete_split(self, parent: InternalNode, separator: int,
                       sibling: Node) -> None:
        """Post a half-split into ``parent`` (which may then overflow)."""
        if parent.level != sibling.level + 1:
            raise BTreeError(
                f"parent level {parent.level} does not sit above sibling "
                f"level {sibling.level}"
            )
        parent.insert_router(separator, sibling)

    def grow_root(self, old_root: Node, separator: int, sibling: Node) -> InternalNode:
        """Create a new root above a split ``old_root``; returns it."""
        if old_root is not self.root:
            raise BTreeError("grow_root called on a node that is not the root")
        new_root = self._new_internal(old_root.level + 1)
        new_root.keys = [separator]
        new_root.children = [old_root, sibling]
        self.root = new_root
        return new_root

    def overflowed(self, node: Node) -> bool:
        """True when ``node`` holds more entries than ``order`` allows."""
        return node.n_entries() > self.order

    def split_path(self, path: List[Node]) -> int:
        """Split every overflowed node along a root-first ``path``.

        Used by the lock-coupling algorithms after a leaf insert while the
        whole unsafe path is W-locked.  Returns the number of splits.
        """
        n_splits = 0
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if not self.overflowed(node):
                break
            sibling, separator = self.half_split(node)
            n_splits += 1
            if depth == 0:
                self.grow_root(node, separator, sibling)
            else:
                parent = path[depth - 1]
                assert isinstance(parent, InternalNode)
                self.complete_split(parent, separator, sibling)
        return n_splits

    def remove_empty_leaf(self, path: List[Node]) -> int:
        """Merge-at-empty removal of the (empty) leaf at the end of
        ``path``, propagating upward while internal nodes empty out.

        Returns the number of nodes freed.  The caller holds W locks on
        the whole unsafe suffix of the path (Naive Lock-coupling delete).
        """
        if self.merge_policy is not MERGE_AT_EMPTY:
            raise BTreeError("remove_empty_leaf requires the merge-at-empty policy")
        # Find the decisive ancestor: the deepest node on the path that
        # keeps entries after the removal cascade.  The key range of the
        # removed chain is absorbed by the sibling next to the chain
        # *under that ancestor*: by the left sibling when the chain is
        # not the ancestor's first child (its high keys extend upward),
        # otherwise by the right sibling (whose implicit lower bounds
        # extend downward — no stored high key changes).
        stop = len(path) - 1
        while stop > 0:
            node = path[stop]
            remaining = node.n_entries() - (0 if stop == len(path) - 1 else 1)
            if remaining > 0:
                break
            stop -= 1
        if stop == len(path) - 1:
            return 0  # the leaf still holds keys; nothing to remove
        decisive = path[stop]
        assert isinstance(decisive, InternalNode)
        absorbed_left = decisive.children.index(path[stop + 1]) > 0

        freed = 0
        depth = len(path) - 1
        while depth > stop:
            node = path[depth]
            parent = path[depth - 1]
            assert isinstance(parent, InternalNode)
            self._unlink_from_level(node, path[: depth], absorbed_left)
            parent.remove_child(node)
            self._free(node)
            self._merges += 1
            freed += 1
            depth -= 1
        self._collapse_root()
        return freed

    def apply_leaf_insert(self, leaf: LeafNode, key: int) -> bool:
        """Insert ``key`` into ``leaf`` keeping the size counter right.

        Used by the concurrent algorithms, which locate and lock the leaf
        themselves.  Returns False when the key was already present.
        """
        if leaf.insert_key(key):
            self._size += 1
            return True
        return False

    def apply_leaf_delete(self, leaf: LeafNode, key: int) -> bool:
        """Delete ``key`` from ``leaf`` keeping the size counter right."""
        if leaf.delete_key(key):
            self._size -= 1
            return True
        return False

    def splice_out_empty_leaf(self, leaf: Node, parent: InternalNode,
                              left: Optional[Node]) -> bool:
        """Remove one empty leaf given its parent and level-chain left
        neighbour (Sagiv-style background compression for link trees).

        The caller holds the appropriate locks; this method re-validates
        the structural preconditions — they may have been broken between
        choosing the candidate and acquiring the locks — and returns
        False (doing nothing) when any fails:

        * ``leaf`` is still alive, empty, and a child of ``parent``;
        * ``parent`` keeps at least one other child (a parent emptied of
          children is left for the next pass or a root collapse);
        * ``left`` is still the node whose right link targets ``leaf``
          (or None when ``leaf`` is the leftmost of its level).
        """
        if leaf.dead or leaf.n_entries() > 0 or leaf is self.root:
            return False
        if parent.dead or leaf not in parent.children:
            return False
        if len(parent.children) == 1:
            return False
        if left is None:
            if self._scan_for_left_neighbour(leaf) is not None:
                return False
        elif left.dead or left.right is not leaf:
            return False
        absorbed_left = parent.children.index(leaf) > 0
        if left is not None:
            left.right = leaf.right
            if absorbed_left:
                left.high_key = leaf.high_key
        parent.remove_child(leaf)
        self._free(leaf)
        self._merges += 1
        return True

    # ------------------------------------------------------------------
    # Whole operations (sequential)
    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        """Insert ``key``; returns False if it was already present."""
        path = self.path_to(key)
        leaf = path[-1]
        assert isinstance(leaf, LeafNode)
        if not leaf.insert_key(key):
            return False
        self._size += 1
        if self.overflowed(leaf):
            self.split_path(path)
        return True

    def delete(self, key: int) -> bool:
        """Delete ``key``; returns False if it was absent."""
        path = self.path_to(key)
        leaf = path[-1]
        assert isinstance(leaf, LeafNode)
        if not leaf.delete_key(key):
            return False
        self._size -= 1
        if leaf is not self.root and self.merge_policy.underflows(
                leaf.n_entries(), self.order):
            if self.merge_policy is MERGE_AT_EMPTY:
                self.remove_empty_leaf(path)
            else:
                self._rebalance_path(path)
        return True

    # ------------------------------------------------------------------
    # merge-at-half rebalancing
    # ------------------------------------------------------------------
    def _rebalance_path(self, path: List[Node]) -> None:
        """Fix an underflow at the end of ``path`` by borrow or merge,
        propagating upward as merges remove routers."""
        depth = len(path) - 1
        while depth > 0:
            node = path[depth]
            if not self.merge_policy.underflows(node.n_entries(), self.order):
                break
            parent = path[depth - 1]
            assert isinstance(parent, InternalNode)
            self._fix_underflow(parent, node)
            self._merges += 1
            depth -= 1
        self._collapse_root()

    def _fix_underflow(self, parent: InternalNode, node: Node) -> None:
        i = parent.children.index(node)
        right = parent.children[i + 1] if i + 1 < len(parent.children) else None
        left = parent.children[i - 1] if i > 0 else None
        floor = self.merge_policy.min_entries(self.order)
        if right is not None and right.n_entries() > floor:
            self._borrow_from_right(parent, node, right, i)
        elif left is not None and left.n_entries() > floor:
            self._borrow_from_left(parent, left, node, i)
        elif right is not None:
            self._merge_pair(parent, node, right, i)
        elif left is not None:
            self._merge_pair(parent, left, node, i - 1)
        else:  # pragma: no cover - parent always has >= 2 children here
            raise BTreeError("underflowing node has no siblings")

    def _borrow_from_right(self, parent: InternalNode, node: Node,
                           right: Node, i: int) -> None:
        if node.is_leaf:
            assert isinstance(node, LeafNode) and isinstance(right, LeafNode)
            moved = right.keys.pop(0)
            node.keys.append(moved)
            parent.keys[i] = right.keys[0]
        else:
            assert isinstance(node, InternalNode) and isinstance(right, InternalNode)
            node.keys.append(parent.keys[i])
            parent.keys[i] = right.keys.pop(0)
            node.children.append(right.children.pop(0))
        node.high_key = parent.keys[i]

    def _borrow_from_left(self, parent: InternalNode, left: Node,
                          node: Node, i: int) -> None:
        if node.is_leaf:
            assert isinstance(node, LeafNode) and isinstance(left, LeafNode)
            moved = left.keys.pop()
            node.keys.insert(0, moved)
            parent.keys[i - 1] = moved
        else:
            assert isinstance(node, InternalNode) and isinstance(left, InternalNode)
            node.keys.insert(0, parent.keys[i - 1])
            parent.keys[i - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())
        left.high_key = parent.keys[i - 1]

    def _merge_pair(self, parent: InternalNode, left: Node, right: Node,
                    left_index: int) -> None:
        """Absorb ``right`` into ``left`` and drop the separating router."""
        separator = parent.keys[left_index]
        if left.is_leaf:
            assert isinstance(left, LeafNode) and isinstance(right, LeafNode)
            left.keys.extend(right.keys)
        else:
            assert isinstance(left, InternalNode) and isinstance(right, InternalNode)
            left.keys.append(separator)
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        left.right = right.right
        left.high_key = right.high_key
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        self._free(right)

    def _collapse_root(self) -> None:
        """Shrink the tree while the root is an internal node with a single
        child (both policies) — the inverse of ``grow_root``."""
        while (not self.root.is_leaf
               and self.root.n_entries() == 1):
            old = self.root
            assert isinstance(old, InternalNode)
            self.root = old.children[0]
            self._free(old)

    # ------------------------------------------------------------------
    # Link maintenance for removals
    # ------------------------------------------------------------------
    def _unlink_from_level(self, node: Node, ancestors: List[Node],
                           absorbed_left: bool) -> None:
        """Splice ``node`` out of its level's right-link chain.

        The left neighbour is located by walking down from the deepest
        ancestor that has a child left of ``node``'s subtree; if ``node``
        is the leftmost node of its level nothing points at it.

        ``absorbed_left`` says which sibling inherits the removed node's
        key range in the router structure: when ``node`` is not its
        parent's first child, deleting the router extends the *left*
        sibling's range upward, so the left neighbour's high key becomes
        the removed node's.  When ``node`` is the first child, the *right*
        sibling's range extends downward and the left neighbour's high key
        is unchanged.
        """
        left = self._left_neighbour(node, ancestors)
        if left is not None:
            left.right = node.right
            if absorbed_left:
                left.high_key = node.high_key

    def _left_neighbour(self, node: Node, ancestors: List[Node]) -> Optional[Node]:
        """Left neighbour of ``node`` on its level, or None if leftmost.

        First walks up the supplied ancestors looking for a subtree to
        the left.  The concurrent algorithms only pass the locked
        *suffix* of the access path, so when the walk is exhausted the
        left neighbour may still exist under a higher ancestor; in that
        case fall back to scanning the level's right-link chain (atomic
        in simulated time, and merge-at-empty removals are rare).
        """
        for depth in range(len(ancestors) - 1, -1, -1):
            parent = ancestors[depth]
            assert isinstance(parent, InternalNode)
            lower: Node = node if depth == len(ancestors) - 1 else ancestors[depth + 1]
            i = parent.children.index(lower)
            if i > 0:
                candidate = parent.children[i - 1]
                # Walk down the rightmost spine to node's level.
                while candidate.level > node.level:
                    assert isinstance(candidate, InternalNode)
                    candidate = candidate.children[-1]
                return candidate
        return self._scan_for_left_neighbour(node)

    def _scan_for_left_neighbour(self, node: Node) -> Optional[Node]:
        """Find the node whose right link points at ``node`` by walking
        its level's chain from the leftmost node; None when ``node`` is
        the leftmost of its level (nothing points at it)."""
        if self.root.level < node.level:  # pragma: no cover - defensive
            return None
        current: Node = self.root
        while current.level > node.level:
            assert isinstance(current, InternalNode)
            current = current.children[0]
        if current is node:
            return None
        while current is not None and current.right is not node:
            current = current.right  # type: ignore[assignment]
        return current
