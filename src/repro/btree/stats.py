"""Shape and occupancy statistics of a B-tree.

The analytical model needs the tree-shape inputs of paper Section 5:
per-level fanouts ``E(i)``, the root fanout, per-level node counts, and
the empirical probabilities that a node is insert-unsafe (full) or
delete-unsafe.  ``collect_statistics`` measures all of them from an actual
tree so the model can be driven either by theory (Corollary 1) or by
measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.btree.tree import BPlusTree

#: Asymptotic fill factor of a random B-tree (ln 2); the paper's 0.69N.
LN2_FILL = math.log(2.0)


@dataclass(frozen=True)
class LevelStatistics:
    """Occupancy summary for one tree level (leaves = level 1)."""

    level: int
    n_nodes: int
    mean_entries: float
    min_entries: int
    max_entries: int
    #: Fraction of the level's nodes that are insert-unsafe (full).
    fraction_full: float
    #: Fraction that are delete-unsafe under the tree's merge policy.
    fraction_delete_unsafe: float


@dataclass(frozen=True)
class TreeStatistics:
    """Whole-tree shape summary."""

    order: int
    height: int
    n_items: int
    levels: List[LevelStatistics] = field(default_factory=list)

    @property
    def root_fanout(self) -> float:
        """Entries in the root (children, or keys for a one-leaf tree)."""
        return self.levels[-1].mean_entries

    def fanout(self, level: int) -> float:
        """Mean entries of a node at ``level`` — the model's E(level)."""
        return self._by_level()[level].mean_entries

    def nodes_at(self, level: int) -> int:
        return self._by_level()[level].n_nodes

    def fill_factor(self) -> float:
        """Leaf-space utilization: mean leaf entries / order."""
        return self._by_level()[1].mean_entries / self.order

    def fraction_full(self, level: int) -> float:
        """Empirical Pr[F(level)]."""
        return self._by_level()[level].fraction_full

    def _by_level(self) -> Dict[int, LevelStatistics]:
        return {stat.level: stat for stat in self.levels}


def collect_statistics(tree: BPlusTree) -> TreeStatistics:
    """Measure per-level occupancy of ``tree`` by walking each level's
    right-link chain."""
    levels: List[LevelStatistics] = []
    for level in range(1, tree.height + 1):
        counts = [node.n_entries() for node in tree.level_nodes(level)]
        n_nodes = len(counts)
        total = sum(counts)
        full = sum(1 for c in counts if c >= tree.order)
        unsafe = sum(
            1 for c, node in zip(counts, tree.level_nodes(level))
            if node is not tree.root
            and tree.merge_policy.underflows(c - 1, tree.order)
        )
        levels.append(LevelStatistics(
            level=level,
            n_nodes=n_nodes,
            mean_entries=total / n_nodes if n_nodes else 0.0,
            min_entries=min(counts) if counts else 0,
            max_entries=max(counts) if counts else 0,
            fraction_full=full / n_nodes if n_nodes else 0.0,
            fraction_delete_unsafe=unsafe / n_nodes if n_nodes else 0.0,
        ))
    return TreeStatistics(
        order=tree.order,
        height=tree.height,
        n_items=len(tree),
        levels=levels,
    )


def expected_height(n_items: int, order: int,
                    fill: float = LN2_FILL) -> int:
    """Predicted height of a random B-tree of ``n_items`` keys.

    Uses the paper's random-B-tree rule: the effective fanout below the
    root is ``fill * order`` (~0.69 N).  The height is the smallest h such
    that one root can cover all the leaves.
    """
    if n_items <= 0:
        return 1
    effective = max(2.0, fill * order)
    height = 1
    coverage = effective  # keys reachable with a height-1 tree (one leaf)
    while coverage < n_items:
        coverage *= effective
        height += 1
    return height
