"""B+-tree nodes.

Leaves are at level 1 and the root at level ``h``, matching the paper's
indexing.  Every node carries a right link and a high key so that the same
tree structure supports both the lock-coupling algorithms (which ignore
the links) and the Link-type algorithm (which relies on them):

* ``right`` — the node's right neighbour on the same level, or None for
  the rightmost node.
* ``high_key`` — exclusive upper bound on the keys reachable through this
  node; None means "+infinity" (rightmost node of its level).

A Lehman-Yao descent that lands on a node whose ``high_key`` is <= the
search key has been overtaken by a split and must follow the right link
(a "link crossing", paper Figure 9).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro.errors import BTreeError

_node_ids = itertools.count(1)


class Node:
    """Common state for leaf and internal nodes."""

    __slots__ = ("node_id", "level", "keys", "right", "high_key", "lock", "dead")

    def __init__(self, level: int) -> None:
        self.node_id: int = next(_node_ids)
        self.level: int = level
        self.keys: List[int] = []
        self.right: Optional["Node"] = None
        self.high_key: Optional[int] = None
        #: Concurrency-control slot; the simulator attaches an RWLock here.
        self.lock = None
        #: Set when the node has been removed from the tree (merge-at-empty
        #: deallocation); descents that raced here must restart/relink.
        self.dead: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.level == 1

    def n_entries(self) -> int:
        """Number of occupancy-relevant entries (keys for a leaf,
        children for an internal node)."""
        raise NotImplementedError

    def covers(self, key: int) -> bool:
        """True when ``key`` falls inside this node's key range
        (i.e. no right-link chase is needed)."""
        return self.high_key is None or key < self.high_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.is_leaf else "Internal"
        return (f"<{kind} #{self.node_id} level={self.level} "
                f"n={self.n_entries()} high={self.high_key}>")


class LeafNode(Node):
    """Level-1 node holding the keys themselves (B+-tree: all keys live
    in the leaves)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(level=1)

    def n_entries(self) -> int:
        return len(self.keys)

    def contains(self, key: int) -> bool:
        i = bisect_left(self.keys, key)
        return i < len(self.keys) and self.keys[i] == key

    def insert_key(self, key: int) -> bool:
        """Insert ``key`` keeping order; returns False if already present."""
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return False
        self.keys.insert(i, key)
        return True

    def delete_key(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent."""
        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            del self.keys[i]
            return True
        return False


class InternalNode(Node):
    """A router node: ``keys`` are separators, ``children`` the subtrees.

    The invariant is ``len(children) == len(keys) + 1``; keys reachable
    through ``children[i]`` satisfy ``keys[i-1] <= k < keys[i]`` (with the
    usual open ends).
    """

    __slots__ = ("children",)

    def __init__(self, level: int) -> None:
        if level < 2:
            raise BTreeError(f"internal node cannot be at level {level}")
        super().__init__(level)
        self.children: List[Node] = []

    def n_entries(self) -> int:
        return len(self.children)

    def child_index_for(self, key: int) -> int:
        """Index of the child responsible for ``key``."""
        return bisect_right(self.keys, key)

    def child_for(self, key: int) -> Node:
        """The child responsible for ``key``."""
        return self.children[self.child_index_for(key)]

    def insert_router(self, separator: int, right_child: Node) -> None:
        """Insert the (separator, right-child) pair produced by a split.

        ``right_child`` becomes the subtree for keys >= ``separator`` up to
        the next separator; its left sibling (the node that split) must
        already be a child of this node.
        """
        i = bisect_left(self.keys, separator)
        if i < len(self.keys) and self.keys[i] == separator:
            raise BTreeError(f"duplicate separator {separator} in node "
                             f"#{self.node_id}")
        self.keys.insert(i, separator)
        self.children.insert(i + 1, right_child)

    def remove_child(self, child: Node) -> None:
        """Remove an (empty) child pointer and the separator next to it.

        Removing ``children[i]`` for ``i > 0`` discards ``keys[i-1]``; for
        ``i == 0`` it discards ``keys[0]`` (the remaining children still
        partition the key range correctly because the removed child was
        empty).
        """
        try:
            i = self.children.index(child)
        except ValueError:
            raise BTreeError(
                f"node #{child.node_id} is not a child of #{self.node_id}"
            ) from None
        del self.children[i]
        if self.keys:
            del self.keys[i - 1 if i > 0 else 0]
        # Removing the only child (merge-at-empty propagation) leaves the
        # node with no entries; the caller then removes this node too.
