"""B+-tree substrate.

The paper's simulator runs the concurrent algorithms "on actual B-trees"
(Section 4).  This subpackage provides that substrate:

* :class:`~repro.btree.node.LeafNode` / :class:`~repro.btree.node.InternalNode`
  — nodes carry right links and high keys at every level, so the same tree
  serves both the lock-coupling algorithms and the Link-type
  (Lehman-Yao) algorithm.
* :class:`~repro.btree.tree.BPlusTree` — a sequential B+-tree exposing both
  whole operations (``insert``/``delete``/``search``) and the structure
  modification primitives (``half_split``, ``complete_split``,
  ``split_path`` ...) that the concurrent algorithms invoke under locks.
* :mod:`~repro.btree.policies` — merge-at-empty vs merge-at-half
  restructuring (paper Section 3.2, "B-trees").
* :mod:`~repro.btree.builder` — the construction phase: build a tree from
  a random insert/delete mix before concurrent operation begins.
* :mod:`~repro.btree.validate` — structural invariant checker used by the
  property-based tests.
* :mod:`~repro.btree.stats` — per-level shape statistics (fanout, fill
  factor) feeding the analytical model's tree-shape inputs.
"""

from repro.btree.node import InternalNode, LeafNode, Node
from repro.btree.policies import MERGE_AT_EMPTY, MERGE_AT_HALF, MergePolicy
from repro.btree.tree import BPlusTree
from repro.btree.builder import build_tree
from repro.btree.stats import TreeStatistics, collect_statistics
from repro.btree.validate import check_invariants

__all__ = [
    "BPlusTree",
    "InternalNode",
    "LeafNode",
    "MERGE_AT_EMPTY",
    "MERGE_AT_HALF",
    "MergePolicy",
    "Node",
    "TreeStatistics",
    "build_tree",
    "check_invariants",
    "collect_statistics",
]
