"""Construction phase: build a B-tree from a random insert/delete mix.

The paper's simulator "first builds a B-tree out of a sequence of insert
and delete operations ... The proportion of insert to delete operations in
the construction phase is the same as the proportion in the concurrent
operation phase" (Section 4).  ``build_tree`` reproduces that: it applies
insert/delete operations drawn with the mix's update proportions until the
tree holds the requested number of items.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.btree.policies import MERGE_AT_EMPTY, MergePolicy
from repro.btree.tree import BPlusTree, NodeHook
from repro.errors import ConfigurationError

#: Default size of the integer key universe used by the experiments; large
#: enough that random inserts rarely collide.
DEFAULT_KEY_SPACE = 1 << 30


def build_tree(n_items: int, order: int = 13,
               insert_fraction: float = 5.0 / 7.0,
               merge_policy: MergePolicy = MERGE_AT_EMPTY,
               key_space: int = DEFAULT_KEY_SPACE,
               seed: int = 0,
               on_new_node: NodeHook = None,
               on_free_node: NodeHook = None,
               rng: Optional[random.Random] = None) -> BPlusTree:
    """Grow a tree to ``n_items`` keys with a mixed insert/delete stream.

    Parameters
    ----------
    n_items:
        Target number of keys (the paper's experiments use ~40,000).
    insert_fraction:
        Probability that a construction operation is an insert, i.e.
        ``q_i / (q_i + q_d)`` of the concurrent mix (paper default
        .5/.7 = 5/7).
    key_space:
        Keys are drawn uniformly from ``[0, key_space)``.
    seed / rng:
        Reproducibility controls; ``rng`` wins when both are given.

    Returns the populated :class:`~repro.btree.tree.BPlusTree`.
    """
    if n_items < 0:
        raise ConfigurationError(f"cannot build a tree of {n_items} items")
    if not 0.5 < insert_fraction <= 1.0:
        raise ConfigurationError(
            "insert_fraction must be in (0.5, 1.0] so the tree grows "
            f"(got {insert_fraction})"
        )
    rng = rng if rng is not None else random.Random(seed)
    tree = BPlusTree(order=order, merge_policy=merge_policy,
                     on_new_node=on_new_node, on_free_node=on_free_node)
    while len(tree) < n_items:
        key = rng.randrange(key_space)
        if rng.random() < insert_fraction:
            tree.insert(key)
        else:
            # Deleting a uniformly random key usually misses; aim at the
            # resident population half the time so deletes actually bite,
            # as in a mixed workload with re-reads of existing keys.
            if len(tree) > 0 and rng.random() < 0.5:
                key = _approximate_resident_key(tree, key)
            tree.delete(key)
    return tree


def _approximate_resident_key(tree: BPlusTree, probe: int) -> int:
    """Return a key actually present in the tree near ``probe``.

    Finds the leaf responsible for ``probe`` and picks one of its keys
    (or walks right to the first non-empty leaf).  O(height) instead of
    O(n), which keeps construction of 40k-item trees fast.
    """
    leaf = tree.find_leaf(probe)
    node = leaf
    while node is not None and not node.keys:
        node = node.right  # type: ignore[assignment]
    if node is None or not node.keys:
        return probe
    return node.keys[len(node.keys) // 2]
