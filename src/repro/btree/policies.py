"""Underflow (merge) policies.

The paper (Section 3.2, "B-trees") distinguishes:

* **merge-at-half** — the classical Wedekind B+-tree: a node that drops
  below half full is rebalanced (borrow from a sibling or merge with it).
* **merge-at-empty** — nodes are only removed when they become completely
  empty; no borrowing ever happens.  Johnson & Shasha (PODS '89) show this
  restructures far less often with only slightly lower space utilization
  when inserts outnumber deletes, which is why every algorithm in the
  paper uses it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MergePolicy:
    """A named underflow policy.

    Attributes
    ----------
    name:
        ``"merge-at-empty"`` or ``"merge-at-half"``.
    min_fill_numerator / min_fill_denominator:
        A non-root node underflows when it holds strictly fewer than
        ``ceil(capacity * num / den)`` entries.  Merge-at-empty uses 1
        entry as the floor (i.e. underflow only at zero entries).
    """

    name: str
    min_fill_numerator: int
    min_fill_denominator: int

    def min_entries(self, capacity: int) -> int:
        """Minimum number of entries a non-root node must retain."""
        if self.min_fill_numerator == 0:
            return 1  # merge-at-empty: a node survives with any entry
        # ceil division for the half-full floor
        num = capacity * self.min_fill_numerator
        return -(-num // self.min_fill_denominator)

    def underflows(self, n_entries: int, capacity: int) -> bool:
        """True when a non-root node with ``n_entries`` must restructure."""
        if self.min_fill_numerator == 0:
            return n_entries == 0
        return n_entries < self.min_entries(capacity)

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        # Unpickle back to the canonical singleton: the tree and the
        # simulator config compare policies by identity, and configs
        # cross process boundaries in the parallel sweep layer.
        canonical = _POLICIES.get(self.name)
        if canonical is not None and canonical == self:
            return (policy_by_name, (self.name,))
        return super().__reduce__()


MERGE_AT_EMPTY = MergePolicy("merge-at-empty", 0, 1)
MERGE_AT_HALF = MergePolicy("merge-at-half", 1, 2)

_POLICIES = {p.name: p for p in (MERGE_AT_EMPTY, MERGE_AT_HALF)}


def policy_by_name(name: str) -> MergePolicy:
    """Look up a policy by its canonical name."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown merge policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
