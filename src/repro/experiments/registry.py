"""Registry mapping experiment ids to their drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.experiments import extensions, figures
from repro.experiments.common import ExperimentTable

Runner = Callable[..., ExperimentTable]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper figure."""

    experiment_id: str
    figure: str
    title: str
    runner: Runner
    #: True when the paper's figure itself includes simulation points.
    has_simulation: bool

    def run(self, scale: float = 1.0, simulate: bool | None = None,
            ) -> ExperimentTable:
        if simulate is None:
            simulate = self.has_simulation
        return self.runner(scale=scale, simulate=simulate)


def _entry(experiment_id: str, figure: str, title: str,
           has_simulation: bool) -> Tuple[str, Experiment]:
    module = extensions if experiment_id.startswith("ext") else figures
    runner = getattr(module, experiment_id)
    return experiment_id, Experiment(experiment_id, figure, title, runner,
                                     has_simulation)


EXPERIMENTS: Dict[str, Experiment] = dict([
    _entry("fig03", "Figure 3",
           "Naive Lock-coupling insert response vs arrival rate", True),
    _entry("fig04", "Figure 4",
           "Naive Lock-coupling search response vs arrival rate", True),
    _entry("fig05", "Figure 5",
           "Optimistic Descent insert response vs arrival rate", True),
    _entry("fig06", "Figure 6",
           "Optimistic Descent search response vs arrival rate", True),
    _entry("fig07", "Figure 7",
           "Link-type insert response vs arrival rate", True),
    _entry("fig08", "Figure 8",
           "Link-type search response vs arrival rate", True),
    _entry("fig09", "Figure 9",
           "Link-type link crossings vs arrival rate", True),
    _entry("fig10", "Figure 10",
           "Root writer utilization, Naive Lock-coupling", True),
    _entry("fig11", "Figure 11",
           "Naive Lock-coupling max throughput vs disk cost", False),
    _entry("fig12", "Figure 12",
           "Insert response comparison of the three algorithms", False),
    _entry("fig13", "Figure 13",
           "Naive Lock-coupling rules of thumb vs analysis", False),
    _entry("fig14", "Figure 14",
           "Optimistic Descent rules of thumb vs analysis", False),
    _entry("fig15", "Figure 15",
           "Recovery comparison, N=13 (5 levels)", False),
    _entry("fig16", "Figure 16",
           "Recovery comparison, N=59 (4 levels)", False),
    _entry("ext01", "Extension: 2PL",
           "Two-Phase Locking added to the algorithm comparison", False),
    _entry("ext02", "Extension: LRU",
           "Maximum throughput vs LRU buffer size", False),
    _entry("ext03", "Extension: mix",
           "Maximum throughput vs search fraction of the mix", False),
    _entry("ext04", "Extension: MPL",
           "Closed-system throughput vs multiprogramming level", True),
    _entry("ext05", "Extension: skew",
           "Insert response vs hotspot access skew", True),
    _entry("ext06", "Extension: OLC",
           "Optimistic Lock-coupling added to the comparison", True),
    _entry("ext07", "Extension: workload",
           "Algorithm comparison under bursty / skewed / migrating "
           "workload traces", True),
    _entry("ext08", "Extension: cluster",
           "Sharded-cluster availability and goodput under injected "
           "chaos, robustness policies on vs off", True),
])


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment; raises ConfigurationError when unknown."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
