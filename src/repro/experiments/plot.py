"""ASCII charts for experiment tables.

The paper's deliverables are *figures*; this module renders a regenerated
series as a terminal chart so ``btree-perf run fig03 --plot`` shows the
curve's shape (flat, knee, blow-up) without leaving the shell.  Saturated
points (+inf) are drawn as ``^`` markers pinned to the top of the frame.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable

#: Marker characters assigned to series in column order.
MARKERS = "ox+*#@%&"


def render_chart(table: ExperimentTable,
                 y_columns: Optional[Sequence[str]] = None,
                 width: int = 64, height: int = 18) -> str:
    """Render ``table`` as an ASCII chart.

    The first column is the x axis; ``y_columns`` defaults to every
    other numeric column.  Returns the chart with a legend.
    """
    if width < 16 or height < 6:
        raise ConfigurationError("chart needs width >= 16 and height >= 6")
    if not table.rows:
        raise ConfigurationError("cannot plot an empty table")
    x_name = table.columns[0]
    names = list(y_columns) if y_columns is not None \
        else [c for c in table.columns[1:]]
    for name in names:
        if name not in table.columns:
            raise ConfigurationError(f"no column {name!r} in {table.columns}")

    xs = [float(v) for v in table.column(x_name)]
    series = {name: [float(v) for v in table.column(name)]
              for name in names}

    finite = [v for values in series.values() for v in values
              if math.isfinite(v)]
    if not finite:
        raise ConfigurationError("no finite points to plot")
    y_low, y_high = min(finite), max(finite)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_high = x_low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def x_pos(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def y_pos(y: float) -> int:
        frac = (y - y_low) / (y_high - y_low)
        return (height - 1) - round(frac * (height - 1))

    for index, name in enumerate(names):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(xs, series[name]):
            column = x_pos(x)
            if math.isinf(y):
                if grid[0][column] == " ":
                    grid[0][column] = "^"
                continue
            if math.isnan(y):
                continue
            row = y_pos(y)
            grid[row][column] = marker if grid[row][column] == " " else "*"

    lines = [f"{table.experiment_id}: {table.title}"]
    label_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:10.4g}"
        elif row_index == height - 1:
            label = f"{y_low:10.4g}"
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    left = f"{x_low:g}"
    right = f"{x_high:g}"
    padding = width - len(left) - len(right)
    lines.append(" " * (label_width + 1) + left + " " * max(1, padding)
                 + right)
    lines.append(" " * (label_width + 1) + f"x: {x_name}")
    legend = ", ".join(
        f"{MARKERS[i % len(MARKERS)]} = {name}"
        for i, name in enumerate(names))
    lines.append(" " * (label_width + 1) + legend
                 + "   (^ = saturated, * = overlap)")
    return "\n".join(lines) + "\n"
