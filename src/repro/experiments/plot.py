"""Chart rendering for experiment tables (terminal + raster backends).

The paper's deliverables are *figures*; this module renders a regenerated
series as a terminal chart so ``btree-perf run fig03 --plot`` shows the
curve's shape (flat, knee, blow-up) without leaving the shell.  Saturated
points (+inf) are drawn as ``^`` markers pinned to the top of the frame.

For publication output, :func:`save_figure_image` rasterizes the same
table through matplotlib under the shared publication theme
(:mod:`repro.report.theme`).  Matplotlib is an *optional* dependency
(``pip install 'repro[figures]'``): :func:`matplotlib_available`
reports whether the backend can be used, and the figure pipeline falls
back to its dependency-free SVG renderer when it cannot.  The backend
is forced to the headless ``Agg`` canvas **before** ``pyplot`` is ever
imported, so figure generation works in CI and over SSH where no
display exists, and every figure is closed after saving so a
full-registry run does not accumulate open figures.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentTable

#: Marker characters assigned to series in column order.
MARKERS = "ox+*#@%&"


def render_chart(table: ExperimentTable,
                 y_columns: Optional[Sequence[str]] = None,
                 width: int = 64, height: int = 18) -> str:
    """Render ``table`` as an ASCII chart.

    The first column is the x axis; ``y_columns`` defaults to every
    other numeric column.  Returns the chart with a legend.
    """
    if width < 16 or height < 6:
        raise ConfigurationError("chart needs width >= 16 and height >= 6")
    if not table.rows:
        raise ConfigurationError("cannot plot an empty table")
    x_name = table.columns[0]
    names = list(y_columns) if y_columns is not None \
        else [c for c in table.columns[1:]]
    for name in names:
        if name not in table.columns:
            raise ConfigurationError(f"no column {name!r} in {table.columns}")

    xs = [float(v) for v in table.column(x_name)]
    series = {name: [float(v) for v in table.column(name)]
              for name in names}

    finite = [v for values in series.values() for v in values
              if math.isfinite(v)]
    if not finite:
        raise ConfigurationError("no finite points to plot")
    y_low, y_high = min(finite), max(finite)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_high = x_low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def x_pos(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def y_pos(y: float) -> int:
        frac = (y - y_low) / (y_high - y_low)
        return (height - 1) - round(frac * (height - 1))

    for index, name in enumerate(names):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(xs, series[name]):
            column = x_pos(x)
            if math.isinf(y):
                if grid[0][column] == " ":
                    grid[0][column] = "^"
                continue
            if math.isnan(y):
                continue
            row = y_pos(y)
            grid[row][column] = marker if grid[row][column] == " " else "*"

    lines = [f"{table.experiment_id}: {table.title}"]
    label_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:10.4g}"
        elif row_index == height - 1:
            label = f"{y_low:10.4g}"
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    left = f"{x_low:g}"
    right = f"{x_high:g}"
    padding = width - len(left) - len(right)
    lines.append(" " * (label_width + 1) + left + " " * max(1, padding)
                 + right)
    lines.append(" " * (label_width + 1) + f"x: {x_name}")
    legend = ", ".join(
        f"{MARKERS[i % len(MARKERS)]} = {name}"
        for i, name in enumerate(names))
    lines.append(" " * (label_width + 1) + legend
                 + "   (^ = saturated, * = overlap)")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Matplotlib backend (optional, headless)
# ----------------------------------------------------------------------
_pyplot_module = None


def _pyplot():
    """Import pyplot with the headless ``Agg`` backend forced first.

    ``matplotlib.use("Agg")`` must run before the first pyplot import:
    importing pyplot binds the canvas backend, and on a display-less CI
    runner or SSH session the default can be an interactive backend
    that crashes on import.  Raises ConfigurationError when matplotlib
    is not installed.
    """
    global _pyplot_module
    if _pyplot_module is not None:
        return _pyplot_module
    try:
        import matplotlib
    except ImportError as error:
        raise ConfigurationError(
            "matplotlib is not installed; PNG output needs it "
            "(pip install 'repro[figures]') — the SVG and NDJSON "
            "outputs are dependency-free") from error
    matplotlib.use("Agg", force=True)
    import matplotlib.pyplot as plt

    _pyplot_module = plt
    return plt


def matplotlib_available() -> bool:
    """True when the optional matplotlib backend can be used."""
    try:
        _pyplot()
    except ConfigurationError:
        return False
    return True


def save_figure_image(table: ExperimentTable, path,
                      y_columns: Optional[Sequence[str]] = None,
                      theme=None) -> Path:
    """Rasterize ``table`` to ``path`` (PNG) under the publication theme.

    Same column conventions as :func:`render_chart`: first column is x,
    ``y_columns`` defaults to every other column, ``+inf`` points draw
    as up-arrow markers pinned to the panel top, NaN points are
    skipped.  The figure is always closed after saving (a full-registry
    run renders dozens of figures; leaking them grows memory without
    bound).
    """
    from repro.report.theme import PUBLICATION

    if theme is None:
        theme = PUBLICATION
    if not table.rows:
        raise ConfigurationError("cannot plot an empty table")
    x_name = table.columns[0]
    names = list(y_columns) if y_columns is not None \
        else [c for c in table.columns[1:]]
    for name in names:
        if name not in table.columns:
            raise ConfigurationError(f"no column {name!r} in {table.columns}")
    if not names:
        raise ConfigurationError("table has no series columns to plot")

    plt = _pyplot()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    xs = [float(v) for v in table.column(x_name)]
    with plt.rc_context(theme.rc_params()):
        fig, axis = plt.subplots(
            figsize=(theme.width / 100.0, theme.height / 100.0))
        try:
            finite_top = max(
                (float(v) for name in names for v in table.column(name)
                 if math.isfinite(float(v))), default=1.0)
            for index, name in enumerate(names):
                values = [float(v) for v in table.column(name)]
                color = theme.color(index)
                marker = theme.mpl_marker(index)
                keep = [(x, y) for x, y in zip(xs, values)
                        if math.isfinite(y)]
                if keep:
                    axis.plot([p[0] for p in keep], [p[1] for p in keep],
                              color=color, marker=marker, label=name)
                saturated = [x for x, y in zip(xs, values)
                             if math.isinf(y) and y > 0]
                if saturated:
                    axis.plot(saturated, [finite_top] * len(saturated),
                              linestyle="none", marker="^", color=color,
                              markersize=theme.marker_size * 2.5,
                              label=f"{name} (saturated)")
            axis.set_title(table.title)
            axis.set_xlabel(x_name)
            axis.legend(loc="best")
            fig.tight_layout()
            fig.savefig(target, format="png")
        finally:
            # Never leak figures across a full-registry run.
            plt.close(fig)
    return target
