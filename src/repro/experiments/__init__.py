"""Experiment drivers regenerating every figure of the paper.

Each ``figNN`` function in :mod:`repro.experiments.figures` reproduces the
corresponding paper figure as an :class:`~repro.experiments.common.ExperimentTable`
(the plotted series as rows).  ``scale`` shrinks the simulation effort for
quick runs; ``scale=1.0`` matches the paper's 10,000 measured operations
and 5 seeds.

Use :data:`~repro.experiments.registry.EXPERIMENTS` to enumerate them or
the ``btree-perf`` console script to run them from the shell.
"""

from repro.experiments.common import ExperimentTable
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.report import format_table, to_csv

__all__ = [
    "EXPERIMENTS",
    "ExperimentTable",
    "format_table",
    "get_experiment",
    "to_csv",
]
