"""Shared experiment plumbing: result tables and sweep helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms import AlgorithmSpec
from repro.model.params import ModelConfig
from repro.model.results import AlgorithmPrediction
from repro.parallel import SimTask, replication_tasks, run_batch
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import pooled_response_means
from repro.simulator.metrics import SimulationResult

Analyzer = Callable[..., AlgorithmPrediction]


def base_sim_config(spec: AlgorithmSpec | str, arrival_rate: float = 0.1,
                    **overrides) -> SimulationConfig:
    """Baseline simulator configuration for a registered algorithm.

    Experiment drivers build their simulation points from registry
    specs (or names) rather than hard-coded name literals, so the
    registry stays the single dispatch point (``docs/architecture.md``).
    """
    name = spec if isinstance(spec, str) else spec.name
    return SimulationConfig(algorithm=name, arrival_rate=arrival_rate,
                            **overrides)


@dataclass
class ExperimentTable:
    """The regenerated series of one paper figure.

    ``rows`` hold the plotted points; ``columns`` name them.  ``notes``
    carry caveats (substitutions, saturated settings, etc.) that the
    report printer and EXPERIMENTS.md surface alongside the numbers.
    """

    experiment_id: str
    title: str
    figure: str
    columns: List[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns")
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        """Extract one column as a list."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def note(self, text: str) -> None:
        self.notes.append(text)


def scaled_sim_config(base: SimulationConfig, scale: float) -> SimulationConfig:
    """Shrink a simulation configuration's effort by ``scale``."""
    if scale >= 1.0:
        return base
    return base.scaled(scale)


def sim_seeds(scale: float, full: int = 5) -> int:
    """Number of replication seeds at ``scale`` (paper uses 5)."""
    if scale >= 1.0:
        return full
    return max(1, min(full, int(round(full * scale * 2))))


def model_response(analyzer: Analyzer, config: ModelConfig, rate: float,
                   operation: str, **kwargs) -> float:
    """One analytical response-time point; +inf past the knee."""
    prediction = analyzer(config, rate, **kwargs)
    return prediction.response(operation)


def sweep_replications(base: SimulationConfig, rates: Sequence[float],
                       scale: float, seeds: Optional[int] = None,
                       ) -> List[List[SimulationResult]]:
    """Replication results for every rate, one fan-out for the grid.

    Flattens the whole ``(rate, seed)`` grid into a single
    :func:`~repro.parallel.run_batch` call, so a parallel execution
    context overlaps *all* of a figure's simulation runs instead of
    blocking point by point; returns the per-rate result lists in rate
    order (each in seed order, identical to serial execution).
    """
    n = seeds if seeds is not None else sim_seeds(scale)
    tasks: List[SimTask] = []
    for rate in rates:
        config = scaled_sim_config(base.with_rate(rate), scale)
        tasks.extend(replication_tasks(config, n))
    flat = run_batch(tasks)
    return [flat[i * n:(i + 1) * n] for i in range(len(rates))]


def _pooled_means(results: Sequence[Optional[SimulationResult]]
                  ) -> Dict[str, float]:
    # None entries are quarantined tasks from a resilient sweep: the
    # point survives on its remaining replications.
    means = pooled_response_means(results)
    means["_overflow_fraction"] = (
        sum(1 for r in results if r is not None and r.overflowed)
        / len(results))
    return means


def sweep_simulated_responses(base: SimulationConfig,
                              rates: Sequence[float], scale: float,
                              seeds: Optional[int] = None,
                              ) -> List[Dict[str, float]]:
    """Pooled simulated response means for every rate (one fan-out)."""
    return [_pooled_means(results)
            for results in sweep_replications(base, rates, scale, seeds)]


def simulated_response(base: SimulationConfig, rate: float, operation: str,
                       scale: float, seeds: Optional[int] = None,
                       ) -> Dict[str, float]:
    """Pooled simulated response means at ``rate`` (over several seeds)."""
    del operation  # kept for call-site readability; means cover all ops
    return sweep_simulated_responses(base, [rate], scale, seeds)[0]


def response_sweep(table: ExperimentTable, rates: Sequence[float],
                   analyzer: Analyzer, model_config: ModelConfig,
                   operation: str, sim_base: Optional[SimulationConfig],
                   scale: float, analyzer_kwargs: Optional[dict] = None,
                   ) -> None:
    """Fill ``table`` with (rate, model, sim) response-time rows.

    When ``sim_base`` is None only the analytical column is produced
    (columns must match).  The simulated points for the whole sweep are
    submitted as one batch, so under ``execution(jobs=N)`` they run
    concurrently.
    """
    kwargs = analyzer_kwargs or {}
    models = [model_response(analyzer, model_config, rate, operation,
                             **kwargs) for rate in rates]
    if sim_base is None:
        for rate, model in zip(rates, models):
            table.add(rate, _rounded(model))
        return
    sims = sweep_simulated_responses(sim_base, rates, scale)
    for rate, model, sim in zip(rates, models, sims):
        table.add(rate, _rounded(model), _rounded(sim[operation]))


def _rounded(value: float, digits: int = 3) -> float:
    if value is None or math.isnan(value):
        return math.nan
    if math.isinf(value):
        return math.inf
    return round(value, digits)
