"""Shared experiment plumbing: result tables and sweep helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.params import ModelConfig
from repro.model.results import AlgorithmPrediction
from repro.simulator.config import SimulationConfig
from repro.simulator.driver import pooled_response_means, run_replications

Analyzer = Callable[..., AlgorithmPrediction]


@dataclass
class ExperimentTable:
    """The regenerated series of one paper figure.

    ``rows`` hold the plotted points; ``columns`` name them.  ``notes``
    carry caveats (substitutions, saturated settings, etc.) that the
    report printer and EXPERIMENTS.md surface alongside the numbers.
    """

    experiment_id: str
    title: str
    figure: str
    columns: List[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns")
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        """Extract one column as a list."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def note(self, text: str) -> None:
        self.notes.append(text)


def scaled_sim_config(base: SimulationConfig, scale: float) -> SimulationConfig:
    """Shrink a simulation configuration's effort by ``scale``."""
    if scale >= 1.0:
        return base
    return base.scaled(scale)


def sim_seeds(scale: float, full: int = 5) -> int:
    """Number of replication seeds at ``scale`` (paper uses 5)."""
    if scale >= 1.0:
        return full
    return max(1, min(full, int(round(full * scale * 2))))


def model_response(analyzer: Analyzer, config: ModelConfig, rate: float,
                   operation: str, **kwargs) -> float:
    """One analytical response-time point; +inf past the knee."""
    prediction = analyzer(config, rate, **kwargs)
    return prediction.response(operation)


def simulated_response(base: SimulationConfig, rate: float, operation: str,
                       scale: float, seeds: Optional[int] = None,
                       ) -> Dict[str, float]:
    """Pooled simulated response means at ``rate`` (over several seeds)."""
    config = scaled_sim_config(base.with_rate(rate), scale)
    n = seeds if seeds is not None else sim_seeds(scale)
    results = run_replications(config, n_seeds=n)
    means = pooled_response_means(results)
    means["_overflow_fraction"] = (
        sum(1 for r in results if r.overflowed) / len(results))
    return means


def response_sweep(table: ExperimentTable, rates: Sequence[float],
                   analyzer: Analyzer, model_config: ModelConfig,
                   operation: str, sim_base: Optional[SimulationConfig],
                   scale: float, analyzer_kwargs: Optional[dict] = None,
                   ) -> None:
    """Fill ``table`` with (rate, model, sim) response-time rows.

    When ``sim_base`` is None only the analytical column is produced
    (columns must match).
    """
    kwargs = analyzer_kwargs or {}
    for rate in rates:
        model = model_response(analyzer, model_config, rate, operation,
                               **kwargs)
        if sim_base is None:
            table.add(rate, _rounded(model))
        else:
            sim = simulated_response(sim_base, rate, operation, scale)
            table.add(rate, _rounded(model), _rounded(sim[operation]))


def _rounded(value: float, digits: int = 3) -> float:
    if value is None or math.isnan(value):
        return math.nan
    if math.isinf(value):
        return math.inf
    return round(value, digits)
