"""Drivers for every figure of the paper's evaluation (Figures 3-16).

Each function regenerates the figure's plotted series as an
:class:`~repro.experiments.common.ExperimentTable`.  Conventions:

* ``scale`` shrinks simulation effort (measured operations and seeds);
  ``scale=1.0`` reproduces the paper's 10,000 operations over 5 seeds.
* ``simulate=False`` produces the analytical series only (Figures 11 and
  13-16 are analytical in the paper as well).
* Response times are in the paper's units (one root search = 1).

The default configuration is Section 5.3: order 13, ~40,000 items
(5 levels, root fanout ~6), 2 in-memory levels, disk cost 5, mix
(.3, .5, .2).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.algorithms import AlgorithmSpec, get_algorithm, names
from repro.model import (
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    analyze_optimistic_with_recovery,
    arrival_rate_for_root_utilization,
    max_throughput,
    paper_default_config,
    rule_of_thumb_1,
    rule_of_thumb_2,
    rule_of_thumb_3,
    rule_of_thumb_4,
)
from repro.model.link import expected_crossings_per_descent
from repro.model.params import CostModel, ModelConfig, TreeShape
from repro.errors import ConvergenceError
from repro.experiments.common import (
    ExperimentTable,
    base_sim_config,
    response_sweep,
    sweep_replications,
    sweep_simulated_responses,
)

#: The paper's three algorithms, resolved once through the registry.
_NAIVE = get_algorithm(names.NAIVE_LOCK_COUPLING)
_OPTIMISTIC = get_algorithm(names.OPTIMISTIC_DESCENT)
_LINK = get_algorithm(names.LINK_TYPE)

#: Arrival-rate grids spanning low load up to each algorithm's knee
#: (computed from the analytical maximum throughputs at D=5).
NAIVE_RATES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55)
OPTIMISTIC_RATES = (0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
LINK_RATES = (1.0, 2.0, 5.0, 10.0, 20.0, 30.0)
NODE_SIZES = (7, 13, 21, 31, 43, 59, 81, 101)


def _response_figure(experiment_id: str, figure: str, title: str,
                     spec: AlgorithmSpec, rates: Sequence[float],
                     operation: str, scale: float, simulate: bool,
                     ) -> ExperimentTable:
    columns = ["arrival_rate", f"model_{operation}_response"]
    if simulate:
        columns.append(f"sim_{operation}_response")
    table = ExperimentTable(experiment_id, title, figure, columns)
    sim_base = base_sim_config(spec) if simulate else None
    response_sweep(table, rates, spec.analyze, paper_default_config(),
                   operation, sim_base, scale)
    table.note("disk cost D=5, 2 in-memory levels, N=13, ~40k items, "
               "mix (.3,.5,.2)")
    return table


# ----------------------------------------------------------------------
# Figures 3-8: response time vs arrival rate, analysis vs simulation
# ----------------------------------------------------------------------
def fig03(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Naive Lock-coupling insert response time vs arrival rate."""
    return _response_figure("fig03", "Figure 3",
                            "Naive Lock-coupling insert response vs arrival rate",
                            _NAIVE, NAIVE_RATES, "insert", scale, simulate)


def fig04(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Naive Lock-coupling search response time vs arrival rate."""
    return _response_figure("fig04", "Figure 4",
                            "Naive Lock-coupling search response vs arrival rate",
                            _NAIVE, NAIVE_RATES, "search", scale, simulate)


def fig05(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Optimistic Descent insert response time vs arrival rate."""
    return _response_figure("fig05", "Figure 5",
                            "Optimistic Descent insert response vs arrival rate",
                            _OPTIMISTIC, OPTIMISTIC_RATES, "insert", scale, simulate)


def fig06(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Optimistic Descent search response time vs arrival rate."""
    return _response_figure("fig06", "Figure 6",
                            "Optimistic Descent search response vs arrival rate",
                            _OPTIMISTIC, OPTIMISTIC_RATES, "search", scale, simulate)


def fig07(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Link-type insert response time vs arrival rate."""
    return _response_figure("fig07", "Figure 7",
                            "Link-type insert response vs arrival rate",
                            _LINK, LINK_RATES, "insert", scale, simulate)


def fig08(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Link-type search response time vs arrival rate."""
    return _response_figure("fig08", "Figure 8",
                            "Link-type search response vs arrival rate",
                            _LINK, LINK_RATES, "search", scale, simulate)


# ----------------------------------------------------------------------
# Figure 9: link crossings are rare
# ----------------------------------------------------------------------
def fig09(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Link-crossing rate vs arrival rate (negligible-effect claim)."""
    config = paper_default_config(disk_cost=10.0)
    columns = ["arrival_rate", "model_crossings_per_1k_ops"]
    if simulate:
        columns += ["sim_crossings_per_1k_ops", "sim_ops"]
    table = ExperimentTable(
        "fig09", "Link-type link crossings vs arrival rate", "Figure 9",
        columns)
    sim_results = None
    if simulate:
        sim_base = base_sim_config(_LINK, costs=CostModel(disk_cost=10.0))
        sim_results = sweep_replications(sim_base, LINK_RATES, scale)
    for index, rate in enumerate(LINK_RATES):
        model_per_1k = round(
            1000.0 * expected_crossings_per_descent(config, rate), 3)
        if sim_results is None:
            table.add(rate, model_per_1k)
            continue
        results = sim_results[index]
        ops = sum(r.measured_operations for r in results)
        crossings = sum(r.link_crossings for r in results)
        per_1k = 1000.0 * crossings / ops if ops else math.nan
        table.add(rate, model_per_1k, round(per_1k, 3), ops)
    table.note("disk cost D=10 (as in the paper's Figure 9); crossings "
               "are rare at every sustainable load")
    return table


# ----------------------------------------------------------------------
# Figure 10: root writer utilization grows non-linearly
# ----------------------------------------------------------------------
def fig10(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Naive Lock-coupling root writer utilization vs arrival rate."""
    config = paper_default_config()
    columns = ["arrival_rate", "model_rho_w_root"]
    if simulate:
        columns.append("sim_rho_w_root")
    table = ExperimentTable(
        "fig10", "Root writer utilization, Naive Lock-coupling",
        "Figure 10", columns)
    sim_results = None
    if simulate:
        sim_base = base_sim_config(_NAIVE)
        sim_results = sweep_replications(sim_base, NAIVE_RATES, scale)
    for index, rate in enumerate(NAIVE_RATES):
        prediction = _NAIVE.analyze(config, rate)
        rho = prediction.root_writer_utilization
        rho = math.inf if math.isinf(rho) else round(rho, 4)
        if sim_results is None:
            table.add(rate, rho)
            continue
        usable = [r.root_writer_utilization for r in sim_results[index]
                  if not r.overflowed and not math.isnan(
                      r.root_writer_utilization)]
        sim_rho = sum(usable) / len(usable) if usable else math.inf
        table.add(rate, rho, round(sim_rho, 4) if usable else math.inf)
    table.note("the simulated value samples writer *presence* (holding or "
               "queued) at the root lock, a slight over-estimate of the "
               "model's aggregate-customer rho_w")
    table.note("going from rho_w=.5 to rho_w=1 takes less than a 50% "
               "arrival-rate increase (the cost of lock-coupling)")
    return table


# ----------------------------------------------------------------------
# Figure 11: maximum throughput vs disk cost
# ----------------------------------------------------------------------
def fig11(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Naive Lock-coupling maximum throughput vs disk access cost."""
    del scale, simulate  # analytical figure
    table = ExperimentTable(
        "fig11", "Naive Lock-coupling maximum throughput vs disk cost",
        "Figure 11", ["disk_cost", "max_throughput"])
    for disk_cost in (1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 20.0):
        config = paper_default_config(disk_cost=disk_cost)
        table.add(disk_cost,
                  round(max_throughput(_NAIVE.analyze, config), 4))
    table.note("locking nodes two levels below the root (the first "
               "on-disk level) dominates as D grows")
    return table


# ----------------------------------------------------------------------
# Figure 12: the three algorithms compared
# ----------------------------------------------------------------------
def fig12(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Insert response comparison: Naive vs Optimistic vs Link-type."""
    config = paper_default_config()
    columns = ["arrival_rate", "naive_insert", "optimistic_insert",
               "link_insert"]
    if simulate:
        columns += ["sim_naive_insert", "sim_optimistic_insert",
                    "sim_link_insert"]
    table = ExperimentTable(
        "fig12", "Comparison of insert response times (D=5)",
        "Figure 12", columns)
    rates = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
    specs = (_NAIVE, _OPTIMISTIC, _LINK)
    sim_means = None
    if simulate:
        sim_means = [sweep_simulated_responses(base_sim_config(spec), rates,
                                               scale)
                     for spec in specs]
    for index, rate in enumerate(rates):
        row = [rate]
        for spec in specs:
            value = spec.analyze(config, rate).response("insert")
            row.append(math.inf if math.isinf(value) else round(value, 3))
        if sim_means is not None:
            for per_rate in sim_means:
                means = per_rate[index]
                row.append(math.inf if means["_overflow_fraction"] == 1.0
                           else round(means["insert"], 3))
        table.add(*row)
    table.note("Link-type > Optimistic Descent > Naive Lock-coupling, "
               "each by a wide margin (paper Section 5.3)")
    return table


# ----------------------------------------------------------------------
# Figures 13/14: rules of thumb vs the full analysis
# ----------------------------------------------------------------------
def _thumb_figure(experiment_id: str, figure: str, title: str,
                  analyzer, full_rule, limit_rule) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id, title, figure,
        ["node_size", "disk_cost", "analytical_rate_rho_half",
         "rule_of_thumb", "limit_rule_of_thumb"])
    for disk_cost in (1.0, 10.0):
        for order in NODE_SIZES:
            config = paper_default_config(order=order, disk_cost=disk_cost)
            try:
                analytical = arrival_rate_for_root_utilization(
                    analyzer, config, target=0.5)
            except ConvergenceError:
                analytical = math.inf
            table.add(order, disk_cost, round(analytical, 4),
                      round(full_rule(config), 4),
                      round(limit_rule(config), 4))
    table.note("tree shape re-idealised per node size at ~40k items; "
               "rates in units of 1/root-search")
    return table


def fig13(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Rule of Thumb 1 and limit Rule 2 vs the Naive LC analysis."""
    del scale, simulate
    table = _thumb_figure(
        "fig13", "Figure 13",
        "Naive Lock-coupling rule-of-thumb vs analytical lambda(rho=.5)",
        _NAIVE.analyze, rule_of_thumb_1,
        lambda config: rule_of_thumb_2(config))
    table.note("the effective maximum rate is roughly independent of the "
               "node size (Rule 2)")
    return table


def fig14(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Rule of Thumb 3 and limit Rule 4 vs the Optimistic analysis."""
    del scale, simulate
    table = _thumb_figure(
        "fig14", "Figure 14",
        "Optimistic Descent rule-of-thumb vs analytical lambda(rho=.5)",
        _OPTIMISTIC.analyze, rule_of_thumb_3, rule_of_thumb_4)
    table.note("the effective maximum rate grows ~ N/log^2(N) with the "
               "node size (Rule 4): make nodes large for Optimistic Descent")
    return table


# ----------------------------------------------------------------------
# Figures 15/16: recovery policies
# ----------------------------------------------------------------------
def _recovery_figure(experiment_id: str, figure: str, order: int,
                     shape: Optional[TreeShape], rates: Sequence[float],
                     scale: float, simulate: bool) -> ExperimentTable:
    config = paper_default_config(order=order, disk_cost=10.0)
    if shape is not None:
        config = ModelConfig(mix=config.mix, costs=config.costs,
                             shape=shape, order=order)
    columns = ["arrival_rate", "no_recovery_insert",
               "leaf_only_insert", "naive_recovery_insert"]
    if simulate:
        columns += ["sim_no_recovery", "sim_leaf_only", "sim_naive_recovery"]
    table = ExperimentTable(
        experiment_id,
        f"Recovery comparison, Optimistic Descent insert response, N={order}",
        figure, columns)
    sim_means = None
    if simulate:
        sim_means = [
            sweep_simulated_responses(
                base_sim_config(_OPTIMISTIC, order=order,
                          costs=CostModel(disk_cost=10.0),
                          recovery=recovery, t_trans=100.0),
                rates, scale)
            for recovery in ("no-recovery", "leaf-only-recovery",
                             "naive-recovery")]
    for index, rate in enumerate(rates):
        row = [rate]
        for policy in (NO_RECOVERY, LEAF_ONLY_RECOVERY, NAIVE_RECOVERY):
            prediction = analyze_optimistic_with_recovery(
                config, rate, policy=policy, t_trans=100.0)
            value = prediction.response("insert")
            row.append(math.inf if math.isinf(value) else round(value, 3))
        if sim_means is not None:
            for per_rate in sim_means:
                means = per_rate[index]
                row.append(math.inf if means["_overflow_fraction"] == 1.0
                           else round(means["insert"], 3))
        table.add(*row)
    table.note("D=10, T_trans=100; leaf-only recovery costs almost "
               "nothing over no recovery, naive recovery is far worse")
    if simulate:
        table.note("the simulator's naive recovery is strict 2PL (every "
                   "W lock retained), harsher than the analytical "
                   "Pr[F(i)]*T_trans approximation; see DESIGN.md")
    return table


def fig15(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Recovery comparison with the paper's N=13, 5-level tree."""
    rates = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5)
    return _recovery_figure("fig15", "Figure 15", 13, None, rates,
                            scale, simulate)


def fig16(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Recovery comparison with N=59 and a 4-level tree.

    A 40k-item tree of order 59 only reaches 3 levels at the ln 2 fill
    factor; the paper states 4 levels, which we realise with ~500k items
    (root fanout ~7.4) — see EXPERIMENTS.md.
    """
    shape = TreeShape.ideal(500_000, 59)
    rates = (0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
    table = _recovery_figure("fig16", "Figure 16", 59, shape, rates,
                             scale, simulate=False)
    del scale, simulate  # the 500k-item tree is analytical only
    table.note("paper states N=59 gives 4 levels; at ln2 fill that needs "
               ">67k items, so the shape uses 500k items (height 4, "
               "root fanout ~7)")
    return table
