"""The paper's in-text quantitative claims as runnable checks.

The evaluation section makes several statements that have no figure of
their own.  Each :class:`Claim` here evaluates one of them from the
analytical framework and reports the measured quantity next to the
paper's wording, so ``btree-perf claims`` produces the auditable summary
that EXPERIMENTS.md quotes (and the integration tests assert).

The claims audit is folded into the unified reproduction report:
``btree-perf figures`` embeds every claim's verdict in its markdown +
JSON output and fails the run when one breaks (``repro.report``,
``docs/reproduction.md``).  The standalone ``btree-perf claims``
command remains as a quick analytical check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.model import (
    LEAF_ONLY_RECOVERY,
    NAIVE_RECOVERY,
    NO_RECOVERY,
    analyze_link,
    analyze_lock_coupling,
    analyze_optimistic,
    analyze_optimistic_with_recovery,
    analyze_two_phase,
    arrival_rate_for_root_utilization,
    max_throughput,
    paper_default_config,
)
from repro.model.link import link_crossing_probability


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    section: str
    statement: str
    measured: str
    holds: bool


def _claim_ordering() -> ClaimResult:
    config = paper_default_config()
    naive = max_throughput(analyze_lock_coupling, config)
    optimistic = max_throughput(analyze_optimistic, config)
    link = max_throughput(analyze_link, config)
    return ClaimResult(
        "ordering", "Section 5.3",
        "Link-type >> Optimistic Descent >> Naive Lock-coupling",
        f"max throughputs {naive:.3f} / {optimistic:.3f} / {link:.1f} "
        f"({optimistic / naive:.1f}x and {link / optimistic:.0f}x)",
        optimistic > 2 * naive and link > 10 * optimistic,
    )


def _claim_rho_half() -> ClaimResult:
    config = paper_default_config()
    half = arrival_rate_for_root_utilization(analyze_lock_coupling, config,
                                             target=0.5)
    peak = max_throughput(analyze_lock_coupling, config)
    increase = (peak - half) / half
    return ClaimResult(
        "rho-half-to-one", "Section 5.3 / Figure 10",
        "rho_w = .5 to rho_w = 1 takes less than a 50% rate increase",
        f"lambda(.5) = {half:.3f}, max = {peak:.3f}: +{increase:.1%}",
        increase < 0.5,
    )


def _claim_node_size_rules() -> ClaimResult:
    small, large = 13, 101
    naive = [arrival_rate_for_root_utilization(
        analyze_lock_coupling, paper_default_config(order=n), target=0.5)
        for n in (small, large)]
    optimistic = [arrival_rate_for_root_utilization(
        analyze_optimistic, paper_default_config(order=n), target=0.5)
        for n in (small, large)]
    naive_ratio = naive[1] / naive[0]
    optimistic_ratio = optimistic[1] / optimistic[0]
    return ClaimResult(
        "node-size-rules", "Section 6",
        "Naive LC is insensitive to node size; Optimistic Descent gains "
        "~N/log^2 N",
        f"N 13->101: Naive x{naive_ratio:.2f}, Optimistic "
        f"x{optimistic_ratio:.2f}",
        naive_ratio < 2.5 and optimistic_ratio > 3.0,
    )


def _claim_link_crossings() -> ClaimResult:
    config = paper_default_config(disk_cost=10.0)
    worst = max(link_crossing_probability(config, rate, level=1)
                for rate in (1.0, 10.0, 30.0))
    return ClaimResult(
        "link-crossings", "Section 5.1 / Figure 9",
        "link crossing is rare and its performance effect negligible",
        f"worst per-descent leaf crossing probability {worst:.2e}",
        worst < 0.02,
    )


def _claim_recovery() -> ClaimResult:
    config = paper_default_config(disk_cost=10.0)
    peaks = {
        policy.name: max_throughput(
            analyze_optimistic_with_recovery, config, policy=policy,
            t_trans=100.0)
        for policy in (NO_RECOVERY, LEAF_ONLY_RECOVERY, NAIVE_RECOVERY)
    }
    leaf_share = peaks["leaf-only-recovery"] / peaks["no-recovery"]
    naive_share = peaks["naive-recovery"] / peaks["no-recovery"]
    return ClaimResult(
        "recovery", "Section 7",
        "Leaf-only recovery ~ no recovery; Naive recovery significantly "
        "worse",
        f"capacity retained: leaf-only {leaf_share:.0%}, naive "
        f"{naive_share:.0%}",
        leaf_share > 0.75 and naive_share < 0.6,
    )


def _claim_two_phase() -> ClaimResult:
    config = paper_default_config()
    two_phase = max_throughput(analyze_two_phase, config)
    naive = max_throughput(analyze_lock_coupling, config)
    return ClaimResult(
        "restrictive-serialization", "Section 1 (extension)",
        "restrictive serialization on the index causes a bottleneck",
        f"strict 2PL max {two_phase:.4f} vs Naive LC {naive:.3f} "
        f"({naive / two_phase:.1f}x)",
        naive > 8 * two_phase,
    )


_CLAIMS: Tuple[Callable[[], ClaimResult], ...] = (
    _claim_ordering,
    _claim_rho_half,
    _claim_node_size_rules,
    _claim_link_crossings,
    _claim_recovery,
    _claim_two_phase,
)


def evaluate_claims() -> List[ClaimResult]:
    """Evaluate every registered claim (analytical; a few seconds)."""
    return [claim() for claim in _CLAIMS]


def format_claims(results: List[ClaimResult]) -> str:
    lines = ["In-text claims of the paper, evaluated", "=" * 40]
    for r in results:
        status = "HOLDS " if r.holds else "FAILS "
        lines.append(f"[{status}] {r.claim_id} ({r.section})")
        lines.append(f"    claim:    {r.statement}")
        lines.append(f"    measured: {r.measured}")
    holding = sum(1 for r in results if r.holds)
    lines.append(f"{holding}/{len(results)} claims hold")
    return "\n".join(lines) + "\n"


def main() -> int:  # pragma: no cover - pointer shim
    """Deprecated entry point; claims now ride in the unified report."""
    import sys

    print("note: the claims audit is folded into the validation report "
          "of `btree-perf figures` (docs/reproduction.md); running the "
          "standalone evaluation.", file=sys.stderr)
    results = evaluate_claims()
    sys.stdout.write(format_claims(results))
    return 0 if all(r.holds for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
