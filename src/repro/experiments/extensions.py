"""Extension experiments (the paper's promised full-version results).

* ``ext01`` — Two-Phase Locking vs the paper's three algorithms: the
  response/throughput spectrum from fully restrictive serialization to
  link-based concurrency.
* ``ext02`` — LRU buffer-pool sweep: maximum throughput vs buffer
  frames, locating the knee at "top levels cached".
* ``ext03`` — operation-mix sensitivity: how each algorithm's maximum
  throughput responds to the search fraction (the lock-coupling
  algorithms live and die by the writer share; the Link-type algorithm
  barely notices).
* ``ext04`` — closed-system throughput vs multiprogramming level: the
  paper's Section 1 scenario ("multiprocessing level around 100") run
  directly — lock-coupling plateaus at its Theorem 2 limit while the
  Link-type algorithm keeps scaling.
* ``ext05`` — access skew: an 80/20-style hotspot concentrates traffic
  on one subtree; the per-level thinning assumption (Proposition 2)
  weakens, hitting the lock-coupling algorithms hardest.
* ``ext06`` — Optimistic Lock-coupling vs the paper's three algorithms:
  the registry's extensibility proof — a variant added entirely as a
  spec + ops module (see ``docs/architecture.md``) swept head-to-head.
* ``ext07`` — workload sensitivity: the same comparison re-run under
  the pluggable workload subsystem's non-stationary and skewed traces
  (MMPP bursts, Zipf skew, a migrating hotspot, a flash crowd — see
  ``docs/workloads.md``), isolating traffic *shape* from volume.
* ``ext08`` — cluster chaos: a range-partitioned cluster of B-trees
  behind a router (:mod:`repro.cluster`) swept over shard count x
  injected fault rate at ~80-500x the paper's arrival rates, comparing
  availability/goodput degradation with the robustness policies
  (retries, hedged reads, circuit breaker) enabled vs disabled, and
  validating the analytical router+shard composition against the
  cluster simulator (see ``docs/robustness.md``).

The comparison sets are derived from :mod:`repro.algorithms` (specs and
capability flags), never from hard-coded name literals.
"""

from __future__ import annotations

import math

from repro.algorithms import all_algorithms, get_algorithm, names
from repro.errors import ConvergenceError
from repro.experiments.common import (
    ExperimentTable,
    base_sim_config,
    sweep_simulated_responses,
)
from repro.model import (
    max_throughput,
    paper_default_config,
)
from repro.model.buffering import buffered_config, pages_for_top_levels
from repro.model.params import OperationMix
from repro.parallel import SimTask, run_batch

_NAIVE = get_algorithm(names.NAIVE_LOCK_COUPLING)
_OPTIMISTIC = get_algorithm(names.OPTIMISTIC_DESCENT)
_LINK = get_algorithm(names.LINK_TYPE)
_TWO_PHASE = get_algorithm(names.TWO_PHASE_LOCKING)
_OLC = get_algorithm(names.OPTIMISTIC_LOCK_COUPLING)

#: Specs with an analytical model, from strictest to most concurrent.
_COMPARED = (_TWO_PHASE, _NAIVE, _OPTIMISTIC, _LINK)


def ext01(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Two-Phase Locking in the Figure 12 comparison."""
    config = paper_default_config()
    columns = ["arrival_rate"] + [f"{spec.short}_insert"
                                  for spec in _COMPARED]
    if simulate:
        columns.append("sim_two_phase_insert")
    table = ExperimentTable(
        "ext01",
        "Insert response with Two-Phase Locking added to the comparison",
        "Extension (full version): Two-Phase Locking", columns)
    rates = (0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.3, 1.0)
    sim_means = None
    if simulate:
        base = base_sim_config(_TWO_PHASE)
        sim_means = sweep_simulated_responses(base, rates, scale)
    for index, rate in enumerate(rates):
        row = [rate]
        for spec in _COMPARED:
            value = spec.analyze(config, rate).response("insert")
            row.append(math.inf if math.isinf(value) else round(value, 3))
        if sim_means is not None:
            means = sim_means[index]
            row.append(math.inf if means["_overflow_fraction"] == 1.0
                       else round(means["insert"], 3))
        table.add(*row)
    peaks = {spec.short: round(max_throughput(spec.analyze, config), 4)
             for spec in _COMPARED}
    table.note(f"maximum throughputs: {peaks} — strict 2PL costs an order "
               "of magnitude against even Naive Lock-coupling")
    return table


def ext02(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Maximum throughput vs LRU buffer-pool size."""
    del scale, simulate  # analytical sweep
    config = paper_default_config(disk_cost=10.0)
    table = ExperimentTable(
        "ext02",
        "Maximum throughput vs LRU buffer frames (raw disk cost 10)",
        "Extension (full version): LRU buffering",
        ["buffer_frames", "naive_max_throughput",
         "optimistic_max_throughput"])
    top2 = pages_for_top_levels(config.shape, 2)
    for frames in (0.0, 2.0, round(top2, 1), 20.0, 60.0, 200.0, 600.0,
                   6000.0):
        buffered = buffered_config(config, frames)
        try:
            naive = round(max_throughput(_NAIVE.analyze, buffered), 4)
        except ConvergenceError:  # pragma: no cover - bounded loads
            naive = math.inf
        optimistic = round(max_throughput(_OPTIMISTIC.analyze, buffered), 4)
        table.add(frames, naive, optimistic)
    table.note(f"~{top2:.0f} frames cache the top two levels — the knee "
               "of the curve and the paper's fixed setting")
    return table


def ext03(scale: float = 1.0, simulate: bool = False) -> ExperimentTable:
    """Maximum throughput vs search fraction of the mix.

    Updates keep the paper's 5:2 insert:delete split; ``q_s`` sweeps
    from update-heavy to read-mostly.
    """
    del scale, simulate  # analytical sweep
    table = ExperimentTable(
        "ext03",
        "Maximum throughput vs search fraction q_s (updates split 5:2)",
        "Extension: operation-mix sensitivity",
        ["q_search"] + [f"{spec.short}_max_throughput"
                        for spec in _COMPARED])
    for q_search in (0.05, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95):
        q_insert = (1.0 - q_search) * 5.0 / 7.0
        mix = OperationMix(q_search=q_search, q_insert=q_insert,
                           q_delete=1.0 - q_search - q_insert)
        config = paper_default_config(mix=mix)
        row = [q_search]
        for spec in _COMPARED:
            row.append(round(max_throughput(spec.analyze, config), 4))
        table.add(*row)
    table.note("every algorithm is writer-bound, so capacity scales "
               "roughly with 1/(1-q_s); the ordering and relative "
               "margins are mix-invariant")
    return table


#: Multiprogramming levels for the closed-system sweep.
_MPL_LEVELS = (1, 2, 5, 10, 25, 50, 100)


def _closed_specs():
    """The algorithms with a closed-system mode, in registry order."""
    return tuple(spec for spec in all_algorithms() if spec.supports_closed)


def ext04(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Closed-system throughput and search response vs MPL, with the
    interactive response-time-law prediction alongside the simulation."""
    from repro.model.closed import closed_system_prediction
    from repro.model.validation import measured_model_config
    specs = _closed_specs()
    table = ExperimentTable(
        "ext04",
        "Closed-system throughput / search response vs multiprogramming "
        "level",
        "Extension: closed system (Section 1 scenario)",
        ["mpl"] + [f"{spec.short}_throughput" for spec in specs]
                + [f"{spec.short}_search_response" for spec in specs]
                + [f"{specs[0].short}_model_throughput"])
    del simulate  # inherently simulated
    n_ops = max(300, int(1_500 * scale))

    def sim_config(spec, mpl: int):
        # The warm-up must let the closed system's backlog reach steady
        # state, which takes longer at higher populations; otherwise the
        # draining backlog inflates the measured throughput.
        warmup = max(50, n_ops // 10, 5 * mpl)
        return base_sim_config(
            spec, arrival_rate=1.0, n_items=8_000,
            n_operations=n_ops, warmup_operations=warmup, seed=17)

    model_config = measured_model_config(sim_config(specs[0], 1))
    # The whole (mpl, algorithm) grid fans out as one batch of closed
    # tasks; run_batch preserves submission order.
    tasks = [SimTask(sim_config(spec, mpl), kind="closed", mpl=mpl)
             for mpl in _MPL_LEVELS for spec in specs]
    flat = iter(run_batch(tasks))
    for mpl in _MPL_LEVELS:
        throughputs = []
        responses = []
        for _spec in specs:
            result = next(flat)
            throughputs.append(round(result.throughput, 4))
            responses.append(round(result.mean_response["search"], 3))
        predicted = closed_system_prediction(specs[0].analyze,
                                             model_config, mpl)
        table.add(mpl, *throughputs, *responses,
                  round(predicted.throughput, 4))
    table.note("naive lock-coupling plateaus once the root saturates "
               "(response then grows linearly with MPL); the link-type "
               "algorithm scales on toward the service limit")
    table.note(f"{specs[0].short}_model_throughput is the interactive "
               "response-time-law fixed point over the open analysis "
               "(repro.model.closed)")
    return table


def ext05(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Simulated insert response vs hotspot skew (hot 20% of keys)."""
    del simulate  # inherently simulated
    specs = (_NAIVE, _LINK)
    table = ExperimentTable(
        "ext05",
        "Insert response vs access skew (hot 20% of the key space)",
        "Extension: hotspot workload",
        ["hot_probability"] + [f"{spec.short}_insert" for spec in specs]
                            + [f"{specs[0].short}_rho_root"])
    # The skew signal needs enough operations to resolve; keep a higher
    # floor than the other sweeps.
    n_ops = max(800, int(1_500 * scale))
    skews = (0.2, 0.5, 0.8, 0.95)
    tasks = [
        SimTask(base_sim_config(
            spec, arrival_rate=0.35, n_items=8_000,
            n_operations=n_ops, warmup_operations=max(20, n_ops // 10),
            seed=23, key_distribution="hotspot",
            hot_fraction=0.2, hot_probability=hot_probability))
        for hot_probability in skews for spec in specs]
    flat = iter(run_batch(tasks))
    for hot_probability in skews:
        row = [hot_probability]
        rho = math.nan
        for spec in specs:
            result = next(flat)
            row.append(math.inf if result.overflowed
                       else round(result.mean_response["insert"], 3))
            if spec.coupling_updates:
                # Root writer utilization is the telling statistic for
                # algorithms whose updates W-couple from the root.
                rho = round(result.root_writer_utilization, 4)
        row.append(rho)
        table.add(*row)
    table.note("hot_probability 0.2 over a 0.2 fraction is uniform; "
               "rising skew funnels descents through one subtree, "
               "raising lower-level contention under lock-coupling")
    return table


def ext06(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Optimistic Lock-coupling vs the paper's three core algorithms.

    The head-to-head sweep for the registry's extensibility proof: the
    hybrid variant ships entirely as a spec + ops module and is compared
    here without any change to the core dispatch sites.
    """
    del simulate  # inherently simulated
    specs = _closed_specs() + (_OLC,)
    table = ExperimentTable(
        "ext06",
        "Insert response with Optimistic Lock-coupling in the comparison",
        "Extension: optimistic lock-coupling variant",
        ["arrival_rate"] + [f"{spec.short}_insert" for spec in specs])
    rates = (0.05, 0.15, 0.3, 0.5)
    n_ops = max(400, int(2_000 * scale))
    tasks = [
        SimTask(base_sim_config(
            spec, arrival_rate=rate, n_items=8_000,
            n_operations=n_ops,
            warmup_operations=max(40, n_ops // 10), seed=11))
        for rate in rates for spec in specs]
    flat = iter(run_batch(tasks))
    for rate in rates:
        row = [rate]
        for _spec in specs:
            result = next(flat)
            row.append(math.inf if result.overflowed
                       else round(result.mean_response["insert"], 3))
        table.add(*row)
    table.note("the hybrid R-couples the upper levels and W-couples only "
               "the bottom two, so it tracks optimistic descent at low "
               "load without the full-restart penalty when leaves split")
    return table


def _ext07_traces():
    """The swept workload traces: (numeric id, name, spec).

    Numeric ids keep the x column plottable; the id -> name mapping is
    emitted as a table note.  Trace 0 is the stationary/uniform
    baseline every other trace is judged against.
    """
    from repro.workload import (
        MMPPArrivals,
        MigratingHotspotKeysSpec,
        SpikeArrivals,
        WorkloadSpec,
        ZipfKeysSpec,
    )
    return (
        (0, "stationary-uniform", WorkloadSpec()),
        (1, "mmpp-burst", WorkloadSpec(arrival=MMPPArrivals())),
        (2, "zipf-skew", WorkloadSpec(keys=ZipfKeysSpec(theta=0.9))),
        (3, "migrating-hotspot",
         WorkloadSpec(keys=MigratingHotspotKeysSpec(velocity=5e-4))),
        (4, "flash-spike",
         WorkloadSpec(arrival=SpikeArrivals(multiplier=6.0, start=500.0,
                                            duration=1500.0))),
    )


def ext07(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Workload sensitivity: the algorithm comparison re-run under the
    pluggable workload subsystem's non-stationary / skewed traces.

    Each trace holds the time-averaged offered load at (or near) the
    stationary baseline's, so the column deltas isolate the *shape* of
    the traffic — burstiness, key skew, a moving hotspot, a flash
    crowd — from its volume (see ``docs/workloads.md``).
    """
    del simulate  # inherently simulated
    specs = _closed_specs() + (_OLC,)
    traces = _ext07_traces()
    table = ExperimentTable(
        "ext07",
        "Insert response by workload trace (all algorithms)",
        "Extension: workload sensitivity",
        ["trace"] + [f"{spec.short}_insert" for spec in specs])
    n_ops = max(400, int(1_500 * scale))
    tasks = [
        SimTask(base_sim_config(
            spec, arrival_rate=0.25, n_items=8_000,
            n_operations=n_ops,
            warmup_operations=max(40, n_ops // 10), seed=17,
            workload=workload))
        for _trace_id, _name, workload in traces for spec in specs]
    flat = iter(run_batch(tasks))
    for trace_id, _name, _workload in traces:
        row = [trace_id]
        for _spec in specs:
            result = next(flat)
            row.append(math.inf if result.overflowed
                       else round(result.mean_response["insert"], 3))
        table.add(*row)
    table.note("traces: " + "; ".join(
        f"{trace_id}={name}" for trace_id, name, _ in traces))
    table.note("all traces offer (near-)baseline mean load: MMPP is "
               "mean-preserving, the Zipf/migrating traces only move "
               "keys, and the spike adds a bounded transient — so any "
               "degradation over trace 0 is pure traffic shape")
    return table


#: ext08 grid: shard counts x chaos waves per run.
_EXT08_SHARDS = (4, 8, 16, 32)
_EXT08_FAULT_RATES = (0, 1, 2)
#: Nominal per-shard primary utilization the offered load targets.
_EXT08_RHO = 0.25


def ext08(scale: float = 1.0, simulate: bool = True) -> ExperimentTable:
    """Cluster chaos: availability/goodput degradation of a sharded
    B-tree cluster under injected faults, policies on vs off.

    Each (shards, fault_rate) cell runs the cluster simulator twice
    with common random numbers — once ``fragile`` (no defenses), once
    ``resilient`` (retries + hedged reads + circuit breaker) — against
    the same deterministic chaos schedule
    (:func:`repro.cluster.chaos.chaos_plan`).  The analytical
    composition supplies the model columns: the router M/G/1 +
    per-shard multi-class M/G/1 response (validated on the fault-free
    rows, where the simulated steady state is the model's regime) and
    the closed-form availability under crash windows with and without
    the retry rescue horizon.  Per-shard service demands and the
    rho_w = 0.5 breaker anchor both come from the single-tree
    per-level queue network — the cluster tier composes the paper's
    model, it does not replace it.
    """
    del simulate  # inherently simulated
    from repro.cluster import (
        ClusterSimConfig,
        ClusterSpec,
        analyze_cluster,
        breaker_arrival_rate,
        chaos_plan,
        get_policies,
        predict_availability,
        run_cluster_simulation,
        shard_service_demands,
    )
    config = paper_default_config(disk_cost=1.0)  # memory-resident tier
    demands = shard_service_demands(_NAIVE.analyze, config)
    mix = {"search": config.mix.q_search, "insert": config.mix.q_insert,
           "delete": config.mix.q_delete}
    replicas = 2
    # Offered load targets a fixed primary utilization under the
    # serialized-shard approximation (writes + 1/R of reads on the
    # primary server).
    primary_demand = (mix["insert"] * demands["insert"]
                      + mix["delete"] * demands["delete"]
                      + mix["search"] * demands["search"] / replicas)
    per_shard_rate = _EXT08_RHO / primary_demand
    horizon = max(400.0, 2_000.0 * scale)
    fragile = get_policies("fragile")
    resilient = get_policies("resilient")

    table = ExperimentTable(
        "ext08",
        "Cluster availability and goodput vs shard count and fault rate",
        "Extension: cluster chaos",
        ["scenario", "shards", "fault_rate", "offered_rate",
         "model_response", "sim_response",
         "model_availability", "availability_fragile",
         "model_availability_resilient", "availability_resilient",
         "goodput_fragile", "goodput_resilient",
         "shed_writes", "retries", "hedged_wins"])
    scenario = 0
    for shards in _EXT08_SHARDS:
        spec = ClusterSpec(shards=shards, replicas=replicas)
        offered = shards * per_shard_rate
        prediction = analyze_cluster(spec, offered, demands, mix)
        model_response = round(prediction.mixed_response(mix), 3)
        for fault_rate in _EXT08_FAULT_RATES:
            plan = chaos_plan(shards, fault_rate, horizon)
            seed = 101 + 7 * scenario
            runs = {}
            for policies in (fragile, resilient):
                runs[policies.name] = run_cluster_simulation(
                    ClusterSimConfig(
                        spec=spec, arrival_rate=offered,
                        service_means=demands, mix=mix,
                        policies=policies, horizon=horizon, seed=seed,
                        faults=plan))
            frag, res = runs["fragile"], runs["resilient"]
            # The response comparison is only meaningful fault-free:
            # faulted rows mix outage transients into the mean.
            sim_response = (round(frag.mean_response, 3)
                            if fault_rate == 0 else math.nan)
            table.add(
                scenario, shards, fault_rate, round(offered, 4),
                model_response, sim_response,
                round(predict_availability(spec, plan, fragile,
                                           horizon), 4),
                round(frag.availability, 4),
                round(predict_availability(spec, plan, resilient,
                                           horizon), 4),
                round(res.availability, 4),
                round(frag.goodput, 4), round(res.goodput, 4),
                res.shed_writes, res.retries, res.hedged_wins)
            scenario += 1
    lam_half = breaker_arrival_rate(_NAIVE.analyze, config)
    table.note("scenarios: " + "; ".join(
        f"{i}=(shards={s}, faults={f})"
        for i, (s, f) in enumerate(
            (s, f) for s in _EXT08_SHARDS for f in _EXT08_FAULT_RATES)))
    table.note(
        f"offered load holds per-shard primary utilization at "
        f"{_EXT08_RHO} under the serialized-shard approximation "
        f"(demand {primary_demand:.2f}/op); the single-tree rho_w=0.5 "
        f"anchor sits at lambda*={lam_half:.3f} per shard; total rates "
        f"span {_EXT08_SHARDS[0] * per_shard_rate:.2f}-"
        f"{_EXT08_SHARDS[-1] * per_shard_rate:.2f} ops/unit, "
        f"~{_EXT08_SHARDS[0] * per_shard_rate / 0.005:.0f}-"
        f"{_EXT08_SHARDS[-1] * per_shard_rate / 0.005:.0f}x the paper's "
        f"smallest Figure 3 operating point (0.005)")
    table.note("resilient = retry + hedged reads + rho>0.5 breaker; "
               "fragile = no defenses; both runs of a scenario share "
               "one seed and one chaos schedule (common random "
               "numbers), so column deltas are pure policy effect")
    return table
